//! Coder throughput: the per-posting decode cost these numbers imply is
//! what `simnet::CostModel::cpu_per_posting` abstracts.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use teraphim_compress::bitio::{BitReader, BitWriter};
use teraphim_compress::codes::{
    read_delta, read_gamma, read_golomb, read_vbyte, write_delta, write_gamma, write_golomb,
    write_vbyte,
};
use teraphim_compress::huffman::HuffmanCode;
use teraphim_compress::textcomp::TextModel;

/// A deterministic pseudo-Zipfian gap sequence (what postings look
/// like).
fn gaps(n: usize) -> Vec<u64> {
    let mut state = 0x243F6A8885A308D3u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Skewed towards small gaps.
            1 + (state >> 33) % (1 + (state >> 60))
        })
        .collect()
}

fn bench_integer_codes(c: &mut Criterion) {
    let values = gaps(10_000);
    let mut group = c.benchmark_group("integer_codes");
    group.throughput(Throughput::Elements(values.len() as u64));

    group.bench_function("gamma_encode", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            for &v in &values {
                write_gamma(&mut w, v);
            }
            black_box(w.into_bytes())
        })
    });
    let mut w = BitWriter::new();
    for &v in &values {
        write_gamma(&mut w, v);
    }
    let gamma_bytes = w.into_bytes();
    group.bench_function("gamma_decode", |b| {
        b.iter(|| {
            let mut r = BitReader::new(&gamma_bytes);
            let mut sum = 0u64;
            for _ in 0..values.len() {
                sum = sum.wrapping_add(read_gamma(&mut r).expect("valid stream"));
            }
            black_box(sum)
        })
    });

    group.bench_function("delta_encode", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            for &v in &values {
                write_delta(&mut w, v);
            }
            black_box(w.into_bytes())
        })
    });
    let mut w = BitWriter::new();
    for &v in &values {
        write_delta(&mut w, v);
    }
    let delta_bytes = w.into_bytes();
    group.bench_function("delta_decode", |b| {
        b.iter(|| {
            let mut r = BitReader::new(&delta_bytes);
            let mut sum = 0u64;
            for _ in 0..values.len() {
                sum = sum.wrapping_add(read_delta(&mut r).expect("valid stream"));
            }
            black_box(sum)
        })
    });

    let b_param = 8;
    group.bench_function("golomb_encode", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            for &v in &values {
                write_golomb(&mut w, v, b_param);
            }
            black_box(w.into_bytes())
        })
    });
    let mut w = BitWriter::new();
    for &v in &values {
        write_golomb(&mut w, v, b_param);
    }
    let golomb_bytes = w.into_bytes();
    group.bench_function("golomb_decode", |b| {
        b.iter(|| {
            let mut r = BitReader::new(&golomb_bytes);
            let mut sum = 0u64;
            for _ in 0..values.len() {
                sum = sum.wrapping_add(read_golomb(&mut r, b_param).expect("valid stream"));
            }
            black_box(sum)
        })
    });

    group.bench_function("vbyte_roundtrip", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            for &v in &values {
                write_vbyte(&mut out, v);
            }
            let mut pos = 0;
            let mut sum = 0u64;
            for _ in 0..values.len() {
                sum = sum.wrapping_add(read_vbyte(&out, &mut pos).expect("valid stream"));
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_huffman(c: &mut Criterion) {
    let freqs: Vec<u64> = (1..=256u64).map(|i| 100_000 / i).collect();
    c.bench_function("huffman_build_256", |b| {
        b.iter(|| black_box(HuffmanCode::from_frequencies(&freqs).expect("valid freqs")))
    });
}

fn bench_textcomp(c: &mut Criterion) {
    let doc = "the quick brown fox jumps over the lazy dog and the slow red hen ".repeat(40);
    let model = TextModel::train([doc.as_str()]).expect("train");
    let compressed = model.compress(&doc);
    let mut group = c.benchmark_group("textcomp");
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.bench_function("compress", |b| {
        b.iter_batched(
            || doc.clone(),
            |d| black_box(model.compress(&d)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("decompress", |b| {
        b.iter(|| black_box(model.decompress(&compressed).expect("valid stream")))
    });
    group.finish();
}

criterion_group!(benches, bench_integer_codes, bench_huffman, bench_textcomp);
criterion_main!(benches);
