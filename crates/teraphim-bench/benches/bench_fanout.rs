//! Sequential vs concurrent librarian fan-out at S = 1, 2, 4, 8.
//!
//! The paper's elapsed-time model assumes the receptionist's subqueries
//! proceed in parallel, so elapsed time is the *maximum* of the
//! librarian times rather than their sum (§4). Each librarian here is
//! wrapped with a fixed per-exchange service latency standing in for a
//! remote machine's network + disk time — that is the component the
//! concurrent dispatch path overlaps, and it is what makes the
//! comparison meaningful even on a single-core host (pure CPU work
//! cannot overlap with itself there; remote waits always can).
//!
//! The same CV query is evaluated with the dispatch mode flipped
//! between `Sequential` and `Concurrent`; the elapsed-time ratio should
//! grow toward S while every librarian holds an equal share of the
//! collection.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use teraphim_core::{Librarian, Methodology, Receptionist};
use teraphim_net::{DispatchMode, InProcTransport, Message, Service};
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

const DOCS_PER_LIBRARIAN: usize = 1500;
const WORDS_PER_DOC: usize = 64;
const VOCAB: usize = 500;

/// Per-exchange service latency modelling a librarian on another
/// machine (LAN round trip + one disk access, in the ballpark of the
/// paper's cost model).
const REMOTE_LATENCY: Duration = Duration::from_millis(2);

/// A librarian as seen over a network: every exchange pays a fixed
/// latency before the engine does its work.
struct RemoteLibrarian {
    inner: Librarian,
}

impl Service for RemoteLibrarian {
    fn handle(&mut self, request: Message) -> Message {
        std::thread::sleep(REMOTE_LATENCY);
        self.inner.handle(request)
    }
}

/// Deterministic synthetic subcollection: every librarian gets the same
/// amount of work, over a shared vocabulary so the query touches all of
/// them.
fn librarian_docs(lib: usize) -> Vec<TrecDoc> {
    (0..DOCS_PER_LIBRARIAN)
        .map(|i| {
            let words: Vec<String> = (0..WORDS_PER_DOC)
                .map(|w| format!("w{}", (i * 31 + w * 7 + lib * 13) % VOCAB))
                .collect();
            TrecDoc {
                docno: format!("L{lib}-{i}"),
                text: words.join(" "),
            }
        })
        .collect()
}

fn build_system(num_librarians: usize) -> Receptionist<InProcTransport<RemoteLibrarian>> {
    let transports: Vec<InProcTransport<RemoteLibrarian>> = (0..num_librarians)
        .map(|lib| {
            InProcTransport::new(RemoteLibrarian {
                inner: Librarian::build(
                    &format!("PART-{lib}"),
                    Analyzer::default(),
                    &librarian_docs(lib),
                ),
            })
        })
        .collect();
    let mut receptionist = Receptionist::new(transports, Analyzer::default());
    receptionist.enable_cv().expect("enable_cv");
    receptionist
}

fn query_terms() -> String {
    // 28 distinct terms spread over the vocabulary, so each librarian
    // decodes a substantial slice of its postings.
    (0..28)
        .map(|i| format!("w{}", (i * 17) % VOCAB))
        .collect::<Vec<_>>()
        .join(" ")
}

fn bench_fanout(c: &mut Criterion) {
    let query = query_terms();
    for s in [1usize, 2, 4, 8] {
        let mut system = build_system(s);
        let mut group = c.benchmark_group(format!("fanout/S={s}"));
        group.sample_size(20);
        for (label, mode) in [
            ("sequential", DispatchMode::Sequential),
            ("concurrent", DispatchMode::Concurrent),
        ] {
            system.set_dispatch_mode(mode);
            group.bench_function(label, |b| {
                b.iter(|| {
                    black_box(
                        system
                            .query(Methodology::CentralVocabulary, &query, 20)
                            .expect("query"),
                    )
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
