//! Fan-out latency under injected faults: healthy baseline vs one slow
//! librarian vs one dead librarian, at S = 4 with concurrent dispatch.
//!
//! Every librarian is wrapped in a `FaultyService` whose plan injects a
//! fixed 2 ms per-exchange delay standing in for a remote machine's
//! network + disk time. The "one-slow" configuration raises librarian
//! 2's delay to 25 ms: under the paper's max-of-librarians elapsed-time
//! model the whole fan-out stretches to the straggler's latency, which
//! is exactly the tail-latency problem the transport deadlines bound
//! (over TCP the read timeout abandons the straggler; see
//! `tests/tcp_e2e.rs`). The "one-dead" configuration kills librarian 2
//! outright: the receptionist degrades — coverage 3/4 — at the healthy
//! configuration's latency, because a fast failure costs nothing to
//! wait for.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use teraphim_core::{Librarian, Methodology, Receptionist};
use teraphim_net::{FaultPlan, FaultyService, InProcTransport};
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

const NUM_LIBRARIANS: usize = 4;
const DOCS_PER_LIBRARIAN: usize = 500;
const WORDS_PER_DOC: usize = 48;
const VOCAB: usize = 400;

/// Per-exchange latency modelling a healthy remote librarian.
const REMOTE_LATENCY: Duration = Duration::from_millis(2);
/// Per-exchange latency of the injected straggler.
const SLOW_LATENCY: Duration = Duration::from_millis(25);

fn librarian_docs(lib: usize) -> Vec<TrecDoc> {
    (0..DOCS_PER_LIBRARIAN)
        .map(|i| {
            let words: Vec<String> = (0..WORDS_PER_DOC)
                .map(|w| format!("w{}", (i * 31 + w * 7 + lib * 13) % VOCAB))
                .collect();
            TrecDoc {
                docno: format!("L{lib}-{i}"),
                text: words.join(" "),
            }
        })
        .collect()
}

/// Builds a 4-librarian CV receptionist where librarian `lib` follows
/// `plan(lib)` and everyone else pays the healthy remote latency.
fn build_system(
    plan_for: impl Fn(usize) -> FaultPlan,
) -> Receptionist<InProcTransport<FaultyService<Librarian>>> {
    let transports: Vec<_> = (0..NUM_LIBRARIANS)
        .map(|lib| {
            let inner = Librarian::build(
                &format!("PART-{lib}"),
                Analyzer::default(),
                &librarian_docs(lib),
            );
            InProcTransport::new(FaultyService::new(inner, plan_for(lib)))
        })
        .collect();
    let mut receptionist = Receptionist::new(transports, Analyzer::default());
    receptionist.enable_cv().expect("enable_cv");
    receptionist
}

fn query_terms() -> String {
    (0..24)
        .map(|i| format!("w{}", (i * 17) % VOCAB))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Maps a librarian index to its fault plan for one configuration.
type PlanFor = Box<dyn Fn(usize) -> FaultPlan>;

fn bench_faults(c: &mut Criterion) {
    let query = query_terms();
    let healthy = FaultPlan::new().delay_all(REMOTE_LATENCY);
    let configs: Vec<(&str, PlanFor)> = vec![
        ("healthy", {
            let healthy = healthy.clone();
            Box::new(move |_| healthy.clone())
        }),
        ("one-slow", {
            let healthy = healthy.clone();
            Box::new(move |lib| {
                if lib == 2 {
                    FaultPlan::new().delay_all(SLOW_LATENCY)
                } else {
                    healthy.clone()
                }
            })
        }),
        ("one-dead", {
            let healthy = healthy.clone();
            Box::new(move |lib| {
                if lib == 2 {
                    // Request 0 is the CV setup exchange; the librarian
                    // dies before any query traffic.
                    FaultPlan::new().delay_nth(0, REMOTE_LATENCY).fail_from(1)
                } else {
                    healthy.clone()
                }
            })
        }),
    ];
    let mut group = c.benchmark_group("faults/S=4");
    group.sample_size(20);
    for (label, plan_for) in configs {
        let mut system = build_system(plan_for.as_ref());
        group.bench_function(label, |b| {
            b.iter(|| {
                let answer = system
                    .query_with_coverage(Methodology::CentralVocabulary, &query, 20)
                    .expect("query");
                black_box(answer)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
