//! Index construction and decode throughput on the synthetic corpus.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use teraphim_corpus::{CorpusSpec, SyntheticCorpus};
use teraphim_index::skips::SkipTable;
use teraphim_index::IndexBuilder;
use teraphim_text::Analyzer;

fn build_sample() -> (SyntheticCorpus, teraphim_index::InvertedIndex) {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(5));
    let analyzer = Analyzer::default();
    let mut builder = IndexBuilder::new();
    for sub in corpus.subcollections() {
        for doc in &sub.docs {
            builder.add_document(&analyzer.analyze(&doc.text));
        }
    }
    let index = builder.build();
    (corpus, index)
}

fn bench_build(c: &mut Criterion) {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(5));
    let analyzer = Analyzer::default();
    let analyzed: Vec<Vec<String>> = corpus
        .subcollections()
        .iter()
        .flat_map(|s| s.docs.iter().map(|d| analyzer.analyze(&d.text)))
        .collect();
    let tokens: usize = analyzed.iter().map(Vec::len).sum();
    let mut group = c.benchmark_group("index_build");
    group.throughput(Throughput::Elements(tokens as u64));
    group.sample_size(20);
    group.bench_function("build_360_docs", |b| {
        b.iter(|| {
            let mut builder = IndexBuilder::new();
            for terms in &analyzed {
                builder.add_document(terms);
            }
            black_box(builder.build())
        })
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let (_corpus, index) = build_sample();
    // Pick the longest list.
    let term = index
        .vocab()
        .iter()
        .map(|(id, _)| id)
        .max_by_key(|&id| index.postings(id).len())
        .expect("non-empty vocab");
    let list = index.postings(term).clone();
    let mut group = c.benchmark_group("postings");
    group.throughput(Throughput::Elements(u64::from(list.len())));
    group.bench_function("decode_longest_list", |b| {
        b.iter(|| {
            let mut count = 0u32;
            for p in list.iter() {
                count += p.expect("valid list").f_dt;
            }
            black_box(count)
        })
    });

    let table = SkipTable::build(&list, 32).expect("skip table");
    let probes: Vec<u32> = (0..list.last_doc())
        .step_by(37.max(list.last_doc() as usize / 20))
        .collect();
    group.bench_function("skip_seek_sparse_probes", |b| {
        b.iter(|| {
            let mut cursor = table.cursor(&list);
            let mut found = 0u32;
            for &p in &probes {
                if cursor.seek(p).expect("valid list").is_some() {
                    found += 1;
                }
            }
            black_box(found)
        })
    });
    group.finish();
}

fn bench_serialize(c: &mut Criterion) {
    let (_corpus, index) = build_sample();
    let bytes = index.to_bytes();
    let mut group = c.benchmark_group("index_serde");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("to_bytes", |b| b.iter(|| black_box(index.to_bytes())));
    group.bench_function("from_bytes", |b| {
        b.iter(|| black_box(teraphim_index::InvertedIndex::from_bytes(&bytes).expect("valid")))
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_decode, bench_serialize);
criterion_main!(benches);
