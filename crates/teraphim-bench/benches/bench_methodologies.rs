//! End-to-end distributed query latency per methodology over in-process
//! transports — the real-execution counterpart of Tables 3/4's
//! simulation (absolute values reflect this machine, not 1997 SPARCs;
//! the *relative* CN/CV/CI costs are the point).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teraphim_bench::corpus_parts;
use teraphim_core::{CiParams, DistributedCollection, Methodology};
use teraphim_corpus::{CorpusSpec, SyntheticCorpus};
use teraphim_text::Analyzer;

fn bench_methodologies(c: &mut Criterion) {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(5));
    let parts = corpus_parts(&corpus);
    let system = DistributedCollection::build_with(
        &parts,
        Analyzer::default(),
        CiParams {
            group_size: 10,
            k_prime: 10,
        },
    )
    .expect("build");
    let query = corpus.short_queries()[0].text.clone();

    let mut group = c.benchmark_group("distributed_query_k20");
    for methodology in Methodology::ALL {
        group.bench_function(methodology.to_string(), |b| {
            b.iter(|| black_box(system.query(methodology, &query, 20).expect("query")))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("distributed_query_plus_fetch");
    for methodology in Methodology::ALL {
        group.bench_function(methodology.to_string(), |b| {
            b.iter(|| {
                let hits = system.query(methodology, &query, 20).expect("query");
                black_box(system.fetch(&hits, false).expect("fetch"))
            })
        });
    }
    group.finish();
}

fn bench_setup_costs(c: &mut Criterion) {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(5));
    let parts = corpus_parts(&corpus);
    let mut group = c.benchmark_group("system_setup");
    group.sample_size(10);
    group.bench_function("build_with_cv_and_ci", |b| {
        b.iter(|| {
            black_box(
                DistributedCollection::build_with(
                    &parts,
                    Analyzer::default(),
                    CiParams {
                        group_size: 10,
                        k_prime: 10,
                    },
                )
                .expect("build"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_methodologies, bench_setup_costs);
criterion_main!(benches);
