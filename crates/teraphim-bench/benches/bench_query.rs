//! Mono-server ranked query latency (the MS baseline's real cost), for
//! short and long queries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teraphim_corpus::{CorpusSpec, SyntheticCorpus};
use teraphim_engine::Collection;
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

fn setup() -> (SyntheticCorpus, Collection) {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(5));
    let all: Vec<TrecDoc> = corpus
        .subcollections()
        .iter()
        .flat_map(|s| s.docs.iter().cloned())
        .collect();
    let collection = Collection::build("MS", Analyzer::default(), &all);
    (corpus, collection)
}

fn bench_ranked_queries(c: &mut Criterion) {
    let (corpus, collection) = setup();
    let short = corpus.short_queries()[0].text.clone();
    let long = corpus.long_queries()[0].text.clone();

    let mut group = c.benchmark_group("ms_ranked_query");
    group.bench_function("short_k20", |b| {
        b.iter(|| black_box(collection.ranked_query(&short, 20)))
    });
    group.bench_function("short_k1000", |b| {
        b.iter(|| black_box(collection.ranked_query(&short, 1000)))
    });
    group.bench_function("long_k20", |b| {
        b.iter(|| black_box(collection.ranked_query(&long, 20)))
    });
    group.finish();
}

fn bench_boolean_queries(c: &mut Criterion) {
    let (_corpus, collection) = setup();
    // Use two terms that actually occur.
    let vocab = collection.index().vocab();
    let (t1, t2) = {
        let mut terms = vocab.iter().map(|(_, t)| t.to_owned());
        (
            terms.next().expect("vocab non-empty"),
            terms.next().expect("vocab has two terms"),
        )
    };
    let query = format!("{t1} AND ({t2} OR {t1})");
    c.bench_function("boolean_query", |b| {
        b.iter(|| black_box(collection.boolean_query(&query).expect("parses")))
    });
}

fn bench_fetch(c: &mut Criterion) {
    let (_corpus, collection) = setup();
    c.bench_function("fetch_decompress_doc", |b| {
        b.iter(|| black_box(collection.fetch(0).expect("doc exists")))
    });
}

criterion_group!(
    benches,
    bench_ranked_queries,
    bench_boolean_queries,
    bench_fetch
);
criterion_main!(benches);
