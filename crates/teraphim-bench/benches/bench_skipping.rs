//! Candidate scoring with and without self-indexing skips — the real
//! CPU-time counterpart of the `skipping` table binary's decode counts.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teraphim_corpus::{CorpusSpec, SyntheticCorpus};
use teraphim_engine::ranking::local_weights;
use teraphim_engine::{candidates, Collection};
use teraphim_index::DocId;
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

fn bench_candidate_scoring(c: &mut Criterion) {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(5));
    let all: Vec<TrecDoc> = corpus
        .subcollections()
        .iter()
        .flat_map(|s| s.docs.iter().cloned())
        .collect();
    let mut collection = Collection::build("MS", Analyzer::default(), &all);
    let query = &corpus.short_queries()[0].text;
    let pairs = collection.analyze_query(query);
    let weighted = local_weights(collection.index(), &pairs);
    let n = collection.num_docs() as DocId;

    // Pre-build skip tables outside the timed region.
    collection.index_mut().build_skips(32);

    for (label, stride) in [
        ("sparse_20_candidates", (n / 20).max(1)),
        ("dense_all_docs", 1),
    ] {
        let cands: Vec<DocId> = (0..n).step_by(stride as usize).collect();
        let mut group = c.benchmark_group(format!("candidate_scoring/{label}"));
        group.bench_function("full_scan", |b| {
            b.iter(|| {
                black_box(
                    candidates::score_candidates_full_scan(collection.index(), &weighted, &cands)
                        .expect("scoring"),
                )
            })
        });
        group.bench_function("skipping", |b| {
            b.iter(|| {
                black_box(
                    candidates::score_candidates(collection.index_mut(), &weighted, &cands)
                        .expect("scoring"),
                )
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_candidate_scoring);
criterion_main!(benches);
