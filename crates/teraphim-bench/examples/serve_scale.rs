//! Bisect probe for closed-loop serving throughput: real MS fleet,
//! multiplexed sessions, with and without the ServePool layer.
//! `cargo run --release -p teraphim-bench --example serve_scale`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use teraphim_bench::{corpus_parts, HarnessOptions};
use teraphim_core::{Librarian, Methodology, Receptionist, ServePool};
use teraphim_net::mux::{MuxPool, MuxTransport};
use teraphim_net::tcp::{ServerOptions, TcpServer, TcpTransport};
use teraphim_net::{DispatchMode, TcpOptions};
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

fn main() {
    let opts = HarnessOptions {
        small: true,
        seed: 1998,
        rest: vec![],
    };
    let corpus = opts.corpus();
    let parts = corpus_parts(&corpus);
    let merged: Vec<TrecDoc> = parts
        .iter()
        .flat_map(|(_, docs)| docs.iter().cloned())
        .collect();
    let queries: Vec<String> = corpus
        .long_queries()
        .iter()
        .chain(corpus.short_queries())
        .map(|q| q.text.clone())
        .collect();
    let server = TcpServer::spawn_with(
        vec![
            Librarian::build("MS", Analyzer::default(), &merged),
            Librarian::build("MS", Analyzer::default(), &merged),
        ],
        "127.0.0.1:0",
        ServerOptions {
            workers: 2,
            queue_depth: 512,
        },
    )
    .unwrap();
    let prototype = Receptionist::new(
        vec![TcpTransport::connect(server.addr()).unwrap()],
        Analyzer::default(),
    );
    let pool = MuxPool::connect(server.addr(), 2, TcpOptions::default()).unwrap();
    let total = 400usize;

    let make_session = || {
        let mut s = prototype.fork(vec![MuxTransport::new(Arc::clone(&pool))]);
        s.set_dispatch_mode(DispatchMode::Pipelined);
        s
    };

    println!("-- sessions owned per thread (no ServePool) --");
    for threads in [1usize, 16, 64, 256] {
        let issued = AtomicUsize::new(0);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let mut session = make_session();
                let issued = &issued;
                let queries = &queries;
                scope.spawn(move || loop {
                    let i = issued.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    session
                        .query(Methodology::CentralNothing, &queries[i % queries.len()], 10)
                        .unwrap();
                });
            }
        });
        let qps = total as f64 / start.elapsed().as_secs_f64();
        println!("threads {threads:4}  {qps:10.0} qps");
    }

    println!("-- sessions checked out of a ServePool --");
    let serve_pool = ServePool::new((0..256).map(|_| make_session()).collect());
    for threads in [1usize, 16, 64, 256] {
        let issued = AtomicUsize::new(0);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let issued = &issued;
                let queries = &queries;
                let serve_pool = serve_pool.clone();
                scope.spawn(move || loop {
                    let i = issued.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let mut session = serve_pool.session();
                    session
                        .query(Methodology::CentralNothing, &queries[i % queries.len()], 10)
                        .unwrap();
                });
            }
        });
        let qps = total as f64 / start.elapsed().as_secs_f64();
        println!("threads {threads:4}  {qps:10.0} qps");
    }
    server.shutdown();
}
