//! Tail-latency attribution benchmark: drives a real TCP fleet with
//! span-carrying multiplexed clients and writes `BENCH_attribution.json`
//! — where server-side time goes (queue wait / scan / rank / serialize)
//! at light load versus overload.
//!
//! The fleet is deliberately under-provisioned: every server runs **one**
//! worker, so at high client concurrency requests pile up in the server
//! queue. Because every request carries a span context, each server
//! measures its own queue-wait/scan/rank/serialize phases and echoes
//! them on the reply envelope; the receptionist's fan-out records them
//! as `server_phase` events, which the metrics registry rolls into
//! per-phase histograms. The bench then asks the question the flight
//! recorder exists to answer: *which phase owns the p99?* At light load
//! it should be real work (scan/rank); under overload it must be queue
//! wait — time the engine never saw.
//!
//! ```sh
//! cargo run --release -p teraphim-bench --bin bench_attribution \
//!     [-- --small] [--seed N] [--out FILE] [--check]
//! ```
//!
//! `--check` exits nonzero unless every phase histogram recorded
//! samples in both regimes, scan and rank measured nonzero engine time,
//! queue-wait dominates the p99 under overload, and the Prometheus
//! exposition lints clean — the CI attribution gate.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use teraphim_bench::{corpus_parts, HarnessOptions, TextTable};
use teraphim_core::{Librarian, Methodology, Receptionist, ServePool};
use teraphim_net::mux::{MuxPool, MuxTransport};
use teraphim_net::tcp::{ServerOptions, TcpServer};
use teraphim_net::TcpOptions;
use teraphim_obs::{lint_prometheus, MetricsRegistry, MetricsSnapshot, TraceSink, SERVER_PHASES};
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

/// One worker per server: the overload regime must queue.
const SERVER_WORKERS: usize = 1;
const SERVER_QUEUE_DEPTH: usize = 1024;
const LIGHT_CONCURRENCY: usize = 1;
const OVERLOAD_CONCURRENCY: usize = 16;
const K: usize = 10;

struct Regime {
    label: &'static str,
    concurrency: usize,
    queries: usize,
    snapshot: MetricsSnapshot,
}

fn spawn_fleet(parts: &[(&str, &[TrecDoc])]) -> Vec<TcpServer> {
    parts
        .iter()
        .map(|(name, docs)| {
            TcpServer::spawn_with(
                vec![Librarian::build(name, Analyzer::default(), docs)],
                "127.0.0.1:0",
                ServerOptions {
                    workers: SERVER_WORKERS,
                    queue_depth: SERVER_QUEUE_DEPTH,
                },
            )
            .expect("bind attribution-bench server")
        })
        .collect()
}

/// Runs one load regime: `concurrency` closed-loop workers, each query
/// through a span-propagating session, all feeding one registry.
fn run_regime(
    label: &'static str,
    addrs: &[SocketAddr],
    queries: &[String],
    concurrency: usize,
    total: usize,
) -> Regime {
    let pools: Vec<Arc<MuxPool>> = addrs
        .iter()
        .map(|&addr| MuxPool::connect(addr, 1, TcpOptions::default()).expect("connect mux pool"))
        .collect();
    let sessions: Vec<Receptionist<MuxTransport>> = (0..concurrency.max(1))
        .map(|_| {
            let transports = pools
                .iter()
                .map(|p| MuxTransport::new(Arc::clone(p)))
                .collect();
            Receptionist::new(transports, Analyzer::default())
        })
        .collect();
    let pool = ServePool::new(sessions);

    // One registry for the whole regime; the metrics-only sink keeps
    // tracing on (so spans go over the wire and echoed server timings
    // come back) without buffering events.
    let registry = Arc::new(MetricsRegistry::new());
    let sink = TraceSink::metrics_only(Arc::clone(&registry));

    let issued = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..concurrency {
            let issued = &issued;
            let pool = pool.clone();
            let sink = sink.clone();
            let queries = &queries;
            scope.spawn(move || loop {
                let i = issued.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let mut session = pool.session();
                session.set_trace_sink(sink.clone());
                session
                    .query(Methodology::CentralNothing, &queries[i % queries.len()], K)
                    .expect("attribution query");
            });
        }
    });

    Regime {
        label,
        concurrency,
        queries: total,
        snapshot: registry.snapshot(),
    }
}

fn push_quoted(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_json(opts: &HarnessOptions, regimes: &[Regime]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"corpus\": \"{}\",\n  \"seed\": {},\n  \"server_workers\": {SERVER_WORKERS},\n  \"k\": {K},\n",
        if opts.small { "small" } else { "trec-like" },
        opts.seed
    ));
    out.push_str("  \"regimes\": [\n");
    for (i, regime) in regimes.iter().enumerate() {
        let latency = regime.snapshot.query_latency();
        out.push_str("    {\n      \"label\": ");
        push_quoted(&mut out, regime.label);
        out.push_str(&format!(
            ",\n      \"concurrency\": {},\n      \"queries\": {},\n",
            regime.concurrency, regime.queries
        ));
        out.push_str(&format!(
            "      \"query_latency_micros\": {{\"p50\": {}, \"p99\": {}, \"mean\": {:.1}}},\n",
            latency.p50(),
            latency.p99(),
            latency.mean()
        ));
        out.push_str("      \"server_phases\": {\n");
        let phases = &regime.snapshot.per_server_phase;
        for (j, (phase, hist)) in phases.iter().enumerate() {
            out.push_str("        ");
            push_quoted(&mut out, phase);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}{}\n",
                hist.count,
                hist.sum,
                hist.p50(),
                hist.p99(),
                hist.max,
                if j + 1 == phases.len() { "" } else { "," }
            ));
        }
        out.push_str("      }\n");
        out.push_str(if i + 1 == regimes.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The `--check` gate: phases measured everywhere, engine time nonzero,
/// queue wait owns the overload p99, exposition lints clean.
fn check(regimes: &[Regime]) -> Result<(), String> {
    for regime in regimes {
        let label = regime.label;
        let s = &regime.snapshot;
        if s.queries == 0 {
            return Err(format!("{label}: zero queries recorded"));
        }
        if s.per_server_phase.len() != SERVER_PHASES.len() {
            return Err(format!(
                "{label}: expected {} phase families, got {}",
                SERVER_PHASES.len(),
                s.per_server_phase.len()
            ));
        }
        for (phase, hist) in &s.per_server_phase {
            if hist.count == 0 {
                return Err(format!("{label}: phase {phase:?} recorded no samples"));
            }
        }
        let sum_of = |name: &str| {
            s.per_server_phase
                .iter()
                .find(|(p, _)| *p == name)
                .map_or(0, |(_, h)| h.sum)
        };
        if sum_of("scan") == 0 || sum_of("rank") == 0 {
            return Err(format!(
                "{label}: engine phases measured zero time (scan {}, rank {})",
                sum_of("scan"),
                sum_of("rank")
            ));
        }
        lint_prometheus(&s.render_prometheus())
            .map_err(|e| format!("{label}: exposition failed lint: {e}"))?;
    }
    let overload = regimes
        .iter()
        .find(|r| r.label == "overload")
        .ok_or("no overload regime")?;
    let p99_of = |name: &str| {
        overload
            .snapshot
            .per_server_phase
            .iter()
            .find(|(p, _)| *p == name)
            .map_or(0, |(_, h)| h.p99())
    };
    let queue = p99_of("queue_wait");
    for other in ["scan", "rank", "serialize"] {
        let p99 = p99_of(other);
        if queue <= p99 {
            return Err(format!(
                "overload: queue_wait p99 ({queue}us) does not dominate {other} p99 ({p99}us) — \
                 a {}x-oversubscribed single-worker fleet must queue",
                OVERLOAD_CONCURRENCY
            ));
        }
    }
    Ok(())
}

fn main() {
    let opts = HarnessOptions::from_args();
    let out_path = opts
        .rest
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| opts.rest.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_attribution.json".to_owned());

    let corpus = opts.corpus();
    let parts = corpus_parts(&corpus);
    let queries: Vec<String> = corpus
        .long_queries()
        .iter()
        .chain(corpus.short_queries())
        .map(|q| q.text.clone())
        .collect();
    let total = if opts.small { 300 } else { 800 };

    let servers = spawn_fleet(&parts);
    let addrs: Vec<SocketAddr> = servers.iter().map(TcpServer::addr).collect();

    let regimes = vec![
        run_regime("light", &addrs, &queries, LIGHT_CONCURRENCY, total),
        run_regime("overload", &addrs, &queries, OVERLOAD_CONCURRENCY, total),
    ];

    println!(
        "Tail-latency attribution — {} corpus, seed {}, {} librarians x {SERVER_WORKERS} worker, {total} queries per regime\n",
        if opts.small { "small" } else { "trec-like" },
        opts.seed,
        parts.len()
    );
    let mut table = TextTable::new([
        "Regime",
        "conc",
        "query p99(us)",
        "queue p99(us)",
        "scan p99(us)",
        "rank p99(us)",
        "ser p99(us)",
    ]);
    for regime in &regimes {
        let p99_of = |name: &str| {
            regime
                .snapshot
                .per_server_phase
                .iter()
                .find(|(p, _)| *p == name)
                .map_or(0, |(_, h)| h.p99())
        };
        table.row([
            regime.label.to_string(),
            regime.concurrency.to_string(),
            regime.snapshot.query_latency().p99().to_string(),
            p99_of("queue_wait").to_string(),
            p99_of("scan").to_string(),
            p99_of("rank").to_string(),
            p99_of("serialize").to_string(),
        ]);
    }
    println!("{}", table.render());

    let json = render_json(&opts, &regimes);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if opts.has_flag("--check") {
        if let Err(e) = check(&regimes) {
            eprintln!("check failed: {e}");
            std::process::exit(1);
        }
        println!("check passed: all phases measured, queue wait owns the overload p99");
    }
    drop(servers);
}
