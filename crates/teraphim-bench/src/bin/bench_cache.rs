//! Receptionist-cache benchmark: replays Zipf-skewed query streams
//! through a cache-enabled CV receptionist and writes
//! `BENCH_cache.json` — hit rate as a function of stream skew, and
//! warm (cache-hit) versus cold (cache-miss) latency percentiles.
//!
//! Each skew level draws the same number of queries from the corpus's
//! query pool under `P(rank r) ∝ 1/r^s`: at `s = 0.5` the stream is
//! nearly uniform (few repeats, low hit rate), at `s = 1.5` a handful
//! of hot queries dominate and the result cache answers most of the
//! stream without touching the fleet. The top answer documents of
//! every query are fetched as well, so the answer-document cache sees
//! a matching skewed stream.
//!
//! ```sh
//! cargo run --release -p teraphim-bench --bin bench_cache \
//!     [-- --small] [--seed N] [--out FILE] [--check]
//! ```
//!
//! `--check` exits nonzero if the skewed streams produce a zero hit
//! rate on any cache, or if the metrics registry's cache counters
//! disagree with the receptionist's own tallies — the CI smoke gate.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use teraphim_bench::{corpus_parts, HarnessOptions, TextTable};
use teraphim_core::{CacheConfig, CacheStats, Librarian, Methodology, Receptionist};
use teraphim_corpus::zipf::Zipf;
use teraphim_net::InProcTransport;
use teraphim_obs::MetricsSnapshot;
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

/// Queries drawn per skew level (per stream).
const STREAM_LEN: usize = 200;
/// Answer size.
const K: usize = 10;
/// Documents fetched per query (exercises the answer-document cache).
const FETCH_TOP: usize = 3;

struct SkewReport {
    skew: f64,
    warm: Vec<u64>,
    cold: Vec<u64>,
    stats: CacheStats,
    snapshot: MetricsSnapshot,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_skew(skew: f64, parts: &[(&str, &[TrecDoc])], pool: &[String], seed: u64) -> SkewReport {
    let transports = parts
        .iter()
        .map(|(name, docs)| InProcTransport::new(Librarian::build(name, Analyzer::default(), docs)))
        .collect();
    let mut receptionist = Receptionist::new(transports, Analyzer::default());
    receptionist.enable_cv().expect("CV preprocessing");
    receptionist.enable_cache(CacheConfig::default());
    let registry = receptionist.enable_metrics();

    let zipf = Zipf::new(pool.len(), skew);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut warm = Vec::new();
    let mut cold = Vec::new();
    for _ in 0..STREAM_LEN {
        let query = &pool[zipf.sample(&mut rng)];
        let hits_before = receptionist.cache_stats().expect("cache on").results.hits;
        let started = Instant::now();
        let hits = receptionist
            .query(Methodology::CentralVocabulary, query, K)
            .expect("query evaluation");
        let micros = started.elapsed().as_micros() as u64;
        let was_hit = receptionist.cache_stats().expect("cache on").results.hits > hits_before;
        if was_hit {
            warm.push(micros);
        } else {
            cold.push(micros);
        }
        let top = &hits[..hits.len().min(FETCH_TOP)];
        receptionist.fetch(top, false).expect("document fetch");
    }
    warm.sort_unstable();
    cold.sort_unstable();
    SkewReport {
        skew,
        warm,
        cold,
        stats: receptionist.cache_stats().expect("cache on"),
        snapshot: registry.snapshot(),
    }
}

fn hit_rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

fn render_json(opts: &HarnessOptions, pool_len: usize, reports: &[SkewReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"corpus\": \"{}\",\n  \"seed\": {},\n  \"query_pool\": {pool_len},\n  \"stream_len\": {STREAM_LEN},\n  \"k\": {K},\n  \"fetch_top\": {FETCH_TOP},\n",
        if opts.small { "small" } else { "trec-like" },
        opts.seed
    ));
    out.push_str("  \"skews\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let s = &r.stats;
        out.push_str(&format!("    {{\n      \"skew\": {},\n", r.skew));
        out.push_str(&format!(
            "      \"result_hit_rate\": {:.4},\n      \"stats_hit_rate\": {:.4},\n      \"doc_hit_rate\": {:.4},\n",
            hit_rate(s.results.hits, s.results.misses),
            hit_rate(s.terms.hits, s.terms.misses),
            hit_rate(s.docs.hits, s.docs.misses)
        ));
        out.push_str(&format!(
            "      \"warm_queries\": {}, \"cold_queries\": {},\n",
            r.warm.len(),
            r.cold.len()
        ));
        out.push_str(&format!(
            "      \"warm_micros\": {{\"p50\": {}, \"p95\": {}}},\n      \"cold_micros\": {{\"p50\": {}, \"p95\": {}}},\n",
            percentile(&r.warm, 50.0),
            percentile(&r.warm, 95.0),
            percentile(&r.cold, 50.0),
            percentile(&r.cold, 95.0)
        ));
        out.push_str("      \"counters\": {\n");
        for (j, (name, c)) in [("results", s.results), ("stats", s.terms), ("docs", s.docs)]
            .iter()
            .enumerate()
        {
            out.push_str(&format!(
                "        \"{name}\": {{\"hits\": {}, \"misses\": {}, \"stale\": {}, \"evictions\": {}}}{}\n",
                c.hits,
                c.misses,
                c.stale,
                c.evictions,
                if j == 2 { "" } else { "," }
            ));
        }
        out.push_str("      }\n");
        out.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The `--check` gate: skewed streams must actually hit, and the
/// metrics registry (fed by trace events) must agree with the
/// receptionist's own counter mirrors.
fn check(reports: &[SkewReport]) -> Result<(), String> {
    let steepest = reports
        .last()
        .ok_or_else(|| "no skew levels ran".to_owned())?;
    if steepest.stats.results.hits == 0 {
        return Err(format!(
            "skew {}: zero result-cache hits over {STREAM_LEN} queries",
            steepest.skew
        ));
    }
    if steepest.stats.terms.hits == 0 {
        return Err(format!("skew {}: zero term-stats hits", steepest.skew));
    }
    if steepest.stats.docs.hits == 0 {
        return Err(format!("skew {}: zero doc-cache hits", steepest.skew));
    }
    for r in reports {
        for (name, local) in [
            ("results", r.stats.results),
            ("stats", r.stats.terms),
            ("docs", r.stats.docs),
        ] {
            let registry = r
                .snapshot
                .per_cache
                .iter()
                .find(|c| c.cache == name)
                .ok_or_else(|| format!("registry has no {name:?} cache slot"))?;
            if (
                registry.hits,
                registry.misses,
                registry.stale,
                registry.evictions,
            ) != (local.hits, local.misses, local.stale, local.evictions)
            {
                return Err(format!(
                    "skew {}: registry {name} counters {registry:?} disagree with receptionist {local:?}",
                    r.skew
                ));
            }
        }
    }
    Ok(())
}

fn main() {
    let opts = HarnessOptions::from_args();
    let out_path = opts
        .rest
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| opts.rest.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_cache.json".to_owned());

    let corpus = opts.corpus();
    let parts = corpus_parts(&corpus);
    let pool: Vec<String> = corpus
        .long_queries()
        .iter()
        .chain(corpus.short_queries())
        .map(|q| q.text.clone())
        .collect();

    let reports: Vec<SkewReport> = [0.5, 1.0, 1.5]
        .iter()
        .map(|&skew| run_skew(skew, &parts, &pool, opts.seed))
        .collect();

    println!(
        "Receptionist cache sweep — {} corpus, seed {}, {} queries per skew, pool {}, k = {K}\n",
        if opts.small { "small" } else { "trec-like" },
        opts.seed,
        STREAM_LEN,
        pool.len()
    );
    let mut table = TextTable::new([
        "Skew",
        "hit rate",
        "warm p50(us)",
        "warm p95(us)",
        "cold p50(us)",
        "cold p95(us)",
        "evictions",
    ]);
    for r in &reports {
        table.row([
            format!("{:.1}", r.skew),
            format!(
                "{:.1}%",
                100.0 * hit_rate(r.stats.results.hits, r.stats.results.misses)
            ),
            percentile(&r.warm, 50.0).to_string(),
            percentile(&r.warm, 95.0).to_string(),
            percentile(&r.cold, 50.0).to_string(),
            percentile(&r.cold, 95.0).to_string(),
            (r.stats.results.evictions + r.stats.terms.evictions + r.stats.docs.evictions)
                .to_string(),
        ]);
    }
    println!("{}", table.render());

    let json = render_json(&opts, pool.len(), &reports);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if opts.has_flag("--check") {
        if let Err(e) = check(&reports) {
            eprintln!("check failed: {e}");
            std::process::exit(1);
        }
        println!("check passed: skewed streams hit every cache, registry counters agree");
    }
}
