//! Failover-latency benchmark for the elastic fleet: what does a query
//! pay when a shard's primary replica is dead and every fan-out reroutes
//! to the surviving replica, compared against a healthy fleet, a healed
//! fleet (the corpse removed, the survivor promoted), and the degraded
//! no-replica fallback (`dispatch_partial` coverage loss)?
//!
//! Four fleet states per methodology (CN/CV/CI), in-process and TCP:
//!
//! * **healthy** — two live replicas per shard, primary answers;
//! * **failover** — shard 0's primary refuses every request
//!   (`fail_from(0)`), so each query pays one failed attempt plus the
//!   reroute to the second replica — the steady-state cost of routing
//!   *around* a corpse that nobody has removed yet;
//! * **healed** — the corpse removed and the survivor promoted: the
//!   fleet is single-replica but clean, so this should read like
//!   healthy (the reroute tax is gone);
//! * **degraded** — one replica per shard and shard 0's only replica
//!   dead: the group is empty-handed and the receptionist degrades to
//!   partial coverage — the world the elastic layer exists to avoid.
//!
//! ```sh
//! cargo run --release -p teraphim-bench --bin bench_failover \
//!     [-- --small] [--seed N] [--out FILE] [--check]
//! ```
//!
//! `--check` exits nonzero if any cell completed zero queries or if a
//! healed fleet's p50 exceeds 2x the healthy fleet's — the sanity
//! gate, loose enough for any host.

use std::time::Instant;

use teraphim_bench::{corpus_parts, HarnessOptions, TextTable};
use teraphim_core::{CiParams, Librarian, Methodology, Receptionist};
use teraphim_net::tcp::{TcpServer, TcpTransport};
use teraphim_net::{
    FaultPlan, FaultyService, FaultyTransport, InProcTransport, ReplicaGroup, Transport,
};
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

const K: usize = 10;
const CI_PARAMS: CiParams = CiParams {
    group_size: 10,
    k_prime: 100,
};

/// The four fleet states measured.
#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Healthy,
    Failover,
    Healed,
    Degraded,
}

impl State {
    const ALL: [State; 4] = [
        State::Healthy,
        State::Failover,
        State::Healed,
        State::Degraded,
    ];

    fn name(self) -> &'static str {
        match self {
            State::Healthy => "healthy",
            State::Failover => "failover",
            State::Healed => "healed",
            State::Degraded => "degraded",
        }
    }
}

struct Cell {
    completed: usize,
    /// Sorted per-query latencies, microseconds.
    latencies: Vec<u64>,
}

impl Cell {
    fn percentile(&self, p: f64) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let idx = ((self.latencies.len() - 1) as f64 * p).round() as usize;
        self.latencies[idx]
    }
}

/// Builds one shard's replica group for `state` over transports from
/// `make` (`make(shard, replica, dead)`). Replica ids follow the fleet
/// convention: primary of shard `s` is id `s`, seconds are `n + s`.
fn build_group<T: Transport>(
    state: State,
    shard: usize,
    n: usize,
    make: &mut dyn FnMut(usize, usize, bool) -> T,
) -> ReplicaGroup<T> {
    let primary_dead = shard == 0 && matches!(state, State::Failover | State::Degraded);
    let mut members = vec![(shard as u32, make(shard, 0, primary_dead))];
    if state != State::Degraded {
        members.push(((n + shard) as u32, make(shard, 1, false)));
    }
    let group = ReplicaGroup::new(shard as u32, members);
    if state == State::Healed {
        // The operator's failover cleanup: corpse out, survivor first.
        assert!(group.promote((n + shard) as u32));
        assert!(group.remove_replica(shard as u32));
    }
    group
}

fn measure<T: Transport>(
    state: State,
    methodology: Methodology,
    groups: Vec<ReplicaGroup<T>>,
    queries: &[String],
    rounds: usize,
) -> Cell {
    let mut r = Receptionist::new(groups, Analyzer::default());
    match methodology {
        Methodology::CentralNothing => {}
        Methodology::CentralVocabulary => r.enable_cv().expect("CV preprocessing"),
        Methodology::CentralIndex => r.enable_ci(CI_PARAMS).expect("CI preprocessing"),
    }
    let mut latencies = Vec::with_capacity(queries.len() * rounds);
    // Round 0 is warmup (cold caches, lazy allocations) and is not
    // recorded; the table reports steady state.
    for round in 0..=rounds {
        for query in queries {
            let start = Instant::now();
            let outcome = r.query_with_coverage(methodology, query, K);
            let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            match (state, outcome) {
                // Degraded CI fan-outs whose only candidates lived on
                // the dead shard legitimately fail coverage; every
                // other combination must answer.
                (State::Degraded, Err(_)) if methodology == Methodology::CentralIndex => {}
                (State::Degraded, Ok(o)) => {
                    assert!(o.coverage.failed == vec![0] || o.coverage.failed.is_empty());
                    if round > 0 {
                        latencies.push(micros);
                    }
                }
                (_, Ok(o)) => {
                    assert!(
                        o.coverage.failed.is_empty(),
                        "{}: replica must absorb the fault",
                        state.name()
                    );
                    if round > 0 {
                        latencies.push(micros);
                    }
                }
                (_, Err(e)) => panic!("{} {query:?}: {e}", state.name()),
            }
        }
    }
    latencies.sort_unstable();
    Cell {
        completed: latencies.len(),
        latencies,
    }
}

/// The dead replica's fault plan: it answers its one preprocessing
/// exchange (CV's stats poll / CI's index upload) and fails forever
/// after — the "primary died after enable" scenario, and the only one
/// where the degraded single-replica fleet can preprocess at all.
fn dead_plan(methodology: Methodology) -> FaultPlan {
    FaultPlan::new().fail_from(match methodology {
        Methodology::CentralNothing => 0,
        _ => 1,
    })
}

fn inproc_cell(
    state: State,
    methodology: Methodology,
    parts: &[(&str, &[TrecDoc])],
    queries: &[String],
    rounds: usize,
) -> Cell {
    let n = parts.len();
    let mut make = |shard: usize, _replica: usize, dead: bool| {
        let plan = if dead {
            dead_plan(methodology)
        } else {
            FaultPlan::new()
        };
        FaultyTransport::new(
            InProcTransport::new(Librarian::build(
                parts[shard].0,
                Analyzer::default(),
                parts[shard].1,
            )),
            plan,
        )
    };
    let groups = (0..n)
        .map(|s| build_group(state, s, n, &mut make))
        .collect();
    measure(state, methodology, groups, queries, rounds)
}

fn tcp_cell(
    state: State,
    methodology: Methodology,
    parts: &[(&str, &[TrecDoc])],
    queries: &[String],
    rounds: usize,
) -> Cell {
    let n = parts.len();
    let mut servers = Vec::new();
    let mut make = |shard: usize, _replica: usize, dead: bool| {
        let plan = if dead {
            dead_plan(methodology)
        } else {
            FaultPlan::new()
        };
        let librarian = Librarian::build(parts[shard].0, Analyzer::default(), parts[shard].1);
        let server = TcpServer::spawn(FaultyService::new(librarian, plan), "127.0.0.1:0")
            .expect("loopback server");
        let transport = TcpTransport::connect(server.addr()).expect("loopback connect");
        servers.push(server);
        transport
    };
    let groups = (0..n)
        .map(|s| build_group(state, s, n, &mut make))
        .collect();
    measure(state, methodology, groups, queries, rounds)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let opts = HarnessOptions::from_args();
    let out_path = opts
        .rest
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| opts.rest.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_failover.json".to_owned());
    let check = opts.has_flag("--check");
    let rounds = if opts.small { 4 } else { 8 };

    let corpus = opts.corpus();
    let parts = corpus_parts(&corpus);
    let queries: Vec<String> = corpus
        .long_queries()
        .iter()
        .chain(corpus.short_queries())
        .map(|q| q.text.clone())
        .collect();

    println!(
        "Failover latency — {} corpus, seed {}, k = {K}, {} shards x 2 replicas, {} queries x {rounds} rounds\n",
        if opts.small { "small" } else { "trec-like" },
        opts.seed,
        parts.len(),
        queries.len()
    );

    let mut table = TextTable::new([
        "Driver",
        "Mode",
        "State",
        "queries",
        "p50 us",
        "p99 us",
        "vs healthy",
    ]);
    let mut json_rows = Vec::new();
    let mut failures = Vec::new();
    for methodology in [
        Methodology::CentralNothing,
        Methodology::CentralVocabulary,
        Methodology::CentralIndex,
    ] {
        let mode = match methodology {
            Methodology::CentralNothing => "CN",
            Methodology::CentralVocabulary => "CV",
            Methodology::CentralIndex => "CI",
        };
        for driver in ["inproc", "tcp"] {
            let mut healthy_p50 = 0u64;
            let mut by_state: Vec<(State, Cell)> = Vec::new();
            for state in State::ALL {
                let cell = if driver == "inproc" {
                    inproc_cell(state, methodology, &parts, &queries, rounds)
                } else {
                    tcp_cell(state, methodology, &parts, &queries, rounds)
                };
                if state == State::Healthy {
                    healthy_p50 = cell.percentile(0.5);
                }
                by_state.push((state, cell));
            }
            for (state, cell) in &by_state {
                let p50 = cell.percentile(0.5);
                let p99 = cell.percentile(0.99);
                let ratio = if healthy_p50 > 0 {
                    p50 as f64 / healthy_p50 as f64
                } else {
                    0.0
                };
                table.row([
                    driver.to_owned(),
                    mode.to_owned(),
                    state.name().to_owned(),
                    cell.completed.to_string(),
                    p50.to_string(),
                    p99.to_string(),
                    format!("{ratio:.2}x"),
                ]);
                json_rows.push(format!(
                    "    {{\"driver\": \"{}\", \"mode\": \"{}\", \"state\": \"{}\", \
                     \"completed\": {}, \"p50_us\": {}, \"p99_us\": {}}}",
                    json_escape(driver),
                    json_escape(mode),
                    json_escape(state.name()),
                    cell.completed,
                    p50,
                    p99
                ));
                if check && cell.completed == 0 {
                    failures.push(format!("{driver}/{mode}/{}: zero queries", state.name()));
                }
            }
            if check {
                // The reroute itself costs microseconds, so comparing
                // failover against healed is under the noise floor on a
                // busy host. The robust invariant: a healed fleet reads
                // like a healthy one (no lingering failover tax).
                let p50_of = |want: State| {
                    by_state
                        .iter()
                        .find(|(s, _)| *s == want)
                        .map_or(0, |(_, c)| c.percentile(0.5))
                };
                if p50_of(State::Healed) > p50_of(State::Healthy) * 2 {
                    failures.push(format!(
                        "{driver}/{mode}: healed p50 {} is over 2x healthy p50 {}",
                        p50_of(State::Healed),
                        p50_of(State::Healthy)
                    ));
                }
            }
        }
    }

    println!("{}", table.render());

    let json = format!(
        "{{\n  \"bench\": \"failover\",\n  \"corpus\": \"{}\",\n  \"seed\": {},\n  \"k\": {K},\n  \"rounds\": {rounds},\n  \"cells\": [\n{}\n  ]\n}}\n",
        if opts.small { "small" } else { "trec-like" },
        opts.seed,
        json_rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write bench json");
    println!("wrote {out_path}");

    if check && !failures.is_empty() {
        for failure in &failures {
            eprintln!("CHECK FAILED: {failure}");
        }
        std::process::exit(1);
    }
}
