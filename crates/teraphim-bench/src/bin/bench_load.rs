//! Serving-core load benchmark: closed-loop and open-loop load
//! generation against a real TCP fleet, writing `BENCH_load.json` — the
//! latency/throughput trajectory future PRs regress against.
//!
//! Two serving paths are compared per methodology (MS/CN/CV/CI):
//!
//! * **baseline** — the per-call exchange path: one receptionist over
//!   plain [`TcpTransport`]s, one query at a time, concurrent fan-out
//!   via scoped worker threads (the pre-multiplexing deployment);
//! * **multiplexed** — a [`ServePool`] of forked sessions over shared
//!   [`MuxPool`]s with [`DispatchMode::Pipelined`]: hundreds of
//!   in-flight queries pipeline correlation-tagged frames onto a
//!   handful of persistent connections, served by the bounded worker
//!   pool in [`TcpServer`].
//!
//! The closed-loop sweep drives N workers back-to-back at each
//! concurrency level (throughput under saturation); the open-loop
//! sweep paces arrivals at fixed offered rates against the pool's
//! admission control, counting shed queries and measuring latency from
//! the *scheduled* arrival instant so queueing delay past the knee is
//! visible (no coordinated omission).
//!
//! ```sh
//! cargo run --release -p teraphim-bench --bin bench_load \
//!     [-- --small] [--seed N] [--out FILE] [--check] [--min-speedup X]
//! ```
//!
//! `--check` exits nonzero if any cell recorded zero completed queries,
//! if accounting disagrees between the client pools and the servers, or
//! if the multiplexed path's throughput at the highest concurrency is
//! below `--min-speedup` (default 1.2) times the baseline's — the CI
//! regression gate. The committed `BENCH_load.json` records the full
//! sweep on the reference machine.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use teraphim_bench::{corpus_parts, HarnessOptions, TextTable};
use teraphim_core::{CiParams, Librarian, Methodology, Receptionist, ServePool};
use teraphim_net::mux::{MuxPool, MuxTransport};
use teraphim_net::tcp::{ServerOptions, TcpServer, TcpTransport};
use teraphim_net::{DispatchMode, TcpOptions};
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

/// Fleet shape shared by every mode.
const SERVER_WORKERS: usize = 2;
const SERVER_REPLICAS: usize = 2;
const SERVER_QUEUE_DEPTH: usize = 512;
const MUX_CONNECTIONS: usize = 2;
const CONCURRENCY_SWEEP: [usize; 4] = [1, 16, 64, 256];
/// Offered rates as fractions of the measured closed-loop throughput
/// at the second-highest concurrency — the last point sits past the
/// knee so the open-loop table shows saturation.
const OFFERED_FRACTIONS: [f64; 4] = [0.3, 0.6, 0.9, 1.2];
const K: usize = 10;

struct Sizing {
    baseline_queries: usize,
    closed_queries: usize,
    open_seconds: f64,
}

impl Sizing {
    fn for_opts(opts: &HarnessOptions) -> Sizing {
        if opts.small {
            Sizing {
                baseline_queries: 200,
                closed_queries: 400,
                open_seconds: 1.0,
            }
        } else {
            Sizing {
                baseline_queries: 400,
                closed_queries: 1200,
                open_seconds: 2.0,
            }
        }
    }
}

#[derive(Clone, Default)]
struct Cell {
    completed: usize,
    elapsed: Duration,
    /// Sorted latencies in microseconds.
    latencies: Vec<u64>,
}

impl Cell {
    fn throughput(&self) -> f64 {
        if self.elapsed.as_secs_f64() > 0.0 {
            self.completed as f64 / self.elapsed.as_secs_f64()
        } else {
            0.0
        }
    }

    fn percentile(&self, p: f64) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let idx = ((self.latencies.len() - 1) as f64 * p).round() as usize;
        self.latencies[idx]
    }
}

struct OpenCell {
    offered_qps: f64,
    shed: usize,
    cell: Cell,
}

struct ModeReport {
    code: &'static str,
    librarians: usize,
    baseline: Cell,
    closed: Vec<(usize, Cell)>,
    open: Vec<OpenCell>,
    client_round_trips: u64,
    server_round_trips: u64,
}

impl ModeReport {
    /// Throughput ratio at the highest concurrency level.
    fn speedup_top(&self) -> f64 {
        let base = self.baseline.throughput();
        let top = self
            .closed
            .last()
            .map(|(_, c)| c.throughput())
            .unwrap_or(0.0);
        if base > 0.0 {
            top / base
        } else {
            0.0
        }
    }

    /// Throughput ratio at the best closed-loop cell. The `--check`
    /// gate uses this: on a heavily shared single-CPU host any one
    /// cell's throughput jitters with scheduler noise, and a regression
    /// gate keyed to one cell would flake; a real serving-core
    /// regression depresses every cell, including the peak.
    fn speedup_peak(&self) -> f64 {
        let base = self.baseline.throughput();
        let peak = self
            .closed
            .iter()
            .map(|(_, c)| c.throughput())
            .fold(0.0f64, f64::max);
        if base > 0.0 {
            peak / base
        } else {
            0.0
        }
    }
}

fn build_replicas(name: &str, docs: &[TrecDoc]) -> Vec<Librarian> {
    (0..SERVER_REPLICAS)
        .map(|_| Librarian::build(name, Analyzer::default(), docs))
        .collect()
}

/// Spins one TCP server per subcollection and returns them.
fn spawn_fleet(parts: &[(&str, &[TrecDoc])]) -> Vec<TcpServer> {
    parts
        .iter()
        .map(|(name, docs)| {
            TcpServer::spawn_with(
                build_replicas(name, docs),
                "127.0.0.1:0",
                ServerOptions {
                    workers: SERVER_WORKERS,
                    queue_depth: SERVER_QUEUE_DEPTH,
                },
            )
            .expect("bind load-bench server")
        })
        .collect()
}

fn preprocess(receptionist: &mut Receptionist<TcpTransport>, methodology: Methodology) {
    match methodology {
        Methodology::CentralNothing => {}
        Methodology::CentralVocabulary => {
            receptionist.enable_cv().expect("CV preprocessing");
        }
        Methodology::CentralIndex => receptionist
            .enable_ci(CiParams {
                group_size: 10,
                k_prime: 100,
            })
            .expect("CI preprocessing"),
    }
}

/// One query at a time through the per-call exchange path.
fn run_baseline(
    receptionist: &mut Receptionist<TcpTransport>,
    methodology: Methodology,
    queries: &[String],
    n: usize,
) -> Cell {
    // Unmeasured warmup: connections, page cache and allocator reach
    // steady state before the clock starts, as in the closed loop.
    for i in 0..20 {
        receptionist
            .query(methodology, &queries[i % queries.len()], K)
            .expect("baseline warmup");
    }
    let mut latencies = Vec::with_capacity(n);
    let start = Instant::now();
    for i in 0..n {
        let text = &queries[i % queries.len()];
        let t0 = Instant::now();
        receptionist
            .query(methodology, text, K)
            .expect("baseline query");
        latencies.push(t0.elapsed().as_micros() as u64);
    }
    let elapsed = start.elapsed();
    latencies.sort_unstable();
    Cell {
        completed: n,
        elapsed,
        latencies,
    }
}

/// `concurrency` workers pull sessions and issue queries back-to-back
/// until `total` queries complete. Workers spawn, run one unmeasured
/// warmup query each, and rendezvous on a barrier before the clock
/// starts, so the cell measures steady state rather than thread
/// creation (at 256 workers on a small cell, spawn cost would otherwise
/// dominate).
fn run_closed_loop(
    pool: &ServePool<MuxTransport>,
    methodology: Methodology,
    queries: &[String],
    concurrency: usize,
    base_total: usize,
) -> Cell {
    let total = base_total.max(concurrency * 20);
    let issued = AtomicUsize::new(0);
    // Workers + the coordinating thread, which owns the clock.
    let barrier = std::sync::Barrier::new(concurrency + 1);
    let (elapsed, latencies) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|w| {
                let issued = &issued;
                let barrier = &barrier;
                let pool = pool.clone();
                scope.spawn(move || {
                    {
                        let mut session = pool.session();
                        session
                            .query(methodology, &queries[w % queries.len()], K)
                            .expect("warmup query");
                    }
                    barrier.wait();
                    let mut local = Vec::new();
                    loop {
                        let i = issued.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let text = &queries[i % queries.len()];
                        let mut session = pool.session();
                        let t0 = Instant::now();
                        session
                            .query(methodology, text, K)
                            .expect("closed-loop query");
                        local.push(t0.elapsed().as_micros() as u64);
                    }
                    local
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let mut all = Vec::with_capacity(total);
        for h in handles {
            all.extend(h.join().expect("closed-loop worker"));
        }
        (start.elapsed(), all)
    });
    let mut latencies = latencies;
    latencies.sort_unstable();
    Cell {
        completed: latencies.len(),
        elapsed,
        latencies,
    }
}

struct OpenJob {
    scheduled: Instant,
    query_index: usize,
}

/// Shared work queue for the open-loop workers. A `Mutex<Receiver>`
/// would serialize the pool — the lock holder blocks inside `recv`
/// while every other worker waits on the mutex — so jobs go through a
/// deque the workers pop with the lock held only momentarily.
/// A job plus the session (already checked out of the `ServePool` by
/// the submitter) that will run it.
type QueuedJob = (OpenJob, teraphim_core::QuerySession<MuxTransport>);

struct OpenQueue {
    /// The pending jobs and a "closed" flag set once the generator ends.
    state: Mutex<(std::collections::VecDeque<QueuedJob>, bool)>,
    ready: std::sync::Condvar,
}

impl OpenQueue {
    fn new() -> Self {
        OpenQueue {
            state: Mutex::new((std::collections::VecDeque::new(), false)),
            ready: std::sync::Condvar::new(),
        }
    }

    fn push(&self, job: OpenJob, session: teraphim_core::QuerySession<MuxTransport>) {
        self.state.lock().unwrap().0.push_back((job, session));
        self.ready.notify_one();
    }

    fn close(&self) {
        self.state.lock().unwrap().1 = true;
        self.ready.notify_all();
    }

    fn pop(&self) -> Option<QueuedJob> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(entry) = state.0.pop_front() {
                return Some(entry);
            }
            if state.1 {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }
}

/// Paced arrivals at `offered_qps`; admission via `try_session` (a
/// saturated pool sheds instead of queueing). Latency is measured from
/// the scheduled arrival instant.
fn run_open_loop(
    pool: &ServePool<MuxTransport>,
    methodology: Methodology,
    queries: &[String],
    offered_qps: f64,
    seconds: f64,
) -> OpenCell {
    let total = (offered_qps * seconds).ceil() as usize;
    let interval = Duration::from_secs_f64(1.0 / offered_qps);
    let queue = OpenQueue::new();
    let shed = AtomicUsize::new(0);

    let start = Instant::now();
    let (latencies, shed) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..pool.capacity().min(total.max(1)))
            .map(|_| {
                let queue = &queue;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    while let Some((job, mut session)) = queue.pop() {
                        let text = &queries[job.query_index % queries.len()];
                        session
                            .query(methodology, text, K)
                            .expect("open-loop query");
                        local.push(job.scheduled.elapsed().as_micros() as u64);
                    }
                    local
                })
            })
            .collect();

        for i in 0..total {
            let scheduled = start + interval.mul_f64(i as f64);
            let now = Instant::now();
            if scheduled > now {
                std::thread::sleep(scheduled - now);
            }
            match pool.try_session() {
                Some(session) => queue.push(
                    OpenJob {
                        scheduled,
                        query_index: i,
                    },
                    session,
                ),
                None => {
                    shed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        queue.close();
        let mut all = Vec::new();
        for w in workers {
            all.extend(w.join().expect("open-loop worker"));
        }
        (all, shed.load(Ordering::Relaxed))
    });
    let elapsed = start.elapsed();
    let mut latencies = latencies;
    latencies.sort_unstable();
    OpenCell {
        offered_qps,
        shed,
        cell: Cell {
            completed: latencies.len(),
            elapsed,
            latencies,
        },
    }
}

fn run_mode(
    code: &'static str,
    methodology: Methodology,
    parts: &[(&str, &[TrecDoc])],
    queries: &[String],
    sizing: &Sizing,
) -> ModeReport {
    let servers = spawn_fleet(parts);

    // Baseline: plain per-call transports, one query at a time. CV/CI
    // preprocessing runs on this receptionist; the forked sessions
    // below share its global state by construction.
    let baseline_transports: Vec<TcpTransport> = servers
        .iter()
        .map(|s| TcpTransport::connect(s.addr()).expect("baseline connect"))
        .collect();
    let mut prototype = Receptionist::new(baseline_transports, Analyzer::default());
    preprocess(&mut prototype, methodology);
    let baseline = run_baseline(
        &mut prototype,
        methodology,
        queries,
        sizing.baseline_queries,
    );

    // Multiplexed: a few persistent connections per librarian, shared
    // by every session; sessions pipeline their fan-out.
    let pools: Vec<Arc<MuxPool>> = servers
        .iter()
        .map(|s| {
            MuxPool::connect(s.addr(), MUX_CONNECTIONS, TcpOptions::default()).expect("mux connect")
        })
        .collect();
    let capacity = *CONCURRENCY_SWEEP.iter().max().unwrap();
    let sessions: Vec<Receptionist<MuxTransport>> = (0..capacity)
        .map(|_| {
            let transports = pools
                .iter()
                .map(|p| MuxTransport::new(Arc::clone(p)))
                .collect();
            let mut session = prototype.fork(transports);
            session.set_dispatch_mode(DispatchMode::Pipelined);
            session
        })
        .collect();
    let pool = ServePool::new(sessions);

    let closed: Vec<(usize, Cell)> = CONCURRENCY_SWEEP
        .iter()
        .map(|&c| {
            (
                c,
                run_closed_loop(&pool, methodology, queries, c, sizing.closed_queries),
            )
        })
        .collect();

    // Anchor offered rates to the measured knee region.
    let anchor = closed[CONCURRENCY_SWEEP.len() - 2].1.throughput().max(1.0);
    let open: Vec<OpenCell> = OFFERED_FRACTIONS
        .iter()
        .map(|f| run_open_loop(&pool, methodology, queries, anchor * f, sizing.open_seconds))
        .collect();

    let client_round_trips = pools.iter().map(|p| p.traffic().round_trips).sum::<u64>()
        + prototype.traffic().round_trips;
    let server_round_trips = servers.iter().map(|s| s.traffic().round_trips).sum();
    for server in servers {
        server.shutdown();
    }
    ModeReport {
        code,
        librarians: parts.len(),
        baseline,
        closed,
        open,
        client_round_trips,
        server_round_trips,
    }
}

fn push_latency_json(out: &mut String, cell: &Cell) {
    out.push_str(&format!(
        "{{\"p50\": {}, \"p95\": {}, \"p99\": {}}}",
        cell.percentile(0.50),
        cell.percentile(0.95),
        cell.percentile(0.99)
    ));
}

fn render_json(opts: &HarnessOptions, n_queries: usize, modes: &[ModeReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"corpus\": \"{}\",\n  \"seed\": {},\n  \"distinct_queries\": {n_queries},\n  \"k\": {K},\n",
        if opts.small { "small" } else { "trec-like" },
        opts.seed
    ));
    out.push_str(&format!(
        "  \"fleet\": {{\"server_workers\": {SERVER_WORKERS}, \"server_replicas\": {SERVER_REPLICAS}, \"queue_depth\": {SERVER_QUEUE_DEPTH}, \"mux_connections\": {MUX_CONNECTIONS}}},\n"
    ));
    out.push_str("  \"methodologies\": [\n");
    for (i, mode) in modes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"code\": \"{}\",\n      \"librarians\": {},\n",
            mode.code, mode.librarians
        ));
        out.push_str(&format!(
            "      \"baseline\": {{\"queries\": {}, \"throughput_qps\": {:.1}, \"latency_micros\": ",
            mode.baseline.completed,
            mode.baseline.throughput()
        ));
        push_latency_json(&mut out, &mode.baseline);
        out.push_str("},\n      \"closed_loop\": [\n");
        for (j, (c, cell)) in mode.closed.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"concurrency\": {c}, \"queries\": {}, \"throughput_qps\": {:.1}, \"latency_micros\": ",
                cell.completed,
                cell.throughput()
            ));
            push_latency_json(&mut out, cell);
            out.push_str(if j + 1 == mode.closed.len() {
                "}\n"
            } else {
                "},\n"
            });
        }
        out.push_str("      ],\n      \"open_loop\": [\n");
        for (j, o) in mode.open.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"offered_qps\": {:.1}, \"completed\": {}, \"shed\": {}, \"achieved_qps\": {:.1}, \"latency_micros\": ",
                o.offered_qps,
                o.cell.completed,
                o.shed,
                o.cell.throughput()
            ));
            push_latency_json(&mut out, &o.cell);
            out.push_str(if j + 1 == mode.open.len() {
                "}\n"
            } else {
                "},\n"
            });
        }
        out.push_str(&format!(
            "      ],\n      \"speedup_at_{}\": {:.2},\n      \"speedup_peak\": {:.2}\n",
            CONCURRENCY_SWEEP[CONCURRENCY_SWEEP.len() - 1],
            mode.speedup_top(),
            mode.speedup_peak()
        ));
        out.push_str(if i + 1 == modes.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The `--check` gate: every cell completed work, client and server
/// accounting agree, and the multiplexed path beats the baseline by at
/// least `min_speedup` at its best closed-loop cell.
fn check(modes: &[ModeReport], min_speedup: f64) -> Result<(), String> {
    for mode in modes {
        let code = mode.code;
        if mode.baseline.completed == 0 {
            return Err(format!("{code}: baseline completed zero queries"));
        }
        for (c, cell) in &mode.closed {
            if cell.completed == 0 {
                return Err(format!("{code}: closed loop at {c} completed zero queries"));
            }
            if cell.percentile(0.99) == 0 {
                return Err(format!(
                    "{code}: closed loop at {c} recorded zero latencies"
                ));
            }
        }
        if mode.open.iter().all(|o| o.cell.completed == 0) {
            return Err(format!("{code}: open loop completed zero queries"));
        }
        // Every exchange the clients counted must have been counted by
        // a server — the pipelined path may not lose or invent work.
        if mode.client_round_trips != mode.server_round_trips {
            return Err(format!(
                "{code}: client round trips {} != server round trips {}",
                mode.client_round_trips, mode.server_round_trips
            ));
        }
        // The speedup floor applies to the multi-librarian modes: the
        // multiplexed core's win is eliminating per-query fan-out
        // threads and per-query connections, which a single-librarian
        // mono-server (MS) never paid for in the first place.
        if mode.librarians < 2 {
            continue;
        }
        let speedup = mode.speedup_peak();
        if speedup < min_speedup {
            return Err(format!(
                "{code}: multiplexed peak speedup {speedup:.2}x below the {min_speedup:.2}x \
                 floor (baseline {:.1} qps, best cell {:.1} qps)",
                mode.baseline.throughput(),
                mode.closed
                    .iter()
                    .map(|(_, c)| c.throughput())
                    .fold(0.0f64, f64::max)
            ));
        }
    }
    Ok(())
}

fn arg_value(rest: &[String], name: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1).cloned())
}

fn main() {
    let opts = HarnessOptions::from_args();
    let out_path = arg_value(&opts.rest, "--out").unwrap_or_else(|| "BENCH_load.json".to_owned());
    let min_speedup: f64 = arg_value(&opts.rest, "--min-speedup")
        .map(|v| v.parse().expect("--min-speedup requires a number"))
        // The default floor is set for a single-CPU worst case: with no
        // parallelism available, the multiplexed core's entire win is
        // per-query overhead it no longer pays (fan-out thread spawns,
        // per-call connections), measured at 1.4-1.7x here. On multi-core
        // hardware pipelining overlaps librarian evaluation and the
        // ratio grows with cores; raise the floor accordingly when
        // regenerating the committed trajectory on such a machine.
        .unwrap_or(1.2);
    let sizing = Sizing::for_opts(&opts);

    let corpus = opts.corpus();
    let parts = corpus_parts(&corpus);
    let queries: Vec<String> = corpus
        .long_queries()
        .iter()
        .chain(corpus.short_queries())
        .map(|q| q.text.clone())
        .collect();

    let merged: Vec<TrecDoc> = parts
        .iter()
        .flat_map(|(_, docs)| docs.iter().cloned())
        .collect();
    let ms_parts: Vec<(&str, &[TrecDoc])> = vec![("MS", merged.as_slice())];

    println!(
        "Serving-core load sweep — {} corpus, seed {}, k = {K}, {} librarians, concurrency {:?}\n",
        if opts.small { "small" } else { "trec-like" },
        opts.seed,
        parts.len(),
        CONCURRENCY_SWEEP
    );

    let modes = vec![
        run_mode(
            "MS",
            Methodology::CentralNothing,
            &ms_parts,
            &queries,
            &sizing,
        ),
        run_mode("CN", Methodology::CentralNothing, &parts, &queries, &sizing),
        run_mode(
            "CV",
            Methodology::CentralVocabulary,
            &parts,
            &queries,
            &sizing,
        ),
        run_mode("CI", Methodology::CentralIndex, &parts, &queries, &sizing),
    ];

    let mut table = TextTable::new([
        "Mode",
        "base qps",
        "base p99(us)",
        "mux@256 qps",
        "mux@256 p99(us)",
        "speedup@256",
        "peak",
    ]);
    for mode in &modes {
        let top = &mode.closed[mode.closed.len() - 1].1;
        table.row([
            mode.code.to_string(),
            format!("{:.0}", mode.baseline.throughput()),
            mode.baseline.percentile(0.99).to_string(),
            format!("{:.0}", top.throughput()),
            top.percentile(0.99).to_string(),
            format!("{:.2}x", mode.speedup_top()),
            format!("{:.2}x", mode.speedup_peak()),
        ]);
    }
    println!("{}", table.render());

    let json = render_json(&opts, queries.len(), &modes);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if opts.has_flag("--check") {
        if let Err(e) = check(&modes, min_speedup) {
            eprintln!("check failed: {e}");
            std::process::exit(1);
        }
        println!(
            "check passed: all cells completed, accounting agrees, speedup >= {min_speedup:.2}x"
        );
    }
}
