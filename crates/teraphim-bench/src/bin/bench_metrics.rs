//! Fleet-metrics benchmark: runs the MS/CN/CV/CI query sweep through a
//! metrics-teed receptionist and writes `BENCH_fleet.json` — the
//! repo-root benchmark trajectory file future PRs regress against.
//!
//! Each methodology gets a fresh receptionist and a fresh
//! `MetricsRegistry`, enabled *after* any CV/CI preprocessing so the
//! recorded latencies and traffic cover exactly the query path the
//! paper's cost tables discuss. MS (mono-server) runs the CN path over
//! a single merged librarian: with S = 1, Central Nothing *is* the
//! mono-server methodology — local statistics are global — so all four
//! rows exercise the identical instrumented code.
//!
//! ```sh
//! cargo run --release -p teraphim-bench --bin bench_metrics \
//!     [-- --small] [--seed N] [--out FILE] [--check]
//! ```
//!
//! `--check` exits nonzero if any per-methodology counter that must be
//! nonzero is zero, if the cache-free sweep recorded any cache events
//! (see `bench_cache` for the cache trajectory), or if the Prometheus
//! exposition fails the format lint — the CI smoke gate.

use teraphim_bench::{corpus_parts, HarnessOptions, TextTable};
use teraphim_core::{CiParams, Librarian, Methodology, Receptionist};
use teraphim_net::InProcTransport;
use teraphim_obs::{lint_prometheus, MetricsSnapshot};
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

/// One methodology's rolled-up numbers for the JSON report.
struct ModeReport {
    code: &'static str,
    snapshot: MetricsSnapshot,
}

fn build_receptionist(parts: &[(&str, &[TrecDoc])]) -> Receptionist<InProcTransport<Librarian>> {
    let transports = parts
        .iter()
        .map(|(name, docs)| InProcTransport::new(Librarian::build(name, Analyzer::default(), docs)))
        .collect();
    Receptionist::new(transports, Analyzer::default())
}

fn run_mode(
    code: &'static str,
    methodology: Methodology,
    parts: &[(&str, &[TrecDoc])],
    queries: &[(u32, String)],
    k: usize,
) -> ModeReport {
    let mut receptionist = build_receptionist(parts);
    match methodology {
        Methodology::CentralNothing => {}
        Methodology::CentralVocabulary => receptionist.enable_cv().expect("CV preprocessing"),
        Methodology::CentralIndex => receptionist
            .enable_ci(CiParams {
                group_size: 10,
                k_prime: 100,
            })
            .expect("CI preprocessing"),
    }
    // Metrics start *after* preprocessing: the registry sees the query
    // path only, which is what the paper's per-query cost tables compare.
    let registry = receptionist.enable_metrics();
    for (_, text) in queries {
        receptionist
            .query(methodology, text, k)
            .expect("query evaluation");
    }
    ModeReport {
        code,
        snapshot: registry.snapshot(),
    }
}

fn push_quoted(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_json(opts: &HarnessOptions, k: usize, n_queries: usize, modes: &[ModeReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"corpus\": \"{}\",\n  \"seed\": {},\n  \"queries_per_mode\": {n_queries},\n  \"k\": {k},\n",
        if opts.small { "small" } else { "trec-like" },
        opts.seed
    ));
    out.push_str("  \"methodologies\": [\n");
    for (i, mode) in modes.iter().enumerate() {
        let s = &mode.snapshot;
        let latency = s.query_latency();
        let traffic = s.traffic_totals();
        out.push_str("    {\n      \"code\": ");
        push_quoted(&mut out, mode.code);
        out.push_str(&format!(",\n      \"queries\": {},\n", s.queries));
        out.push_str(&format!(
            "      \"latency_micros\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"mean\": {:.1}}},\n",
            latency.p50(),
            latency.p95(),
            latency.p99(),
            latency.max,
            latency.mean()
        ));
        out.push_str(&format!(
            "      \"traffic\": {{\"round_trips\": {}, \"bytes_sent\": {}, \"bytes_received\": {}}},\n",
            traffic.round_trips, traffic.bytes_sent, traffic.bytes_received
        ));
        out.push_str(&format!(
            "      \"merged_entries\": {}, \"timeouts\": {}, \"failures\": {}, \"degraded_queries\": {}\n",
            s.merged_entries, s.timeouts, s.lib_failures, s.degraded_queries
        ));
        out.push_str(if i + 1 == modes.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The `--check` gate: every counter the sweep must light up, plus a
/// lint of the Prometheus exposition. Returns the first failure.
fn check(modes: &[ModeReport]) -> Result<(), String> {
    for mode in modes {
        let s = &mode.snapshot;
        let code = mode.code;
        if s.queries == 0 {
            return Err(format!("{code}: zero queries recorded"));
        }
        if s.messages_sent == 0 || s.messages_received == 0 {
            return Err(format!("{code}: zero messages recorded"));
        }
        if s.bytes_sent == 0 || s.bytes_received == 0 {
            return Err(format!("{code}: zero bytes recorded"));
        }
        if s.query_latency().is_empty() {
            return Err(format!("{code}: empty query latency histogram"));
        }
        if s.per_librarian.iter().all(|l| l.latency.is_empty()) {
            return Err(format!("{code}: no per-librarian latency recorded"));
        }
        // This sweep runs cache-free receptionists: any cache event in
        // the registry means the trace plumbing is misattributing, or a
        // cache was silently enabled and the sweep no longer measures
        // the fleet round trips the trajectory file tracks.
        for c in &s.per_cache {
            if c.hits + c.misses + c.stale + c.evictions != 0 {
                return Err(format!(
                    "{code}: uncached sweep recorded {:?} cache events ({c:?})",
                    c.cache
                ));
            }
        }
        lint_prometheus(&s.render_prometheus())
            .map_err(|e| format!("{code}: exposition failed lint: {e}"))?;
    }
    Ok(())
}

fn main() {
    let opts = HarnessOptions::from_args();
    let out_path = opts
        .rest
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| opts.rest.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_fleet.json".to_owned());

    let corpus = opts.corpus();
    let parts = corpus_parts(&corpus);
    let queries: Vec<(u32, String)> = corpus
        .long_queries()
        .iter()
        .chain(corpus.short_queries())
        .map(|q| (q.id, q.text.clone()))
        .collect();
    let k = 20;

    // MS: one librarian over the whole merged collection.
    let merged: Vec<TrecDoc> = parts
        .iter()
        .flat_map(|(_, docs)| docs.iter().cloned())
        .collect();
    let ms_parts: Vec<(&str, &[TrecDoc])> = vec![("MS", merged.as_slice())];

    let modes = vec![
        run_mode("MS", Methodology::CentralNothing, &ms_parts, &queries, k),
        run_mode("CN", Methodology::CentralNothing, &parts, &queries, k),
        run_mode("CV", Methodology::CentralVocabulary, &parts, &queries, k),
        run_mode("CI", Methodology::CentralIndex, &parts, &queries, k),
    ];

    println!(
        "Fleet metrics sweep — {} corpus, seed {}, {} queries per mode, k = {k}\n",
        if opts.small { "small" } else { "trec-like" },
        opts.seed,
        queries.len()
    );
    let mut table = TextTable::new([
        "Mode",
        "queries",
        "p50(us)",
        "p99(us)",
        "round trips",
        "bytes sent",
        "bytes recv",
    ]);
    for mode in &modes {
        let latency = mode.snapshot.query_latency();
        let traffic = mode.snapshot.traffic_totals();
        table.row([
            mode.code.to_string(),
            mode.snapshot.queries.to_string(),
            latency.p50().to_string(),
            latency.p99().to_string(),
            traffic.round_trips.to_string(),
            traffic.bytes_sent.to_string(),
            traffic.bytes_received.to_string(),
        ]);
    }
    println!("{}", table.render());

    let json = render_json(&opts, k, queries.len(), &modes);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if opts.has_flag("--check") {
        if let Err(e) = check(&modes) {
            eprintln!("check failed: {e}");
            std::process::exit(1);
        }
        println!("check passed: all counters nonzero, exposition lints clean");
    }
}
