//! Persistent-store benchmark: cold-opening a versioned index store
//! versus rebuilding the collection from raw text, writing
//! `BENCH_persist.json`.
//!
//! The store is built like a long-lived librarian's: one base segment
//! (the first corpus part) plus one committed WAL batch per remaining
//! part. Three recovery paths are timed against the same end state:
//!
//! * `rebuild` — `Collection::build` over the raw base docs, then
//!   `append_documents` per batch: the work a storeless librarian
//!   redoes on every restart.
//! * `open_wal` — `IndexStore::open` with the batches still pending in
//!   the write-ahead log: deserialize the base segment, replay the WAL
//!   tail.
//! * `open_compacted` — `IndexStore::open` after `compact()`: a single
//!   merged segment, pure deserialization.
//!
//! All three must produce bit-identical rankings over a probe query
//! set — recovery is only allowed to be faster, never different.
//!
//! ```sh
//! cargo run --release -p teraphim-bench --bin bench_persist \
//!     [-- --small] [--seed N] [--out FILE] [--check]
//! ```
//!
//! `--check` exits nonzero if the compacted cold-open fails to beat the
//! rebuild, if any recovery path changes a ranking, or if the store
//! fails its integrity scan — the CI gate for the persistence layer.

use std::time::Instant;
use teraphim_bench::{corpus_parts, HarnessOptions, TextTable};
use teraphim_engine::Collection;
use teraphim_store::{IndexStore, TempDir};
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

/// Timed repetitions per path (the minimum is reported: recovery cost
/// is a floor, and the floor is what capacity planning cares about).
const ITERS: usize = 5;
/// Probe queries checked for bit-identical rankings.
const PROBES: usize = 8;
/// Answer size.
const K: usize = 10;

/// `(doc, score bits)` fingerprint of `collection` over the probes.
fn fingerprint(collection: &Collection, probes: &[String]) -> Vec<(u32, u64)> {
    probes
        .iter()
        .flat_map(|q| {
            collection
                .ranked_query(q, K)
                .iter()
                .map(|h| (h.doc, h.score.to_bits()))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Minimum elapsed micros of `ITERS` runs of `f`.
fn time_min<T>(mut f: impl FnMut() -> T) -> (T, u64) {
    let mut best: Option<(T, u64)> = None;
    for _ in 0..ITERS {
        let started = Instant::now();
        let value = f();
        let micros = started.elapsed().as_micros() as u64;
        if best.as_ref().is_none_or(|&(_, b)| micros < b) {
            best = Some((value, micros));
        }
    }
    best.unwrap()
}

struct Report {
    num_docs: u64,
    epochs: u64,
    rebuild_micros: u64,
    open_wal_micros: u64,
    open_compacted_micros: u64,
    segments_before: usize,
    segments_after: usize,
}

fn run(parts: &[(&str, &[TrecDoc])], probes: &[String]) -> (Report, Result<(), String>) {
    let dir = TempDir::new("bench-persist").expect("tempdir");
    let (base_name, base_docs) = (parts[0].0, parts[0].1);
    let batches: Vec<&[TrecDoc]> = parts[1..].iter().map(|(_, docs)| *docs).collect();

    let (mut store, _) = IndexStore::create(dir.path(), base_name, &Analyzer::default(), base_docs)
        .expect("fresh store creates");
    for batch in &batches {
        store.log_batch(batch).expect("batch commits");
    }
    let segments_before = store.num_segments();
    let epochs = store.epoch();
    let num_docs = store.num_docs();
    drop(store);

    // Rebuild: everything from raw text, the storeless restart.
    let (rebuilt, rebuild_micros) = time_min(|| {
        let mut c = Collection::build(base_name, Analyzer::default(), base_docs);
        for batch in &batches {
            c.append_documents(batch).expect("rebuild appends");
        }
        c
    });

    // Cold-open with the batches still pending in the WAL.
    let (opened_wal, open_wal_micros) =
        time_min(|| IndexStore::open(dir.path()).expect("store reopens").1);

    // Compact, then cold-open the single merged segment.
    let (mut store, _) = IndexStore::open(dir.path()).expect("store reopens");
    store.compact().expect("compaction");
    let verify = store.verify().map(|_| ()).map_err(|e| format!("{e}"));
    let segments_after = store.num_segments();
    drop(store);
    let (opened_compacted, open_compacted_micros) =
        time_min(|| IndexStore::open(dir.path()).expect("store reopens").1);

    let want = fingerprint(&rebuilt, probes);
    let check = verify.and_then(|()| {
        if fingerprint(&opened_wal, probes) != want {
            return Err("WAL-replay open changed a ranking".to_owned());
        }
        if fingerprint(&opened_compacted, probes) != want {
            return Err("compacted open changed a ranking".to_owned());
        }
        if open_compacted_micros >= rebuild_micros {
            return Err(format!(
                "compacted cold-open ({open_compacted_micros} us) must beat \
                 the rebuild ({rebuild_micros} us)"
            ));
        }
        Ok(())
    });
    (
        Report {
            num_docs,
            epochs,
            rebuild_micros,
            open_wal_micros,
            open_compacted_micros,
            segments_before,
            segments_after,
        },
        check,
    )
}

fn render_json(opts: &HarnessOptions, r: &Report) -> String {
    format!(
        "{{\n  \"corpus\": \"{}\",\n  \"seed\": {},\n  \"num_docs\": {},\n  \
         \"epochs\": {},\n  \"iters\": {ITERS},\n  \"probes\": {PROBES},\n  \"k\": {K},\n  \
         \"segments_before_compact\": {},\n  \"segments_after_compact\": {},\n  \
         \"rebuild_micros\": {},\n  \"open_wal_micros\": {},\n  \
         \"open_compacted_micros\": {},\n  \"speedup_wal\": {:.2},\n  \
         \"speedup_compacted\": {:.2}\n}}\n",
        if opts.small { "small" } else { "trec-like" },
        opts.seed,
        r.num_docs,
        r.epochs,
        r.segments_before,
        r.segments_after,
        r.rebuild_micros,
        r.open_wal_micros,
        r.open_compacted_micros,
        r.rebuild_micros as f64 / r.open_wal_micros.max(1) as f64,
        r.rebuild_micros as f64 / r.open_compacted_micros.max(1) as f64,
    )
}

fn main() {
    let opts = HarnessOptions::from_args();
    let out_path = opts
        .rest
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| opts.rest.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_persist.json".to_owned());

    let corpus = opts.corpus();
    let parts = corpus_parts(&corpus);
    let probes: Vec<String> = corpus
        .short_queries()
        .iter()
        .take(PROBES)
        .map(|q| q.text.clone())
        .collect();
    let (report, check) = run(&parts, &probes);

    println!(
        "Persistent store recovery — {} corpus, seed {}, {} documents over {} epochs \
         ({} segment(s) before compaction, {} after), min of {ITERS} runs\n",
        if opts.small { "small" } else { "trec-like" },
        opts.seed,
        report.num_docs,
        report.epochs,
        report.segments_before,
        report.segments_after,
    );
    let mut table = TextTable::new(["Recovery path", "micros", "vs rebuild"]);
    for (name, micros) in [
        ("rebuild from raw text", report.rebuild_micros),
        ("cold-open, WAL pending", report.open_wal_micros),
        ("cold-open, compacted", report.open_compacted_micros),
    ] {
        table.row([
            name.to_owned(),
            micros.to_string(),
            format!(
                "{:.2}x",
                report.rebuild_micros as f64 / micros.max(1) as f64
            ),
        ]);
    }
    println!("{}", table.render());

    let json = render_json(&opts, &report);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if opts.has_flag("--check") {
        if let Err(e) = check {
            eprintln!("check failed: {e}");
            std::process::exit(1);
        }
        println!(
            "check passed: rankings bit-identical on every recovery path, \
             compacted cold-open beats the rebuild"
        );
    }
}
