//! Reproduces the §2 in-text claim that compressed inverted files
//! "typically occupy 10% or less of the volume of the text", and
//! compares the integer coders on real inverted-list data (plus the
//! word-based document compressor).
//!
//! ```sh
//! cargo run --release -p teraphim-bench --bin compression_report [-- --small]
//! ```

use teraphim_bench::{corpus_parts, HarnessOptions, TextTable};
use teraphim_compress::bitio::BitWriter;
use teraphim_compress::codes;
use teraphim_engine::Collection;
use teraphim_text::Analyzer;

fn main() {
    let opts = HarnessOptions::from_args();
    let corpus = opts.corpus();
    let parts = corpus_parts(&corpus);

    let collections: Vec<Collection> = parts
        .iter()
        .map(|(name, docs)| Collection::build(name, Analyzer::default(), docs))
        .collect();
    let text_bytes = corpus.text_bytes();
    let index_bytes: usize = collections.iter().map(|c| c.index().index_bytes()).sum();
    let store_bytes: usize = collections
        .iter()
        .map(|c| c.store().compressed_bytes_total())
        .sum();

    println!("Compression report ({} KB of text)\n", text_bytes / 1024);
    println!(
        "compressed inverted indexes: {:>7} KB = {:.2}% of text  [paper: \"10% or less\"]",
        index_bytes / 1024,
        100.0 * index_bytes as f64 / text_bytes as f64
    );
    println!(
        "compressed document stores:  {:>7} KB = {:.2}% of text\n",
        store_bytes / 1024,
        100.0 * store_bytes as f64 / text_bytes as f64
    );

    // Re-code every (d-gap, f_dt) stream under each coder and compare.
    let mut gamma_bits = 0u64;
    let mut delta_bits = 0u64;
    let mut golomb_bits = 0u64;
    let mut vbyte_bits = 0u64;
    let mut fixed_bits = 0u64;
    let mut postings = 0u64;
    for col in &collections {
        let index = col.index();
        let n = index.num_docs();
        for (term, _) in index.vocab().iter() {
            let list = index.postings(term);
            let f_t = u64::from(list.len());
            if f_t == 0 {
                continue;
            }
            let b = codes::golomb_parameter(n, f_t);
            let mut prev = None;
            for posting in list.iter().map(|p| p.expect("own lists decode")) {
                let gap = match prev {
                    None => u64::from(posting.doc) + 1,
                    Some(p) => u64::from(posting.doc - p),
                };
                prev = Some(posting.doc);
                let f = u64::from(posting.f_dt);
                postings += 1;
                gamma_bits += codes::gamma_len(gap) + codes::gamma_len(f);
                delta_bits += codes::delta_len(gap) + codes::delta_len(f);
                golomb_bits += codes::golomb_len(gap, b) + codes::gamma_len(f);
                vbyte_bits += 8 * (codes::vbyte_len(gap) + codes::vbyte_len(f)) as u64;
                fixed_bits += 64; // u32 doc + u32 freq
            }
        }
    }

    let mut table = TextTable::new(["coder", "bits/posting", "KB total", "vs fixed u32 pairs"]);
    for (name, bits) in [
        ("Elias gamma", gamma_bits),
        ("Elias delta", delta_bits),
        ("Golomb (b=0.69 N/f_t)", golomb_bits),
        ("v-byte", vbyte_bits),
        ("fixed 32+32", fixed_bits),
    ] {
        table.row([
            name.to_string(),
            format!("{:.2}", bits as f64 / postings as f64),
            (bits / 8 / 1024).to_string(),
            format!("{:.1}%", 100.0 * bits as f64 / fixed_bits as f64),
        ]);
    }
    println!("{}", table.render());

    // Sanity check that the gamma accounting matches the stored index.
    let mut w = BitWriter::new();
    codes::write_gamma(&mut w, 1);
    assert_eq!(w.bit_len(), codes::gamma_len(1));

    println!(
        "Shape checks: every variable-length coder lands far below fixed-width; \
         Golomb with the classical parameter is the best of the gap coders on \
         Zipfian lists, as Managing Gigabytes reports."
    );
}
