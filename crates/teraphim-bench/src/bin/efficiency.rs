//! Reproduces the paper's headline conclusion: distributed retrieval
//! "can be fast and effective, but ... not efficient" — response time
//! may even improve, but *total resource usage* rises, because "one of
//! the major costs of query evaluation ... is accessing the vocabulary
//! and fetching the inverted lists, and this operation is repeated at
//! each librarian".
//!
//! Measures, per query: elapsed response time versus total CPU-seconds,
//! disk-seconds, link-seconds and bytes consumed across *all* machines,
//! for MS and the three methodologies, and sweeps the number of
//! subcollections to show the costs growing ("these problems become more
//! acute as the number of collections is increased").
//!
//! ```sh
//! cargo run --release -p teraphim-bench --bin efficiency [-- --small]
//! ```

use teraphim_bench::{corpus_parts, HarnessOptions, TextTable};
use teraphim_core::sim::{SimDriver, SimMode};
use teraphim_core::{CiParams, Methodology};
use teraphim_corpus::splits::split_into;
use teraphim_simnet::{CostModel, Topology};
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

fn main() {
    let opts = HarnessOptions::from_args();
    let corpus = opts.corpus();
    let queries: Vec<String> = corpus
        .short_queries()
        .iter()
        .take(20)
        .map(|q| q.text.clone())
        .collect();
    let query_refs: Vec<&str> = queries.iter().map(String::as_str).collect();
    let k = 20;
    let cost = CostModel::paper_scale();

    // ----- response time vs resource use, 4 subcollections -----
    let parts = corpus_parts(&corpus);
    let mut driver = SimDriver::new(
        &parts,
        Analyzer::default(),
        CiParams {
            group_size: 10,
            k_prime: 100,
        },
    )
    .expect("driver");
    let topo = Topology::multi_disk(parts.len());

    println!(
        "Efficiency — response time vs total resource use (multi-disk, per query,\n\
         averaged over {} short queries, k = {k})\n",
        query_refs.len()
    );
    let mut table = TextTable::new([
        "mode",
        "response (s)",
        "CPU (s)",
        "disk (s)",
        "link (s)",
        "wire KB",
        "postings",
    ]);
    let mut baseline_cpu = 0.0;
    for mode in [
        SimMode::MonoServer,
        SimMode::Distributed(Methodology::CentralNothing),
        SimMode::Distributed(Methodology::CentralVocabulary),
        SimMode::Distributed(Methodology::CentralIndex),
    ] {
        let mut sums = (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0u64, 0u64);
        for q in &query_refs {
            let c = driver
                .time_query(&topo, &cost, mode, q, k)
                .expect("simulation");
            sums.0 += c.total_time;
            sums.1 += c.cpu_busy;
            sums.2 += c.disk_busy;
            sums.3 += c.link_busy;
            sums.4 += c.bytes_on_wire;
            sums.5 += c.postings_decoded;
        }
        let n = query_refs.len() as f64;
        if mode == SimMode::MonoServer {
            baseline_cpu = sums.1 / n;
        }
        table.row([
            mode.to_string(),
            format!("{:.2}", sums.0 / n),
            format!("{:.2}", sums.1 / n),
            format!("{:.2}", sums.2 / n),
            format!("{:.3}", sums.3 / n),
            format!("{:.1}", sums.4 as f64 / n / 1024.0),
            format!("{:.0}", sums.5 as f64 / n),
        ]);
    }
    println!("{}", table.render());

    // ----- scaling the number of subcollections -----
    println!("Resource growth with the number of subcollections (CV, multi-disk):\n");
    let mut table = TextTable::new([
        "subcollections",
        "response (s)",
        "CPU (s)",
        "CPU vs MS",
        "postings",
    ]);
    for n_subs in [2usize, 4, 8, 16] {
        let subs = split_into(&corpus, n_subs);
        let split_parts: Vec<(&str, &[TrecDoc])> = subs
            .iter()
            .map(|s| (s.name.as_str(), s.docs.as_slice()))
            .collect();
        let mut driver = SimDriver::new(
            &split_parts,
            Analyzer::default(),
            CiParams {
                group_size: 10,
                k_prime: 100,
            },
        )
        .expect("driver");
        let topo = Topology::multi_disk(n_subs);
        let mut sums = (0.0f64, 0.0f64, 0u64);
        for q in &query_refs {
            let c = driver
                .time_query(
                    &topo,
                    &cost,
                    SimMode::Distributed(Methodology::CentralVocabulary),
                    q,
                    k,
                )
                .expect("simulation");
            sums.0 += c.total_time;
            sums.1 += c.cpu_busy;
            sums.2 += c.postings_decoded;
        }
        let n = query_refs.len() as f64;
        table.row([
            n_subs.to_string(),
            format!("{:.2}", sums.0 / n),
            format!("{:.2}", sums.1 / n),
            format!("{:.2}x", (sums.1 / n) / baseline_cpu),
            format!("{:.0}", sums.2 as f64 / n),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Shape checks: every distributed mode consumes more total CPU than MS \
         even when it responds faster — vocabulary access and per-query fixed \
         work repeat at each librarian; and total cost grows with the number \
         of subcollections while response time barely improves. That is the \
         paper's conclusion: fast and effective, but not efficient."
    );
}
