//! Reproduces the §4/§5 in-text storage figures: the central vocabulary
//! is small ("less than 10 Mb for the gigabyte of text"), the full
//! central index much larger ("around 40 Mb"), and grouping at G = 10
//! roughly halves index size — swept here over G ∈ {1, 2, 5, 10, 20, 50}.
//!
//! ```sh
//! cargo run --release -p teraphim-bench --bin index_sizes [-- --small]
//! ```

use teraphim_bench::{corpus_parts, HarnessOptions, TextTable};
use teraphim_engine::Collection;
use teraphim_index::stats::merge_stats;
use teraphim_index::{CollectionStats, GroupedIndex, Vocabulary};
use teraphim_text::Analyzer;

fn main() {
    let opts = HarnessOptions::from_args();
    let corpus = opts.corpus();
    let parts = corpus_parts(&corpus);

    let collections: Vec<Collection> = parts
        .iter()
        .map(|(name, docs)| Collection::build(name, Analyzer::default(), docs))
        .collect();
    let text_bytes = corpus.text_bytes();

    // Central vocabulary (CV state): merged vocabulary + statistics.
    let stat_parts: Vec<(&Vocabulary, &CollectionStats)> = collections
        .iter()
        .map(|c| (c.index().vocab(), c.index().stats()))
        .collect();
    let (gv, gs, _) = merge_stats(&stat_parts);
    let cv_bytes = gv.serialized_len() + gs.to_bytes().len();

    println!("Storage figures ({} KB of text)\n", text_bytes / 1024);
    println!(
        "central vocabulary: {:>8} KB  ({:.2}% of text)   [paper: <10 MB of 1 GB = <1%]",
        cv_bytes / 1024,
        100.0 * cv_bytes as f64 / text_bytes as f64
    );

    let indexes: Vec<&teraphim_index::InvertedIndex> =
        collections.iter().map(Collection::index).collect();
    let flat = GroupedIndex::build(&indexes, 1).expect("G=1 index");
    println!(
        "full central index (G=1): {:>5} KB  ({:.2}% of text)  [paper: ~40 MB of 1 GB = ~4%]\n",
        flat.index_bytes() / 1024,
        100.0 * flat.index_bytes() as f64 / text_bytes as f64
    );

    let mut table = TextTable::new(["G", "groups", "index KB", "vs G=1", "postings KB"]);
    for g in [1u32, 2, 5, 10, 20, 50] {
        let grouped = GroupedIndex::build(&indexes, g).expect("grouped index");
        table.row([
            g.to_string(),
            grouped.num_groups().to_string(),
            (grouped.index_bytes() / 1024).to_string(),
            format!(
                "{:.2}x",
                grouped.index_bytes() as f64 / flat.index_bytes() as f64
            ),
            (grouped.group_index().postings_bytes() / 1024).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Shape checks: index size decreases monotonically with G; the paper's \
         earlier study found G = 10 approximately halves index size — compare \
         the postings column, which excludes the G-invariant vocabulary."
    );
}
