//! Collection-selection ablation for the paper's concluding observation:
//! "Net savings are possible only if, given a query, it can be reliably
//! determined that many of the subcollections can be neglected."
//!
//! Runs GlOSS-style server ranking on the CV receptionist and sweeps the
//! number of librarians queried, reporting effectiveness retained versus
//! wire traffic and round trips saved.
//!
//! ```sh
//! cargo run --release -p teraphim-bench --bin selection [-- --small]
//! ```

use teraphim_bench::{corpus_parts, HarnessOptions, TextTable};
use teraphim_core::{Librarian, Methodology, Receptionist};
use teraphim_eval::{Judgments, QueryEval, SetEval};
use teraphim_net::InProcTransport;
use teraphim_text::Analyzer;

fn main() {
    let opts = HarnessOptions::from_args();
    let corpus = opts.corpus();
    let judgments = Judgments::from_qrels(&corpus.qrels());
    let parts = corpus_parts(&corpus);
    let depth = 1000.min(corpus.spec().total_docs());

    let transports: Vec<InProcTransport<Librarian>> = parts
        .iter()
        .map(|(name, docs)| InProcTransport::new(Librarian::build(name, Analyzer::default(), docs)))
        .collect();
    let mut receptionist = Receptionist::new(transports, Analyzer::default());
    receptionist.enable_cv().expect("CV preprocessing");

    println!(
        "Collection selection — CV with GlOSS-style server ranking\n\
         {} librarians, short queries ({}), depth {depth}\n",
        parts.len(),
        corpus.short_queries().len()
    );

    let mut table = TextTable::new([
        "librarians queried",
        "11-pt %",
        "rel@20",
        "round trips/query",
        "KB on wire/query",
    ]);
    for n_libs in (1..=parts.len()).rev() {
        let before = receptionist.traffic();
        let evals: Vec<QueryEval> = corpus
            .short_queries()
            .iter()
            .map(|q| {
                let (hits, _used) = if n_libs == parts.len() {
                    // Full CV through the standard path for reference.
                    let hits = receptionist
                        .query(Methodology::CentralVocabulary, &q.text, depth)
                        .expect("query");
                    (hits, Vec::new())
                } else {
                    receptionist
                        .query_selected(&q.text, depth, n_libs)
                        .expect("query")
                };
                let docnos = receptionist.headers(&hits).expect("headers");
                QueryEval::evaluate(&judgments, q.id, &docnos)
            })
            .collect();
        let after = receptionist.traffic();
        let set = SetEval::from_evals(&evals);
        let queries = corpus.short_queries().len() as f64;
        table.row([
            n_libs.to_string(),
            format!("{:.2}", set.eleven_point_pct),
            format!("{:.1}", set.relevant_in_top_20),
            format!(
                "{:.1}",
                (after.round_trips - before.round_trips) as f64 / queries
            ),
            format!(
                "{:.1}",
                (after.total_bytes() - before.total_bytes()) as f64 / queries / 1024.0
            ),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Shape checks: querying fewer, well-chosen librarians saves round \
         trips and bytes roughly proportionally; effectiveness degrades \
         gracefully because topical queries concentrate in few \
         subcollections (AP/WSJ are broad, FR/ZIFF narrow). This is the \
         'net savings' route the paper's conclusion identifies."
    );
}
