//! Reproduces the §4 in-text prediction about self-indexing skips: "with
//! skipping, when the number k' of groups to be processed is small the
//! CPU cost at the librarians would decrease by a factor of two or
//! more". Measures postings decoded (the CPU-cost unit) with and without
//! skipping across k' values.
//!
//! ```sh
//! cargo run --release -p teraphim-bench --bin skipping [-- --small]
//! ```

use teraphim_bench::{corpus_parts, HarnessOptions, TextTable};
use teraphim_core::sim::{SimDriver, SimMode};
use teraphim_core::{CiParams, Methodology};
use teraphim_simnet::{CostModel, Topology};
use teraphim_text::Analyzer;

fn main() {
    let opts = HarnessOptions::from_args();
    let corpus = opts.corpus();
    let parts = corpus_parts(&corpus);
    let queries: Vec<&str> = corpus
        .short_queries()
        .iter()
        .take(10)
        .map(|q| q.text.as_str())
        .collect();
    let topo = Topology::multi_disk(parts.len());
    let cost = CostModel::paper_scale();
    let max_groups = (corpus.spec().total_docs() as f64 / 10.0).ceil() as usize;

    println!("Skipping ablation — CI candidate scoring, G = 10, k = 20\n");
    let mut table = TextTable::new([
        "k'",
        "postings (full scan)",
        "postings (skipping)",
        "CPU reduction",
    ]);
    for k_prime in [5usize, 20, 100, 1000] {
        if k_prime > max_groups * 2 && k_prime != 1000 {
            continue;
        }
        let decode_counts = |skipping: bool| -> u64 {
            let mut driver = SimDriver::new(
                &parts,
                Analyzer::default(),
                CiParams {
                    group_size: 10,
                    k_prime,
                },
            )
            .expect("driver");
            driver.skipping = skipping;
            let mut total = 0u64;
            for q in &queries {
                let c = driver
                    .time_query(
                        &topo,
                        &cost,
                        SimMode::Distributed(Methodology::CentralIndex),
                        q,
                        20,
                    )
                    .expect("simulation");
                total += c.postings_decoded;
            }
            total
        };
        let full = decode_counts(false);
        let skip = decode_counts(true);
        table.row([
            k_prime.to_string(),
            full.to_string(),
            skip.to_string(),
            format!("{:.2}x", full as f64 / skip.max(1) as f64),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Shape checks: the reduction factor grows as k' shrinks (fewer \
         candidates, more to skip); at small k' it exceeds the paper's \
         predicted 2x. Note the counts include the receptionist's \
         group-ranking pass, which skipping does not touch."
    );
}
