//! Reproduces the §4 in-text experiment: effectiveness when the
//! collection is broken into **43 subcollections** of unevenly
//! distributed sizes (the paper: "The impact on effectiveness was
//! surprisingly small ... for the short queries and CN ... only
//! marginally poorer than in Table 1").
//!
//! ```sh
//! cargo run --release -p teraphim-bench --bin split43 [-- --small]
//! ```

use teraphim_bench::{corpus_parts, HarnessOptions, TextTable};
use teraphim_core::{CiParams, DistributedCollection, Methodology};
use teraphim_corpus::splits::split_into;
use teraphim_eval::{Judgments, QueryEval, SetEval};
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

fn main() {
    let opts = HarnessOptions::from_args();
    let corpus = opts.corpus();
    let judgments = Judgments::from_qrels(&corpus.qrels());
    let depth = 1000.min(corpus.spec().total_docs());
    // On the small corpus 43 parts would leave near-empty librarians.
    let n_parts = if opts.small { 16 } else { 43 };

    let four_way = DistributedCollection::build_with(
        &corpus_parts(&corpus),
        Analyzer::default(),
        CiParams {
            group_size: 10,
            k_prime: 100,
        },
    )
    .expect("4-way build");

    let subs = split_into(&corpus, n_parts);
    let sizes: Vec<usize> = subs.iter().map(|s| s.docs.len()).collect();
    let split_parts: Vec<(&str, &[TrecDoc])> = subs
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect();
    let many_way = DistributedCollection::build_with(
        &split_parts,
        Analyzer::default(),
        CiParams {
            group_size: 10,
            k_prime: 100,
        },
    )
    .expect("many-way build");

    println!(
        "43-subcollection experiment — short queries, depth {depth}\n\
         split sizes: min {} / max {} documents over {n_parts} subcollections\n",
        sizes.iter().min().expect("non-empty"),
        sizes.iter().max().expect("non-empty"),
    );

    let mut table = TextTable::new([
        "Mode",
        "4-way 11-pt %",
        "4-way rel@20",
        "many-way 11-pt %",
        "many-way rel@20",
    ]);
    for methodology in [Methodology::CentralNothing, Methodology::CentralVocabulary] {
        let eval = |system: &DistributedCollection| -> SetEval {
            let evals: Vec<QueryEval> = corpus
                .short_queries()
                .iter()
                .map(|q| {
                    let ranking = system
                        .ranked_docnos(methodology, &q.text, depth)
                        .expect("query");
                    QueryEval::evaluate(&judgments, q.id, &ranking)
                })
                .collect();
            SetEval::from_evals(&evals)
        };
        let four = eval(&four_way);
        let many = eval(&many_way);
        table.row([
            methodology.to_string(),
            format!("{:.2}", four.eleven_point_pct),
            format!("{:.1}", four.relevant_in_top_20),
            format!("{:.2}", many.eleven_point_pct),
            format!("{:.1}", many.relevant_in_top_20),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Shape checks: CV is split-invariant (identical columns, since global \
         weights are identical); CN degrades only marginally despite the \
         size spread, matching the paper's observation — and its caveat that \
         greater variation could eventually hurt."
    );
}
