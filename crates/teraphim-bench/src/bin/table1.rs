//! Reproduces **Table 1**: retrieval effectiveness (11-point average
//! recall-precision at 1000 retrieved; relevant documents in the top 20)
//! for MS/CV, CN, and CI at k' ∈ {100, 1000}, on the long and short
//! query sets.
//!
//! ```sh
//! cargo run --release -p teraphim-bench --bin table1 [-- --small] [--seed N]
//! ```

use teraphim_bench::{corpus_parts, HarnessOptions, TextTable};
use teraphim_core::{CiParams, DistributedCollection, Methodology};
use teraphim_corpus::Query;
use teraphim_eval::{Judgments, QueryEval, SetEval};
use teraphim_text::Analyzer;

fn evaluate(
    system: &DistributedCollection,
    judgments: &Judgments,
    methodology: Methodology,
    queries: &[Query],
    depth: usize,
) -> SetEval {
    let evals: Vec<QueryEval> = queries
        .iter()
        .map(|q| {
            let ranking = system
                .ranked_docnos(methodology, &q.text, depth)
                .expect("query evaluation");
            QueryEval::evaluate(judgments, q.id, &ranking)
        })
        .collect();
    SetEval::from_evals(&evals)
}

fn main() {
    let opts = HarnessOptions::from_args();
    let corpus = opts.corpus();
    let judgments = Judgments::from_qrels(&corpus.qrels());
    let parts = corpus_parts(&corpus);
    let depth = 1000.min(corpus.spec().total_docs());

    // One system per CI parameterisation (CN/CV are unaffected by k').
    let sys_k100 = DistributedCollection::build_with(
        &parts,
        Analyzer::default(),
        CiParams {
            group_size: 10,
            k_prime: 100,
        },
    )
    .expect("build k'=100");
    let sys_k1000 = DistributedCollection::build_with(
        &parts,
        Analyzer::default(),
        CiParams {
            group_size: 10,
            k_prime: 1000,
        },
    )
    .expect("build k'=1000");

    println!(
        "Table 1 reproduction — retrieval effectiveness ({} corpus, seed {})",
        if opts.small { "small" } else { "trec-like" },
        opts.seed
    );
    println!(
        "{} docs, G = 10, 11-pt at {} retrieved; paper values in brackets\n",
        corpus.spec().total_docs(),
        depth
    );

    for (label, queries, paper) in [
        (
            "Long queries (51-200)",
            corpus.long_queries(),
            // Paper Table 1, long queries: (11-pt %, rel@20).
            [
                ("MS and CV", 23.07, 8.2),
                ("CN", 24.35, 8.6),
                ("CI, k'=100", 10.49, 7.2),
                ("CI, k'=1000", 21.10, 8.5),
            ],
        ),
        (
            "Short queries (202-250)",
            corpus.short_queries(),
            [
                ("MS and CV", 15.67, 4.7),
                ("CN", 16.21, 4.9),
                ("CI, k'=100", 14.01, 5.3),
                ("CI, k'=1000", 16.81, 5.0),
            ],
        ),
    ] {
        let cv = evaluate(
            &sys_k100,
            &judgments,
            Methodology::CentralVocabulary,
            queries,
            depth,
        );
        let cn = evaluate(
            &sys_k100,
            &judgments,
            Methodology::CentralNothing,
            queries,
            depth,
        );
        // CI is capped at k'·G scored documents.
        let ci100 = evaluate(
            &sys_k100,
            &judgments,
            Methodology::CentralIndex,
            queries,
            depth.min(100 * 10),
        );
        let ci1000 = evaluate(
            &sys_k1000,
            &judgments,
            Methodology::CentralIndex,
            queries,
            depth.min(1000 * 10),
        );

        let mut table =
            TextTable::new(["Mode", "11-pt avg %", "(paper)", "rel in top 20", "(paper)"]);
        for ((name, paper_11, paper_20), set) in paper.iter().zip([cv, cn, ci100, ci1000]) {
            table.row([
                (*name).to_string(),
                format!("{:.2}", set.eleven_point_pct),
                format!("[{paper_11:.2}]"),
                format!("{:.1}", set.relevant_in_top_20),
                format!("[{paper_20:.1}]"),
            ]);
        }
        println!("{label} — {} queries", queries.len());
        println!("{}", table.render());
    }
    println!(
        "Shape checks: CV == MS by construction (bit-identical scores); CN ~ CV; \
         CI k'=100 depresses the 11-pt average while rel@20 stays close; \
         CI k'=1000 recovers CV-level effectiveness."
    );
}
