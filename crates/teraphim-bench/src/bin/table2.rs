//! Reproduces **Table 2**: WAN connectivity — network hops and average
//! round-trip ping time per remote site, plus the simulated ping of the
//! WAN topology preset (which must match, since the preset is built from
//! the paper's measurements).
//!
//! ```sh
//! cargo run --release -p teraphim-bench --bin table2
//! ```

use teraphim_bench::TextTable;
use teraphim_simnet::{CostModel, SimNetwork, Topology};

fn main() {
    let topo = Topology::wan_table2_order();
    let net = SimNetwork::new(&topo, CostModel::default());

    println!("Table 2 reproduction — network communication costs\n");
    let mut table = TextTable::new([
        "Location",
        "Hops from Melbourne",
        "Paper ping (s)",
        "Simulated ping (s)",
    ]);
    for (i, (site, hops, ping)) in Topology::table2_sites().iter().enumerate() {
        table.row([
            (*site).to_string(),
            hops.to_string(),
            format!("{ping:.2}"),
            format!("{:.2}", net.ping(i)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The WAN preset drives the Table 3/4 simulations; its per-site RTTs \
         are taken directly from the paper's measurements, so the simulated \
         ping column must equal the paper column exactly."
    );

    // Sanity: the paper's observation that Israel (28 hops, transiting
    // the US) is the costliest link.
    let worst = Topology::table2_sites()
        .iter()
        .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
        .expect("non-empty")
        .0;
    println!("\nslowest site: {worst} (dominates WAN response, as in §4)");
}
