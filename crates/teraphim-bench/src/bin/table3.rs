//! Reproduces **Table 3**: elapsed seconds per query, *index processing
//! only* (steps 1–3), k = 20 and k' = 100, short queries, across the
//! four hardware configurations.
//!
//! ```sh
//! cargo run --release -p teraphim-bench --bin table3 [-- --small]
//! ```

use teraphim_bench::{corpus_parts, HarnessOptions, TextTable};
use teraphim_core::sim::{SimDriver, SimMode};
use teraphim_core::{CiParams, Methodology};
use teraphim_simnet::{CostModel, Topology};
use teraphim_text::Analyzer;

fn main() {
    let opts = HarnessOptions::from_args();
    let corpus = opts.corpus();
    let parts = corpus_parts(&corpus);
    let mut driver = SimDriver::new(
        &parts,
        Analyzer::default(),
        CiParams {
            group_size: 10,
            k_prime: 100,
        },
    )
    .expect("driver");

    // The paper could not completely trial the long queries over the WAN
    // ("network problems"); `--long` runs them here, where the expected
    // "same trends" can actually be verified.
    let use_long = opts.has_flag("--long");
    let query_set = if use_long {
        corpus.long_queries()
    } else {
        corpus.short_queries()
    };
    let queries: Vec<&str> = query_set.iter().map(|q| q.text.as_str()).collect();
    let k = 20;
    let cost = CostModel::paper_scale();

    let configs = [
        Topology::mono_disk(parts.len()),
        Topology::multi_disk(parts.len()),
        Topology::lan(),
        Topology::wan(),
    ];
    // Paper Table 3 values for comparison: mode -> [mono, multi, LAN, WAN].
    let paper: [(&str, SimMode, [Option<f64>; 4]); 4] = [
        ("MS", SimMode::MonoServer, [Some(1.07), None, None, None]),
        (
            "CN",
            SimMode::Distributed(Methodology::CentralNothing),
            [Some(1.11), Some(0.91), Some(0.91), Some(4.21)],
        ),
        (
            "CV",
            SimMode::Distributed(Methodology::CentralVocabulary),
            [Some(1.17), Some(0.90), Some(0.82), Some(4.20)],
        ),
        (
            "CI",
            SimMode::Distributed(Methodology::CentralIndex),
            [Some(1.55), Some(1.42), Some(1.25), Some(4.86)],
        ),
    ];

    println!(
        "Table 3 reproduction — elapsed time (sec/query), index processing only\n\
         {} queries ({}), k = {k}, k' = 100, G = 10; paper values in brackets\n",
        if use_long { "long" } else { "short" },
        queries.len()
    );
    let mut table = TextTable::new(["Mode", "mono-disk", "multi-disk", "LAN", "WAN"]);
    for (name, mode, paper_row) in paper {
        let mut cells = vec![name.to_string()];
        for (i, topo) in configs.iter().enumerate() {
            if name == "MS" && i > 0 {
                cells.push("-".into());
                continue;
            }
            let (index_avg, _) = driver
                .time_query_set(topo, &cost, mode, &queries, k)
                .expect("simulation");
            // Paper values are for the short query set only.
            let paper_note = paper_row[i]
                .filter(|_| !use_long)
                .map(|p| format!(" [{p:.2}]"))
                .unwrap_or_default();
            cells.push(format!("{index_avg:.2}{paper_note}"));
        }
        table.row(cells);
    }
    println!("{}", table.render());
    println!(
        "Shape checks: multi-disk <= mono-disk; LAN comparable to multi-disk; \
         WAN slowest by a wide margin; CI slower than CN/CV in every \
         configuration (sequential central-index processing)."
    );
}
