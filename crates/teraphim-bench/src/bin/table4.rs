//! Reproduces **Table 4**: elapsed seconds per query *including document
//! fetch* (steps 1–4), k = 20 and k' = 100, short queries, across the
//! four hardware configurations.
//!
//! `--bundle-all` runs the ablation in which CN/CV also bundle their
//! document fetches (one round trip per librarian); the paper's
//! implementation fetched per document, which is what dominates its WAN
//! column and what CI's naturally-bundled ranges avoid.
//!
//! ```sh
//! cargo run --release -p teraphim-bench --bin table4 [-- --small] [--bundle-all]
//! ```

use teraphim_bench::{corpus_parts, HarnessOptions, TextTable};
use teraphim_core::sim::{SimDriver, SimMode};
use teraphim_core::{CiParams, Methodology};
use teraphim_simnet::{CostModel, Topology};
use teraphim_text::Analyzer;

fn main() {
    let opts = HarnessOptions::from_args();
    let corpus = opts.corpus();
    let parts = corpus_parts(&corpus);
    let mut driver = SimDriver::new(
        &parts,
        Analyzer::default(),
        CiParams {
            group_size: 10,
            k_prime: 100,
        },
    )
    .expect("driver");
    driver.bundle_all_fetches = opts.has_flag("--bundle-all");

    // The paper could not completely trial the long queries over the WAN
    // ("network problems"); `--long` runs them here, where the expected
    // "same trends" can actually be verified.
    let use_long = opts.has_flag("--long");
    let query_set = if use_long {
        corpus.long_queries()
    } else {
        corpus.short_queries()
    };
    let queries: Vec<&str> = query_set.iter().map(|q| q.text.as_str()).collect();
    let k = 20;
    let cost = CostModel::paper_scale();

    let configs = [
        Topology::mono_disk(parts.len()),
        Topology::multi_disk(parts.len()),
        Topology::lan(),
        Topology::wan(),
    ];
    let paper: [(&str, SimMode, [Option<f64>; 4]); 4] = [
        ("MS", SimMode::MonoServer, [Some(1.43), None, None, None]),
        (
            "CN",
            SimMode::Distributed(Methodology::CentralNothing),
            [Some(1.33), Some(1.31), Some(1.33), Some(15.04)],
        ),
        (
            "CV",
            SimMode::Distributed(Methodology::CentralVocabulary),
            [Some(1.49), Some(1.37), Some(1.27), Some(14.71)],
        ),
        (
            "CI",
            SimMode::Distributed(Methodology::CentralIndex),
            [Some(2.00), Some(2.08), Some(1.63), Some(10.71)],
        ),
    ];

    println!(
        "Table 4 reproduction — elapsed time (sec/query), including document fetch\n\
         {} queries ({}), k = {k}, k' = 100, G = 10{}; paper values in brackets\n",
        if use_long { "long" } else { "short" },
        queries.len(),
        if driver.bundle_all_fetches {
            " — ABLATION: all fetches bundled"
        } else {
            ""
        }
    );
    let mut table = TextTable::new(["Mode", "mono-disk", "multi-disk", "LAN", "WAN"]);
    for (name, mode, paper_row) in paper {
        let mut cells = vec![name.to_string()];
        for (i, topo) in configs.iter().enumerate() {
            if name == "MS" && i > 0 {
                cells.push("-".into());
                continue;
            }
            let (_, total_avg) = driver
                .time_query_set(topo, &cost, mode, &queries, k)
                .expect("simulation");
            // Paper values are for the short query set only.
            let paper_note = paper_row[i]
                .filter(|_| !use_long)
                .map(|p| format!(" [{p:.2}]"))
                .unwrap_or_default();
            cells.push(format!("{total_avg:.2}{paper_note}"));
        }
        table.row(cells);
    }
    println!("{}", table.render());
    println!(
        "Shape checks: fetching adds little in the local configurations but \
         dominates the WAN column for CN/CV (per-document round trips); CI's \
         bundled ranges make it the *fastest* distributed mode on the WAN in \
         total time despite the slowest index phase — the paper's crossover. \
         Run with --bundle-all to watch the crossover disappear."
    );
}
