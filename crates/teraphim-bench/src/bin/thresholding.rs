//! Reproduces the §5 thresholding discussion:
//!
//! * Persin et al.'s *query-time* thresholding — "the volume of index
//!   information processed can be reduced by a factor of five without
//!   reducing effectiveness" — via accumulator-limited evaluation
//!   (`teraphim_engine::thresholding`);
//! * the paper's own preliminary finding that *static* index pruning
//!   "that only reduced index size by a third severely degraded
//!   effectiveness" (`teraphim_index::pruning`).
//!
//! ```sh
//! cargo run --release -p teraphim-bench --bin thresholding [-- --small]
//! ```

use teraphim_bench::{HarnessOptions, TextTable};
use teraphim_corpus::SyntheticCorpus;
use teraphim_engine::ranking::{local_weights, rank};
use teraphim_engine::thresholding::{rank_limited, LimitMode};
use teraphim_engine::Collection;
use teraphim_eval::{Judgments, QueryEval, SetEval};
use teraphim_index::pruning::{prune, PruneParams};
use teraphim_index::InvertedIndex;
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

fn mono(corpus: &SyntheticCorpus) -> Collection {
    let all: Vec<TrecDoc> = corpus
        .subcollections()
        .iter()
        .flat_map(|s| s.docs.iter().cloned())
        .collect();
    Collection::build("MS", Analyzer::default(), &all)
}

/// Evaluates rankings produced by `run` over the short query set.
fn effectiveness<F>(
    corpus: &SyntheticCorpus,
    col: &Collection,
    judgments: &Judgments,
    mut run: F,
) -> SetEval
where
    F: FnMut(&Collection, &str) -> Vec<teraphim_engine::ScoredDoc>,
{
    let depth_evals: Vec<QueryEval> = corpus
        .short_queries()
        .iter()
        .map(|q| {
            let hits = run(col, &q.text);
            let docnos: Vec<String> = hits.iter().map(|h| col.docno(h.doc).to_owned()).collect();
            QueryEval::evaluate(judgments, q.id, &docnos)
        })
        .collect();
    SetEval::from_evals(&depth_evals)
}

fn main() {
    let opts = HarnessOptions::from_args();
    let corpus = opts.corpus();
    let judgments = Judgments::from_qrels(&corpus.qrels());
    let col = mono(&corpus);
    let depth = 1000.min(corpus.spec().total_docs());

    // ---------------- query-time thresholding ----------------
    println!("Query-time thresholding (quit/continue accumulator limiting)\n");
    let exact = effectiveness(&corpus, &col, &judgments, |c, q| c.ranked_query(q, depth));
    let exact_postings: u64 = corpus
        .short_queries()
        .iter()
        .map(|q| {
            let pairs = col.analyze_query(&q.text);
            let w = local_weights(col.index(), &pairs);
            rank_limited(col.index(), &w, depth, usize::MAX, LimitMode::Continue).postings_processed
        })
        .sum();

    let mut table = TextTable::new([
        "accumulators",
        "mode",
        "postings",
        "reduction",
        "11-pt %",
        "rel@20",
    ]);
    table.row([
        "unlimited".to_string(),
        "-".to_string(),
        exact_postings.to_string(),
        "1.0x".to_string(),
        format!("{:.2}", exact.eleven_point_pct),
        format!("{:.1}", exact.relevant_in_top_20),
    ]);
    for budget in [2000usize, 500, 100] {
        for mode in [LimitMode::Continue, LimitMode::Quit] {
            let mut postings = 0u64;
            let set = effectiveness(&corpus, &col, &judgments, |c, q| {
                let pairs = c.analyze_query(q);
                let w = local_weights(c.index(), &pairs);
                let limited = rank_limited(c.index(), &w, depth, budget, mode);
                postings += limited.postings_processed;
                limited.hits
            });
            table.row([
                budget.to_string(),
                format!("{mode:?}"),
                postings.to_string(),
                format!("{:.1}x", exact_postings as f64 / postings.max(1) as f64),
                format!("{:.2}", set.eleven_point_pct),
                format!("{:.1}", set.relevant_in_top_20),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Shape checks: modest budgets cut postings processed several-fold with \
         little effectiveness loss (Persin et al.'s 'factor of five'); tiny \
         budgets start to hurt.\n"
    );

    // ---------------- static index pruning ----------------
    println!("Static index pruning (drop low-f_dt postings of common terms)\n");
    let mut table = TextTable::new(["min f_dt", "index size", "11-pt %", "rel@20"]);
    table.row([
        "unpruned".to_string(),
        "100.0%".to_string(),
        format!("{:.2}", exact.eleven_point_pct),
        format!("{:.1}", exact.relevant_in_top_20),
    ]);
    for min_f_dt in [2u32, 3, 5] {
        let (pruned, report) = prune(
            col.index(),
            PruneParams {
                min_f_dt,
                common_df_cutoff: 16,
            },
        )
        .expect("prune");
        let set = effectiveness(&corpus, &col, &judgments, |c, q| {
            let pairs = c.analyze_query(q);
            let w: Vec<_> = local_weights(&pruned, &pairs);
            rank_on(&pruned, &w, depth)
        });
        table.row([
            min_f_dt.to_string(),
            format!("{:.1}%", 100.0 * report.size_ratio()),
            format!("{:.2}", set.eleven_point_pct),
            format!("{:.1}", set.relevant_in_top_20),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Shape checks: pruning that removes roughly a third of the postings \
         volume costs substantially more effectiveness than query-time \
         thresholding at comparable savings — the paper's reason for \
         deferring it to future work."
    );
}

fn rank_on(
    index: &InvertedIndex,
    weighted: &[teraphim_engine::ranking::WeightedTerm],
    depth: usize,
) -> Vec<teraphim_engine::ScoredDoc> {
    rank(index, weighted, depth)
}
