//! Shared harness code for the table-reproduction binaries and
//! criterion benches.
//!
//! Every table and in-text figure of the paper's evaluation has a binary
//! in `src/bin/` (see DESIGN.md §4 for the index):
//!
//! | target | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 — retrieval effectiveness |
//! | `table2` | Table 2 — WAN connectivity / ping times |
//! | `table3` | Table 3 — elapsed time, index processing only |
//! | `table4` | Table 4 — elapsed time including document fetch |
//! | `split43` | §4 in-text — the 43-subcollection experiment |
//! | `index_sizes` | §4/§5 in-text — vocabulary/index sizes, group-size sweep |
//! | `skipping` | §4 in-text — skipping's ≥2× CPU reduction |
//! | `compression_report` | §2 in-text — compressed index ≤ ~10% of text |
//!
//! Binaries accept `--small` (fast corpus, for smoke runs) and
//! `--seed N`. The full corpus is [`CorpusSpec::trec_like`].

use teraphim_corpus::{CorpusSpec, SyntheticCorpus};
use teraphim_text::sgml::TrecDoc;

/// Command-line options shared by the table binaries.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Use the small corpus preset (fast; for smoke testing).
    pub small: bool,
    /// Generation seed.
    pub seed: u64,
    /// Extra flags not consumed by the shared parser.
    pub rest: Vec<String>,
}

impl HarnessOptions {
    /// Parses `std::env::args`, accepting `--small` and `--seed N`.
    pub fn from_args() -> HarnessOptions {
        let mut small = false;
        let mut seed = 1998; // the paper's year, for determinism with character
        let mut rest = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--small" => small = true,
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--seed requires an integer"));
                }
                other => rest.push(other.to_owned()),
            }
        }
        HarnessOptions { small, seed, rest }
    }

    /// True if `flag` appeared among the unparsed arguments.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }

    /// The corpus specification these options select.
    pub fn spec(&self) -> CorpusSpec {
        if self.small {
            CorpusSpec::small(self.seed)
        } else {
            CorpusSpec::trec_like(self.seed)
        }
    }

    /// Generates the corpus.
    pub fn corpus(&self) -> SyntheticCorpus {
        SyntheticCorpus::generate(&self.spec())
    }
}

/// Borrowed `(name, docs)` views over a corpus's subcollections.
pub fn corpus_parts(corpus: &SyntheticCorpus) -> Vec<(&str, &[TrecDoc])> {
    corpus
        .subcollections()
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect()
}

/// A fixed-width text table with a markdown-ish rendering, for printing
/// reproduction results next to the paper's numbers.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align all but the first column.
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["mode", "value"]);
        t.row(["CN", "1.11"]);
        t.row(["CV-long-name", "0.9"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("mode"));
        assert!(lines[2].starts_with("CN"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn wrong_arity_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn corpus_parts_match_subcollections() {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::small(1));
        let parts = corpus_parts(&corpus);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].0, "AP");
        assert_eq!(parts[0].1.len(), corpus.subcollections()[0].docs.len());
    }

    #[test]
    fn options_default_to_full_corpus() {
        let opts = HarnessOptions {
            small: false,
            seed: 3,
            rest: vec!["--bundle-all".into()],
        };
        assert!(!opts.spec().subcollections.is_empty());
        assert!(opts.has_flag("--bundle-all"));
        assert!(!opts.has_flag("--other"));
    }
}
