//! A minimal option parser: `--flag`, `--key value`, `-k value`.
//!
//! Deliberately dependency-free — the workspace's only binary interface
//! is small and stable, and the parser is thoroughly unit-tested.

use std::collections::HashMap;

/// Parsed options: flags, key-value options, and positional arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    options: HashMap<String, String>,
    flags: Vec<String>,
    positional: Vec<String>,
}

impl Args {
    /// Parses raw arguments given the set of boolean flag names (which
    /// consume no value).
    ///
    /// # Errors
    ///
    /// Returns a message when a non-flag option is missing its value.
    pub fn parse(argv: &[String], flag_names: &[&str]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = argv.iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--").or_else(|| arg.strip_prefix('-')) {
                if flag_names.contains(&name) {
                    args.flags.push(name.to_owned());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("option --{name} requires a value"))?;
                    args.options.insert(name.to_owned(), value.clone());
                }
            } else {
                args.positional.push(arg.clone());
            }
        }
        Ok(args)
    }

    /// The value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// The value of `--name` or an error naming the option.
    ///
    /// # Errors
    ///
    /// Returns a message when the option is absent.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required option --{name}"))
    }

    /// True if `--name` was passed as a flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Parses `--name` as a value of type `T`, with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("option --{name}: cannot parse {raw:?}")),
        }
    }

    /// Positional arguments. No current subcommand takes positionals,
    /// but the parser collects them so future commands (and tests) can.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_options_flags_and_positionals() {
        let args = Args::parse(
            &argv(&["--index", "a.tcol", "--small", "extra", "-k", "10"]),
            &["small"],
        )
        .unwrap();
        assert_eq!(args.get("index"), Some("a.tcol"));
        assert!(args.flag("small"));
        assert!(!args.flag("other"));
        assert_eq!(args.get("k"), Some("10"));
        assert_eq!(args.positional(), ["extra"]);
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = Args::parse(&argv(&["--index"]), &[]).unwrap_err();
        assert!(err.contains("--index"));
    }

    #[test]
    fn require_reports_the_option_name() {
        let args = Args::parse(&argv(&[]), &[]).unwrap();
        let err = args.require("query").unwrap_err();
        assert!(err.contains("--query"));
    }

    #[test]
    fn get_parsed_defaults_and_errors() {
        let args = Args::parse(&argv(&["--k", "7"]), &[]).unwrap();
        assert_eq!(args.get_parsed("k", 20usize).unwrap(), 7);
        assert_eq!(args.get_parsed("missing", 20usize).unwrap(), 20);
        let bad = Args::parse(&argv(&["--k", "x"]), &[]).unwrap();
        assert!(bad.get_parsed::<usize>("k", 0).is_err());
    }
}
