//! `teraphim add` — append documents to an existing collection file.
//!
//! The update path the paper motivates: librarians are updated locally
//! and independently; no receptionist or global rebuild is involved.

use crate::args::Args;
use crate::commands::{load_collection, outln};
use teraphim_text::sgml::parse_trec;

const HELP: &str = "\
usage: teraphim add --index FILE.tcol --input DELTA.sgml

indexes the documents in DELTA.sgml into the existing collection (delta
index merge; old documents are not touched) and rewrites the file";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments, parse or I/O failure.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["help"])?;
    if args.flag("help") {
        outln!("{HELP}");
        return Ok(());
    }
    let index_path = args.require("index")?;
    let input = args.require("input")?;
    let mut collection = load_collection(index_path)?;
    let before = collection.num_docs();

    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let docs = parse_trec(&text).map_err(|e| format!("cannot parse {input}: {e}"))?;
    if docs.is_empty() {
        return Err(format!("{input} contains no <DOC> elements"));
    }
    collection
        .append_documents(&docs)
        .map_err(|e| format!("append failed: {e}"))?;
    collection
        .save(std::path::Path::new(index_path))
        .map_err(|e| format!("cannot rewrite {index_path}: {e}"))?;
    outln!(
        "appended {} documents ({} -> {}); index now {} KB",
        docs.len(),
        before,
        collection.num_docs(),
        collection.index().index_bytes() / 1024
    );
    Ok(())
}
