//! `teraphim add` — append documents to an existing collection file or
//! persistent store.
//!
//! The update path the paper motivates: librarians are updated locally
//! and independently; no receptionist or global rebuild is involved.

use crate::args::Args;
use crate::commands::{load_collection, outln};
use teraphim_store::IndexStore;
use teraphim_text::sgml::parse_trec;

const HELP: &str = "\
usage: teraphim add (--index FILE.tcol | --store DIR) --input DELTA.sgml

indexes the documents in DELTA.sgml into the existing collection (delta
index merge; old documents are not touched).

--index FILE.tcol  append in memory and rewrite the collection file
--store DIR        commit the batch to a persistent versioned store:
                   the batch is appended to the write-ahead log and
                   synced before this command reports success, and the
                   store's durable epoch advances by one. A crash at
                   any byte of the append leaves the store openable at
                   the previous epoch";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments, parse or I/O failure.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["help"])?;
    if args.flag("help") {
        outln!("{HELP}");
        return Ok(());
    }
    let index_path = args.get("index");
    let store_dir = args.get("store");
    if index_path.is_some() == store_dir.is_some() {
        return Err(format!("need exactly one of --index or --store\n\n{HELP}"));
    }
    let input = args.require("input")?;
    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let docs = parse_trec(&text).map_err(|e| format!("cannot parse {input}: {e}"))?;
    if docs.is_empty() {
        return Err(format!("{input} contains no <DOC> elements"));
    }

    if let Some(dir) = store_dir {
        let (mut store, collection) = IndexStore::open(std::path::Path::new(dir))
            .map_err(|e| format!("cannot open store {dir}: {e}"))?;
        let before = collection.num_docs();
        let epoch = store
            .log_batch(&docs)
            .map_err(|e| format!("append failed: {e}"))?;
        outln!(
            "appended {} documents ({} -> {}); store {dir} now at epoch {epoch}, \
             {} segment(s) + {} pending batch(es)",
            docs.len(),
            before,
            store.num_docs(),
            store.num_segments(),
            store.pending_batches()
        );
        return Ok(());
    }

    let index_path = index_path.unwrap();
    let mut collection = load_collection(index_path)?;
    let before = collection.num_docs();
    collection
        .append_documents(&docs)
        .map_err(|e| format!("append failed: {e}"))?;
    collection
        .save(std::path::Path::new(index_path))
        .map_err(|e| format!("cannot rewrite {index_path}: {e}"))?;
    outln!(
        "appended {} documents ({} -> {}); index now {} KB",
        docs.len(),
        before,
        collection.num_docs(),
        collection.index().index_bytes() / 1024
    );
    Ok(())
}
