//! `teraphim boolean` — Boolean retrieval against a collection file.

use crate::args::Args;
use crate::commands::{load_collection, outln};

const HELP: &str = "\
usage: teraphim boolean --index FILE.tcol --expr 'cat AND (dog OR bird)'

evaluates the Boolean expression (AND / OR / NOT, parentheses) and prints
matching document identifiers";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments or query syntax.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["help"])?;
    if args.flag("help") {
        outln!("{HELP}");
        return Ok(());
    }
    let collection = load_collection(args.require("index")?)?;
    let expr = args.require("expr")?;
    let docs = collection.boolean_query(expr).map_err(|e| format!("{e}"))?;
    outln!("{} matching documents", docs.len());
    for doc in docs {
        outln!("{}", collection.docno(doc));
    }
    Ok(())
}
