//! `teraphim eval` — retrieval-effectiveness evaluation against live
//! librarian servers (or a single collection file).

use crate::args::Args;
use crate::commands::{load_collection, outln};
use teraphim_core::{CacheConfig, CiParams, Methodology, Receptionist};
use teraphim_eval::{Judgments, QueryEval, SetEval};
use teraphim_net::tcp::TcpTransport;
use teraphim_obs::Phase;
use teraphim_text::Analyzer;

const HELP: &str = "\
usage: teraphim eval --queries FILE.tsv --qrels FILE
                     (--servers ADDR[,ADDR...] [--methodology cn|cv|ci]
                      | --index FILE.tcol)
                     [--k N] [--trace-json FILE] [--metrics FILE]
                     [--cache SPEC]

FILE.tsv holds one `id<TAB>query text` per line (the gen-corpus output);
qrels is TREC format. Prints 11-pt average, relevant-in-top-20 and MAP.
With --servers this is a distributed evaluation through a receptionist;
with --index it evaluates the mono-server baseline.

--trace-json (with --servers) records a structured trace of every
query's lifecycle — per-librarian exchanges, retries, faults, phase
timings — writes them as JSON to FILE, and prints a per-phase latency
summary

--metrics (with --servers) tees the run into a metrics registry and
writes the final snapshot — per-librarian and per-methodology counters
and latency histograms — to FILE in the Prometheus text format

--cache (with --servers) enables the receptionist-side caches. SPEC is
`default` or comma-separated `key=value` pairs, any subset of:
  results=N     result-cache entries (default 256; 0 disables)
  shards=N      result-cache shards (default 4)
  terms=N       term-statistics entries (default 1024; 0 disables)
  doc-bytes=N   answer-document byte budget (default 1048576; 0 disables)
Hit/miss/eviction counters are printed after the run (and show up in
--metrics and --trace-json output)";

/// Parses a `--cache` specification: `default` or `key=value` pairs.
fn parse_cache_spec(spec: &str) -> Result<CacheConfig, String> {
    let mut config = CacheConfig::default();
    if spec.trim() == "default" {
        return Ok(config);
    }
    for pair in spec.split(',') {
        let pair = pair.trim();
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("--cache: expected key=value, got {pair:?}"))?;
        let value: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("--cache: {key}={value:?} is not an integer"))?;
        match key.trim() {
            "results" => config.result_entries = value,
            "shards" => config.result_shards = value,
            "terms" => config.term_entries = value,
            "doc-bytes" => config.doc_bytes = value,
            other => {
                return Err(format!(
                    "--cache: unknown key {other:?} (expected results, shards, terms, doc-bytes)"
                ))
            }
        }
    }
    Ok(config)
}

fn parse_queries(path: &str) -> Result<Vec<(u32, String)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut queries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (id, q) = line
            .split_once('\t')
            .ok_or_else(|| format!("{path}:{}: expected `id<TAB>query`", lineno + 1))?;
        let id = id
            .trim()
            .parse()
            .map_err(|_| format!("{path}:{}: bad query id {id:?}", lineno + 1))?;
        queries.push((id, q.to_owned()));
    }
    if queries.is_empty() {
        return Err(format!("{path} contains no queries"));
    }
    Ok(queries)
}

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments or I/O failure.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["help"])?;
    if args.flag("help") {
        outln!("{HELP}");
        return Ok(());
    }
    let queries = parse_queries(args.require("queries")?)?;
    let qrels_path = args.require("qrels")?;
    let qrels = std::fs::read_to_string(qrels_path)
        .map_err(|e| format!("cannot read {qrels_path}: {e}"))?;
    let judgments = Judgments::from_qrels(&qrels);
    let k = args.get_parsed("k", 1000usize)?;

    let trace_path = args.get("trace-json");
    let metrics_path = args.get("metrics");
    let cache_config = args.get("cache").map(parse_cache_spec).transpose()?;
    let mut trace_sink = None;
    let mut metrics_registry = None;
    let mut cache_stats = None;
    let mut degraded_queries = 0usize;
    let mut failed_librarians: Vec<usize> = Vec::new();
    let evals: Vec<QueryEval> = if let Some(servers) = args.get("servers") {
        let methodology = match args.get("methodology").unwrap_or("cv") {
            "cn" => Methodology::CentralNothing,
            "cv" => Methodology::CentralVocabulary,
            "ci" => Methodology::CentralIndex,
            other => return Err(format!("unknown methodology {other:?}")),
        };
        let transports = servers
            .split(',')
            .map(|addr| {
                TcpTransport::connect(addr.trim())
                    .map_err(|e| format!("cannot connect {addr}: {e}"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let mut receptionist = Receptionist::new(transports, Analyzer::default());
        if trace_path.is_some() {
            trace_sink = Some(receptionist.enable_tracing());
        }
        if metrics_path.is_some() {
            // Tees the trace sink when one is attached, otherwise runs a
            // metrics-only sink — either way the registry sees every event.
            metrics_registry = Some(receptionist.enable_metrics());
        }
        if let Some(config) = cache_config {
            receptionist.enable_cache(config);
        }
        match methodology {
            Methodology::CentralNothing => {}
            Methodology::CentralVocabulary => receptionist
                .enable_cv()
                .map_err(|e| format!("CV preprocessing failed: {e}"))?,
            Methodology::CentralIndex => receptionist
                .enable_ci(CiParams::default())
                .map_err(|e| format!("CI preprocessing failed: {e}"))?,
        }
        let evals = queries
            .iter()
            .map(|(id, q)| {
                // Degraded coverage (a librarian down mid-run) is folded
                // into the evaluation instead of aborting it: the ranking
                // over the surviving librarians is still scored. A
                // librarian can also die *between* the rank fan-out and
                // the header fetch, leaving hits that point at a dead
                // transport — re-running the query once lets the coverage
                // path exclude it cleanly. The health poll before the
                // retry is what makes that work under --cache: a result
                // hit replays the pre-death entry without any fan-out,
                // so only the poll can observe the casualty and bump the
                // cache generation, turning the retry into a stale miss.
                let mut attempt = 0;
                let (answer, ranking) = loop {
                    attempt += 1;
                    let answer = receptionist
                        .query_with_coverage(methodology, q, k)
                        .map_err(|e| format!("query {id} failed: {e}"))?;
                    match receptionist.headers(&answer.hits) {
                        Ok(ranking) => break (answer, ranking),
                        Err(_) if attempt == 1 => {
                            receptionist.fleet_health();
                            continue;
                        }
                        Err(e) => return Err(format!("query {id} failed: {e}")),
                    }
                };
                if answer.coverage.is_degraded() {
                    degraded_queries += 1;
                    for &lib in &answer.coverage.failed {
                        if !failed_librarians.contains(&lib) {
                            failed_librarians.push(lib);
                        }
                    }
                }
                Ok(QueryEval::evaluate(&judgments, *id, &ranking))
            })
            .collect::<Result<Vec<_>, String>>()?;
        cache_stats = receptionist.cache_stats();
        evals
    } else {
        if cache_config.is_some() {
            return Err(
                "--cache requires --servers (the mono baseline has no receptionist to cache)"
                    .to_owned(),
            );
        }
        let collection = load_collection(args.require("index")?)?;
        queries
            .iter()
            .map(|(id, q)| {
                let hits = collection.ranked_query(q, k);
                let docnos: Vec<String> = hits
                    .iter()
                    .map(|h| collection.docno(h.doc).to_owned())
                    .collect();
                QueryEval::evaluate(&judgments, *id, &docnos)
            })
            .collect()
    };

    if let Some(path) = trace_path {
        let sink = trace_sink
            .take()
            .ok_or("--trace-json requires --servers (the mono baseline has no fan-out to trace)")?;
        let traces = sink.take_traces();
        std::fs::write(path, teraphim_obs::traces_to_json(&traces))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        print_trace_summary(&traces, path)?;
    }

    if let Some(path) = metrics_path {
        let registry = metrics_registry
            .take()
            .ok_or("--metrics requires --servers (the mono baseline has no fan-out to meter)")?;
        let snapshot = registry.snapshot();
        let text = snapshot.render_prometheus();
        teraphim_obs::lint_prometheus(&text)
            .map_err(|e| format!("internal error: exposition failed lint: {e}"))?;
        std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
        let latency = snapshot.query_latency();
        outln!(
            "metrics written:   {path} ({} queries, p50 {} us, p99 {} us)",
            snapshot.queries,
            latency.p50(),
            latency.p99()
        );
    }

    if let Some(stats) = cache_stats {
        let line = |c: teraphim_core::CacheCounters| {
            let lookups = c.hits + c.misses;
            let rate = if lookups == 0 {
                0.0
            } else {
                100.0 * c.hits as f64 / lookups as f64
            };
            format!(
                "{}/{} hits ({rate:.1}%), {} stale, {} evicted",
                c.hits, lookups, c.stale, c.evictions
            )
        };
        outln!("cache (generation {}):", stats.generation);
        outln!("  results: {}", line(stats.results));
        outln!("  stats:   {}", line(stats.terms));
        outln!("  docs:    {}", line(stats.docs));
    }

    let set = SetEval::from_evals(&evals);
    outln!(
        "queries evaluated: {} (of {} supplied)",
        set.queries,
        queries.len()
    );
    outln!("11-pt average:     {:.2}%", set.eleven_point_pct);
    outln!("relevant in top 20: {:.2}", set.relevant_in_top_20);
    outln!("MAP:               {:.4}", set.map);
    if degraded_queries > 0 {
        failed_librarians.sort_unstable();
        outln!(
            "degraded queries:  {} (librarians failed: {:?})",
            degraded_queries,
            failed_librarians
        );
    }
    Ok(())
}

/// Prints the per-phase latency attribution and traffic totals rolled
/// up from `traces`.
fn print_trace_summary(traces: &[teraphim_obs::QueryTrace], path: &str) -> Result<(), String> {
    let query_count = traces
        .iter()
        .filter(|t| t.op.starts_with("query"))
        .count()
        .max(1) as u64;
    let mut phase_totals: Vec<(Phase, u64)> = Vec::new();
    let mut messages = 0u64;
    let mut bytes = 0u64;
    let mut retries = 0u64;
    let mut timeouts = 0u64;
    for trace in traces {
        let m = trace.metrics();
        for (phase, micros) in m.phase_micros {
            if let Some(slot) = phase_totals.iter_mut().find(|(p, _)| *p == phase) {
                slot.1 += micros;
            } else {
                phase_totals.push((phase, micros));
            }
        }
        messages += m.messages_sent + m.messages_received;
        bytes += m.bytes_sent + m.bytes_received;
        retries += m.retries;
        timeouts += m.timeouts;
    }
    outln!("traces written:    {} ({path})", traces.len());
    outln!("per-phase mean latency over {query_count} queries:");
    for (phase, total) in phase_totals {
        outln!(
            "  {:>14}: {:>9.1} us",
            phase.as_str(),
            total as f64 / query_count as f64
        );
    }
    outln!(
        "  messages: {messages}, payload bytes: {bytes}, retries: {retries}, timeouts: {timeouts}"
    );
    Ok(())
}
