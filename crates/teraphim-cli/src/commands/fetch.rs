//! `teraphim fetch` — print one document's text.

use crate::args::Args;
use crate::commands::{load_collection, outln};

const HELP: &str = "\
usage: teraphim fetch --index FILE.tcol --docno ID

decompresses and prints the document with external identifier ID";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments or an unknown docno.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["help"])?;
    if args.flag("help") {
        outln!("{HELP}");
        return Ok(());
    }
    let collection = load_collection(args.require("index")?)?;
    let docno = args.require("docno")?;
    let doc = collection
        .store()
        .doc_id(docno)
        .ok_or_else(|| format!("no document with identifier {docno}"))?;
    let text = collection
        .fetch(doc)
        .map_err(|e| format!("fetch failed: {e}"))?;
    outln!("{text}");
    Ok(())
}
