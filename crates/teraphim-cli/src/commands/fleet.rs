//! `teraphim fleet` — replica-group status and health-based routing for
//! an elastic fleet.

use std::collections::HashMap;

use crate::args::Args;
use crate::commands::outln;
use teraphim_core::health::{poll_one, HealthPolicy, HealthState, LibrarianHealth};
use teraphim_net::tcp::TcpTransport;
use teraphim_net::{ReplicaGroup, RoutingTable};

const HELP: &str = "\
usage: teraphim fleet --shards GROUP[;GROUP...]
                      [--degraded-error-rate RATE]

GROUP is the comma-separated replica set serving one shard
(subcollection), preferred replica first:

  teraphim fleet --shards '127.0.0.1:7070,127.0.0.1:7170;127.0.0.1:7071'

polls every replica with the admin Stats message, classifies each as
up / degraded / down, routes each shard to its healthiest live replica
(ties broken by replica id), and prints the per-replica table plus the
versioned routing table a receptionist would act on. Replica ids follow
the fleet convention: the primary of shard S is id S; extra replicas
take ids from S_count upward.

A replica that cannot be reached is reported down and left out of the
routing table; a shard whose replicas are all down routes nowhere and
is flagged";

/// One table row: which shard, which replica id, the address polled,
/// and the poll result.
struct Row {
    shard: u32,
    id: u32,
    addr: String,
    health: LibrarianHealth,
}

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments. Unreachable replicas
/// are reported in the table, not as an error — routing around them is
/// exactly what this command exists to show.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["help"])?;
    if args.flag("help") {
        println!("{HELP}");
        return Ok(());
    }
    let shards = args.require("shards")?;
    let policy = HealthPolicy {
        degraded_error_rate: args.get_parsed("degraded-error-rate", 0.1f64)?,
    };

    let groups: Vec<Vec<&str>> = shards
        .split(';')
        .map(|g| g.split(',').map(str::trim).collect())
        .collect();
    if groups.iter().any(|g| g.iter().any(|a| a.is_empty())) {
        return Err("--shards has an empty address; check the , and ; separators".into());
    }
    let n = u32::try_from(groups.len()).map_err(|_| "too many shards".to_owned())?;

    let table = RoutingTable::new();
    let mut rows: Vec<Row> = Vec::new();
    let mut next_id = n;
    for (shard, addrs) in groups.iter().enumerate() {
        let shard = shard as u32;
        let mut members: Vec<(u32, TcpTransport)> = Vec::new();
        for (r, addr) in addrs.iter().enumerate() {
            let id = if r == 0 {
                shard
            } else {
                next_id += 1;
                next_id - 1
            };
            let health = match TcpTransport::connect(addr) {
                Ok(mut transport) => {
                    let health = poll_one(id, &mut transport, policy);
                    if health.state != HealthState::Down {
                        members.push((id, transport));
                    }
                    health
                }
                Err(_) => LibrarianHealth::down(id),
            };
            rows.push(Row {
                shard,
                id,
                addr: (*addr).to_owned(),
                health,
            });
        }
        // Health-routed preference: up < degraded (down replicas never
        // made it into the group), ties broken by replica id.
        let rank: HashMap<u32, u32> = rows
            .iter()
            .filter(|row| row.shard == shard)
            .map(|row| {
                let class = match row.health.state {
                    HealthState::Up => 0,
                    HealthState::Degraded => 1,
                    HealthState::Down => 2,
                };
                (row.id, class)
            })
            .collect();
        let group = ReplicaGroup::new(shard, members).with_table(table.clone());
        group.prefer_by(|id| rank.get(&id).copied().unwrap_or(2));
    }

    outln!(
        "{:<5} {:>7} {:<21} {:<8} {:>9} {:>9} {:>7} {:>6}",
        "shard",
        "replica",
        "address",
        "state",
        "docs",
        "served",
        "errors",
        "epoch"
    );
    for row in &rows {
        outln!(
            "{:<5} {:>7} {:<21} {:<8} {:>9} {:>9} {:>7} {:>6}",
            row.shard,
            row.id,
            row.addr,
            row.health.state.as_str(),
            row.health.num_docs,
            row.health.requests_served,
            row.health.errors,
            row.health.epoch
        );
    }

    outln!("\nrouting table v{}:", table.version());
    for shard in 0..n {
        match table.shard(shard) {
            Some((replicas, preferred)) if !replicas.is_empty() => {
                let members: Vec<String> = replicas.iter().map(u32::to_string).collect();
                outln!(
                    "  shard {shard}: replicas [{}] -> {preferred}",
                    members.join(", ")
                );
            }
            _ => outln!("  shard {shard}: NO LIVE REPLICAS"),
        }
    }
    let down = rows
        .iter()
        .filter(|r| r.health.state == HealthState::Down)
        .count();
    outln!("\n{} shard(s), {} replica(s), {} down", n, rows.len(), down);
    Ok(())
}
