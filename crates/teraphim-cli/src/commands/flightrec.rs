//! `teraphim flightrec` — dump a live fleet's tail-latency flight
//! recorders.
//!
//! Each librarian served with `teraphim serve` keeps a fixed-size
//! buffer of span-tree exemplars for its slowest (and every faulted)
//! requests. This command fetches those buffers over the admin
//! `FlightRec` message and prints them, one JSON dump per server —
//! the post-incident view: what exactly were the worst requests doing,
//! phase by phase.

use crate::args::Args;
use crate::commands::outln;
use teraphim_net::tcp::TcpTransport;
use teraphim_net::{Message, Transport};

const HELP: &str = "\
usage: teraphim flightrec --servers ADDR[,ADDR...] [--out FILE]

fetches each librarian's flight-recorder dump (slowest + faulted
request exemplars as span trees) and prints it. --out appends every
dump to FILE instead of stdout — the shape CI uploads as a failure
artifact";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments or when `--out`
/// cannot be written. Unreachable servers are reported inline.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["help"])?;
    if args.flag("help") {
        println!("{HELP}");
        return Ok(());
    }
    let servers = args.require("servers")?;
    let mut dumps = String::new();
    for (i, addr) in servers.split(',').enumerate() {
        let addr = addr.trim();
        let dump = fetch_dump(addr);
        dumps.push_str(&format!("# librarian {i} @ {addr}\n"));
        match dump {
            Ok(json) => dumps.push_str(&json),
            Err(e) => dumps.push_str(&format!("unavailable: {e}\n")),
        }
    }
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &dumps).map_err(|e| format!("cannot write {path}: {e}"))?
        }
        None => {
            for line in dumps.lines() {
                outln!("{line}");
            }
        }
    }
    Ok(())
}

/// One server's dump, or a connection/protocol error message.
fn fetch_dump(addr: &str) -> Result<String, String> {
    let mut transport = TcpTransport::connect(addr).map_err(|e| e.to_string())?;
    match transport.request(&Message::FlightRecRequest) {
        Ok(Message::FlightRecReply { json }) => Ok(json),
        Ok(other) => Err(format!("unexpected reply {}", other.variant_name())),
        Err(e) => Err(e.to_string()),
    }
}
