//! `teraphim gen-corpus` — write the synthetic corpus as TREC SGML files
//! plus query and qrels files.

use crate::args::Args;
use std::io::Write;
use teraphim_corpus::{CorpusSpec, SyntheticCorpus};
use teraphim_text::sgml::to_trec;

const HELP: &str = "\
usage: teraphim gen-corpus --outdir DIR [--small] [--seed N]

writes one <NAME>.sgml file per subcollection, queries-long.tsv,
queries-short.tsv (id<TAB>text) and qrels.txt (TREC format)";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments or I/O failure.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["small", "help"])?;
    if args.flag("help") {
        println!("{HELP}");
        return Ok(());
    }
    let outdir = std::path::PathBuf::from(args.require("outdir")?);
    let seed = args.get_parsed("seed", 1998u64)?;
    let spec = if args.flag("small") {
        CorpusSpec::small(seed)
    } else {
        CorpusSpec::trec_like(seed)
    };
    std::fs::create_dir_all(&outdir).map_err(|e| format!("cannot create {outdir:?}: {e}"))?;

    let corpus = SyntheticCorpus::generate(&spec);
    for sub in corpus.subcollections() {
        let path = outdir.join(format!("{}.sgml", sub.name));
        std::fs::write(&path, to_trec(&sub.docs))
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        println!("wrote {path:?} ({} documents)", sub.docs.len());
    }
    for (name, queries) in [
        ("queries-long.tsv", corpus.long_queries()),
        ("queries-short.tsv", corpus.short_queries()),
    ] {
        let path = outdir.join(name);
        let mut file =
            std::fs::File::create(&path).map_err(|e| format!("cannot create {path:?}: {e}"))?;
        for q in queries {
            writeln!(file, "{}\t{}", q.id, q.text)
                .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        }
        println!("wrote {path:?} ({} queries)", queries.len());
    }
    let qrels_path = outdir.join("qrels.txt");
    std::fs::write(&qrels_path, corpus.qrels())
        .map_err(|e| format!("cannot write {qrels_path:?}: {e}"))?;
    println!("wrote {qrels_path:?}");
    Ok(())
}
