//! `teraphim index` — build a `.tcol` collection file (or a persistent
//! versioned store directory) from TREC SGML.

use crate::args::Args;
use teraphim_engine::Collection;
use teraphim_store::IndexStore;
use teraphim_text::sgml::parse_trec;
use teraphim_text::Analyzer;

const HELP: &str = "\
usage: teraphim index --name NAME --input FILE.sgml
                      (--output FILE.tcol | --store DIR)
                      [--no-stop] [--no-stem]

parses a TREC-format SGML file and builds the compressed inverted index
and document store.

--output FILE.tcol  write a self-contained collection file
--store DIR         create a persistent versioned store instead: the
                    collection becomes durable epoch 0 (an on-disk
                    segment plus manifest), and later `teraphim add
                    --store` batches advance the epoch through the
                    write-ahead log. Serve it with `teraphim serve
                    --store DIR`; inspect it with `teraphim store`";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments, parse or I/O failure.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["no-stop", "no-stem", "help"])?;
    if args.flag("help") {
        println!("{HELP}");
        return Ok(());
    }
    let name = args.require("name")?;
    let input = args.require("input")?;
    let output = args.get("output");
    let store_dir = args.get("store");
    if output.is_some() == store_dir.is_some() {
        return Err(format!("need exactly one of --output or --store\n\n{HELP}"));
    }

    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let docs = parse_trec(&text).map_err(|e| format!("cannot parse {input}: {e}"))?;
    if docs.is_empty() {
        return Err(format!("{input} contains no <DOC> elements"));
    }
    let analyzer = Analyzer::new()
        .with_stopping(!args.flag("no-stop"))
        .with_stemming(!args.flag("no-stem"));

    let collection = if let Some(dir) = store_dir {
        let (store, collection) =
            IndexStore::create(std::path::Path::new(dir), name, &analyzer, &docs)
                .map_err(|e| format!("cannot create store {dir}: {e}"))?;
        println!(
            "store {dir}: epoch {}, {} segment(s), {} documents",
            store.epoch(),
            store.num_segments(),
            store.num_docs()
        );
        collection
    } else {
        let output = output.unwrap();
        let collection = Collection::build(name, analyzer, &docs);
        collection
            .save(std::path::Path::new(output))
            .map_err(|e| format!("cannot write {output}: {e}"))?;
        collection
    };
    println!(
        "indexed {} documents: {} KB index, {} KB documents (from {} KB of text)",
        collection.num_docs(),
        collection.index().index_bytes() / 1024,
        collection.store().compressed_bytes_total() / 1024,
        collection.store().raw_bytes_total() / 1024,
    );
    Ok(())
}
