//! `teraphim index` — build a `.tcol` collection file from TREC SGML.

use crate::args::Args;
use teraphim_engine::Collection;
use teraphim_text::sgml::parse_trec;
use teraphim_text::Analyzer;

const HELP: &str = "\
usage: teraphim index --name NAME --input FILE.sgml --output FILE.tcol
                      [--no-stop] [--no-stem]

parses a TREC-format SGML file, builds the compressed inverted index and
document store, and writes a self-contained collection file";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments, parse or I/O failure.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["no-stop", "no-stem", "help"])?;
    if args.flag("help") {
        println!("{HELP}");
        return Ok(());
    }
    let name = args.require("name")?;
    let input = args.require("input")?;
    let output = args.require("output")?;

    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let docs = parse_trec(&text).map_err(|e| format!("cannot parse {input}: {e}"))?;
    if docs.is_empty() {
        return Err(format!("{input} contains no <DOC> elements"));
    }
    let analyzer = Analyzer::new()
        .with_stopping(!args.flag("no-stop"))
        .with_stemming(!args.flag("no-stem"));
    let collection = Collection::build(name, analyzer, &docs);
    collection
        .save(std::path::Path::new(output))
        .map_err(|e| format!("cannot write {output}: {e}"))?;
    println!(
        "indexed {} documents into {output}: {} KB index, {} KB documents (from {} KB of text)",
        collection.num_docs(),
        collection.index().index_bytes() / 1024,
        collection.store().compressed_bytes_total() / 1024,
        collection.store().raw_bytes_total() / 1024,
    );
    Ok(())
}
