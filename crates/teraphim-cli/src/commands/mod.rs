//! CLI subcommands.

pub mod add;
pub mod boolean;
pub mod eval;
pub mod fetch;
pub mod fleet;
pub mod flightrec;
pub mod gen_corpus;
pub mod index;
pub mod query;
pub mod search;
pub mod serve;
pub mod sim;
pub mod stats;
pub mod store;
pub mod top;

use std::io::Write;
use teraphim_engine::Collection;

/// Loads a `.tcol` collection file or produces a helpful error.
pub(crate) fn load_collection(path: &str) -> Result<Collection, String> {
    Collection::load(std::path::Path::new(path))
        .map_err(|e| format!("cannot load collection {path}: {e}"))
}

/// Prints a line to stdout, treating a closed pipe (`teraphim ... | head`)
/// as success and other I/O errors as failures.
pub(crate) fn emit(line: std::fmt::Arguments<'_>) -> Result<(), String> {
    let mut out = std::io::stdout().lock();
    match writeln!(out, "{line}") {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
        Err(e) => Err(format!("cannot write to stdout: {e}")),
    }
}

/// `println!` that survives closed pipes.
macro_rules! outln {
    ($($arg:tt)*) => {
        crate::commands::emit(format_args!($($arg)*))?
    };
}
pub(crate) use outln;
