//! `teraphim query` — ranked retrieval against a collection file.

use crate::args::Args;
use crate::commands::{load_collection, outln};

const HELP: &str = "\
usage: teraphim query --index FILE.tcol --query TEXT [--k N] [--show-text]

ranks the collection against TEXT with the cosine measure and prints the
top k (default 10) as `rank docno score`";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments or load failure.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["show-text", "help"])?;
    if args.flag("help") {
        outln!("{HELP}");
        return Ok(());
    }
    // Validate all arguments before the (potentially slow) load.
    let index_path = args.require("index")?;
    let query = args.require("query")?;
    let k = args.get_parsed("k", 10usize)?;
    let collection = load_collection(index_path)?;

    let hits = collection.ranked_query(query, k);
    if hits.is_empty() {
        outln!("no matching documents");
        return Ok(());
    }
    for (rank, hit) in hits.iter().enumerate() {
        outln!(
            "{:>3}  {:<20} {:.6}",
            rank + 1,
            collection.docno(hit.doc),
            hit.score
        );
        if args.flag("show-text") {
            let text = collection
                .fetch(hit.doc)
                .map_err(|e| format!("fetch failed: {e}"))?;
            let preview: String = text.chars().take(160).collect();
            outln!("     {preview}");
        }
    }
    Ok(())
}
