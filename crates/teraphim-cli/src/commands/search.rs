//! `teraphim search` — a receptionist over TCP librarian servers.

use crate::args::Args;
use teraphim_core::{CiParams, Methodology, Receptionist};
use teraphim_net::tcp::TcpTransport;
use teraphim_text::Analyzer;

const HELP: &str = "\
usage: teraphim search --servers ADDR[,ADDR...] --query TEXT
                       [--methodology cn|cv|ci] [--k N]
                       [--group-size G] [--k-prime N] [--fetch] [--trace]

connects to the given librarian servers and evaluates TEXT under the
chosen methodology (default cv). --fetch also retrieves the documents;
--trace propagates span contexts over the wire (feeding the servers'
phase ledgers and flight recorders — see `teraphim top`) and prints
the query's stitched span tree";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments or connection failure.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["fetch", "trace", "help"])?;
    if args.flag("help") {
        println!("{HELP}");
        return Ok(());
    }
    let servers = args.require("servers")?;
    let query = args.require("query")?;
    let k = args.get_parsed("k", 10usize)?;
    let methodology = match args.get("methodology").unwrap_or("cv") {
        "cn" => Methodology::CentralNothing,
        "cv" => Methodology::CentralVocabulary,
        "ci" => Methodology::CentralIndex,
        other => return Err(format!("unknown methodology {other:?} (use cn, cv or ci)")),
    };

    let transports = servers
        .split(',')
        .map(|addr| {
            TcpTransport::connect(addr.trim()).map_err(|e| format!("cannot connect {addr}: {e}"))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let mut receptionist = Receptionist::new(transports, Analyzer::default());

    match methodology {
        Methodology::CentralNothing => {}
        Methodology::CentralVocabulary => receptionist
            .enable_cv()
            .map_err(|e| format!("CV preprocessing failed: {e}"))?,
        Methodology::CentralIndex => receptionist
            .enable_ci(CiParams {
                group_size: args.get_parsed("group-size", 10u32)?,
                k_prime: args.get_parsed("k-prime", 100usize)?,
            })
            .map_err(|e| format!("CI preprocessing failed: {e}"))?,
    }

    // Enabled after preprocessing so the printed trees are the query
    // itself, not the CV/CI setup exchanges. The sink pushes span
    // contexts down to every transport, so the servers time phases and
    // record flight exemplars for exactly these requests.
    let sink = args.flag("trace").then(|| receptionist.enable_tracing());

    let start = std::time::Instant::now();
    let hits = receptionist
        .query(methodology, query, k)
        .map_err(|e| format!("query failed: {e}"))?;
    let docnos = receptionist
        .headers(&hits)
        .map_err(|e| format!("header fetch failed: {e}"))?;
    let elapsed = start.elapsed();

    println!("{methodology}: {} hits in {elapsed:?}", hits.len());
    for (rank, (hit, docno)) in hits.iter().zip(&docnos).enumerate() {
        println!(
            "{:>3}  {:<20} {:.6}  (librarian {})",
            rank + 1,
            docno,
            hit.score,
            hit.librarian
        );
    }
    if args.flag("fetch") {
        let docs = receptionist
            .fetch(&hits, true)
            .map_err(|e| format!("document fetch failed: {e}"))?;
        for doc in &docs {
            println!("\n--- {} ---", doc.docno);
            println!("{}", doc.text.as_deref().unwrap_or(""));
        }
    }
    let traffic = receptionist.traffic();
    println!(
        "\nwire traffic: {} round trips, {} bytes",
        traffic.round_trips,
        traffic.total_bytes()
    );
    if let Some(sink) = sink {
        for trace in sink.take_traces() {
            let tree = teraphim_obs::SpanTree::from_trace(&trace);
            println!("\nspan tree ({}, {} spans):", tree.op, tree.root.len());
            print!("{}", tree.to_json());
        }
    }
    Ok(())
}
