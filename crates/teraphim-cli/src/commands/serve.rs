//! `teraphim serve` — expose a collection as a librarian over TCP.

use crate::args::Args;
use teraphim_core::Librarian;
use teraphim_engine::Collection;
use teraphim_net::tcp::{ServerOptions, TcpServer};
use teraphim_store::IndexStore;

const HELP: &str = "\
usage: teraphim serve (--index FILE.tcol | --store DIR)
                      [--addr 127.0.0.1:7070]
                      [--workers N] [--replicas R]
                      [--fleet ADDR[,ADDR...]] [--flightrec N]

serves the collection as a TERAPHIM librarian; receptionists connect
with `teraphim search --servers ...`. Runs until interrupted.

--store DIR   serve from a persistent versioned store instead of a
              collection file: the store is recovered (WAL replayed
              into the last durable manifest) and every engine replica
              reports the store's durable epoch in its stats replies

--workers N   threads evaluating multiplexed (pipelined) requests
              concurrently (default 2)
--replicas R  independent copies of the engine; worker i serves
              replica i mod R, trading memory for parallel evaluation
              (default 1)
--fleet A,B   serve a shard replica set: one independent server (with
              its own engine copies) per listed address, preferred
              replica first. Point `teraphim fleet --shards` at the
              same list for health-routed status. Overrides --addr
--flightrec N capacity of each engine's tail-latency flight recorder
              (span-tree exemplars of the slowest and every faulted
              traced request; default 256, 0 disables). Dump with
              `teraphim flightrec --servers ...`";

/// Runs the subcommand (blocks until the process is interrupted).
///
/// # Errors
///
/// Returns a user-facing message on bad arguments, load or bind failure.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["help"])?;
    if args.flag("help") {
        println!("{HELP}");
        return Ok(());
    }
    let path = args.get("index");
    let store_dir = args.get("store");
    if path.is_some() == store_dir.is_some() {
        return Err(format!("need exactly one of --index or --store\n\n{HELP}"));
    }
    let addr = args.get("addr").unwrap_or("127.0.0.1:7070");
    let workers: usize = args.get_parsed("workers", 2)?;
    let replicas: usize = args.get_parsed("replicas", 1)?;
    let flightrec: usize = args.get_parsed("flightrec", 256)?;
    if workers == 0 || replicas == 0 {
        return Err("--workers and --replicas must be at least 1".into());
    }
    let fleet: Vec<&str> = match args.get("fleet") {
        Some(list) => list.split(',').map(str::trim).collect(),
        None => vec![addr],
    };
    if fleet.iter().any(|a| a.is_empty()) {
        return Err("--fleet has an empty address".into());
    }

    // A store is recovered once; its collection is then cloned into
    // engine replicas through the serialized form (the same bytes a
    // crash-recovered librarian would deserialize).
    let recovered: Option<(Vec<u8>, u64)> = match store_dir {
        Some(dir) => {
            let (store, collection) = IndexStore::open(std::path::Path::new(dir))
                .map_err(|e| format!("cannot open store {dir}: {e}"))?;
            println!(
                "store {dir}: recovered to epoch {}, {} segment(s), {} pending batch(es)",
                store.epoch(),
                store.num_segments(),
                store.pending_batches()
            );
            Some((collection.to_bytes(), store.epoch()))
        }
        None => None,
    };

    let options = ServerOptions {
        workers,
        ..ServerOptions::default()
    };
    // Keep every server alive for the life of the process.
    let mut servers = Vec::with_capacity(fleet.len());
    for bind in &fleet {
        // The engine is not clonable (it owns index file state), so
        // each engine replica is an independent load of the same
        // collection file — and each fleet member loads its own set.
        let mut librarians = Vec::with_capacity(replicas);
        let (mut name, mut num_docs) = (String::new(), 0);
        for _ in 0..replicas {
            let collection = match &recovered {
                Some((bytes, _)) => Collection::from_bytes(bytes)
                    .map_err(|e| format!("recovered collection does not deserialize: {e}"))?,
                None => {
                    let path = path.unwrap();
                    Collection::load(std::path::Path::new(path))
                        .map_err(|e| format!("cannot load collection {path}: {e}"))?
                }
            };
            name = collection.name().to_owned();
            num_docs = collection.num_docs();
            let mut librarian = Librarian::from_collection(collection);
            if let Some((_, epoch)) = &recovered {
                librarian.set_epoch(*epoch);
            }
            if flightrec > 0 {
                let _ = librarian.enable_flight_recorder(flightrec);
            }
            librarians.push(librarian);
        }
        let server = TcpServer::spawn_with(librarians, *bind, options)
            .map_err(|e| format!("cannot bind {bind}: {e}"))?;
        println!(
            "librarian {name} ({num_docs} documents, {replicas} replica(s), {workers} worker(s)) listening on {}",
            server.addr()
        );
        servers.push(server);
    }
    println!("press Ctrl-C to stop");
    // Block forever; the accept loop runs in its own thread.
    loop {
        std::thread::park();
    }
}
