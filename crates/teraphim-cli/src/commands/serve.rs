//! `teraphim serve` — expose a collection as a librarian over TCP.

use crate::args::Args;
use teraphim_core::Librarian;
use teraphim_engine::Collection;
use teraphim_net::tcp::TcpServer;

const HELP: &str = "\
usage: teraphim serve --index FILE.tcol [--addr 127.0.0.1:7070]

serves the collection as a TERAPHIM librarian; receptionists connect
with `teraphim search --servers ...`. Runs until interrupted";

/// Runs the subcommand (blocks until the process is interrupted).
///
/// # Errors
///
/// Returns a user-facing message on bad arguments, load or bind failure.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["help"])?;
    if args.flag("help") {
        println!("{HELP}");
        return Ok(());
    }
    let path = args.require("index")?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7070");
    let collection = Collection::load(std::path::Path::new(path))
        .map_err(|e| format!("cannot load collection {path}: {e}"))?;
    let name = collection.name().to_owned();
    let num_docs = collection.num_docs();
    let librarian = Librarian::from_collection(collection);
    let server =
        TcpServer::spawn(librarian, addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "librarian {name} ({num_docs} documents) listening on {}",
        server.addr()
    );
    println!("press Ctrl-C to stop");
    // Block forever; the accept loop runs in its own thread.
    loop {
        std::thread::park();
    }
}
