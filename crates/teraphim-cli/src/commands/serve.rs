//! `teraphim serve` — expose a collection as a librarian over TCP.

use crate::args::Args;
use teraphim_core::Librarian;
use teraphim_engine::Collection;
use teraphim_net::tcp::{ServerOptions, TcpServer};

const HELP: &str = "\
usage: teraphim serve --index FILE.tcol [--addr 127.0.0.1:7070]
                      [--workers N] [--replicas R]

serves the collection as a TERAPHIM librarian; receptionists connect
with `teraphim search --servers ...`. Runs until interrupted.

--workers N   threads evaluating multiplexed (pipelined) requests
              concurrently (default 2)
--replicas R  independent copies of the engine; worker i serves
              replica i mod R, trading memory for parallel evaluation
              (default 1)";

/// Runs the subcommand (blocks until the process is interrupted).
///
/// # Errors
///
/// Returns a user-facing message on bad arguments, load or bind failure.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["help"])?;
    if args.flag("help") {
        println!("{HELP}");
        return Ok(());
    }
    let path = args.require("index")?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7070");
    let workers: usize = args.get_parsed("workers", 2)?;
    let replicas: usize = args.get_parsed("replicas", 1)?;
    if workers == 0 || replicas == 0 {
        return Err("--workers and --replicas must be at least 1".into());
    }
    // The engine is not clonable (it owns index file state), so each
    // replica is an independent load of the same collection file.
    let mut librarians = Vec::with_capacity(replicas);
    let (mut name, mut num_docs) = (String::new(), 0);
    for _ in 0..replicas {
        let collection = Collection::load(std::path::Path::new(path))
            .map_err(|e| format!("cannot load collection {path}: {e}"))?;
        name = collection.name().to_owned();
        num_docs = collection.num_docs();
        librarians.push(Librarian::from_collection(collection));
    }
    let options = ServerOptions {
        workers,
        ..ServerOptions::default()
    };
    let server = TcpServer::spawn_with(librarians, addr, options)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "librarian {name} ({num_docs} documents, {replicas} replica(s), {workers} worker(s)) listening on {}",
        server.addr()
    );
    println!("press Ctrl-C to stop");
    // Block forever; the accept loop runs in its own thread.
    loop {
        std::thread::park();
    }
}
