//! `teraphim sim` — the scenario engine: generate, replay and check
//! deterministic workload plans against the simulator, the in-process
//! receptionist and the TCP serving pool.

use std::path::Path;

use crate::args::Args;
use crate::commands::outln;
use teraphim_scenario::{
    differential, doublecheck, generate_plan, run_plan, shrink_plan, write_bugbase, Failure,
    GenOptions, InProcBackend, Plan, RunReport, SimBackend, TcpBackend,
};

const HELP: &str = "\
usage: teraphim sim (--plan FILE | --generate [--seed N] [--steps N]
                                  [--clients N] [--replicas N]
                                  [--allow-kills] [--crashes]
                                  [--name NAME])
                    [--check run|doublecheck|differential]
                    [--backend sim|inproc|tcp]
                    [--out FILE] [--bugbase DIR] [--max-checks N]

Replays a deterministic scenario plan — seeded multi-client query
streams across MS/CN/CV/CI, index churn, fault windows, cache and
dispatch toggles — and checks the system against itself:

  --check run           execute on one backend and print the outcome
                        summary (default when --backend is given)
  --check doublecheck   run the plan twice on fresh instances of one
                        backend; every ranking, coverage list, score
                        bit and trace sum must repeat exactly
  --check differential  run the plan on all three backends: rankings
                        and coverage must agree everywhere, the two
                        real backends must agree to the score bit, and
                        each backend's trace/transport/metrics ledgers
                        must be internally consistent (default)

--plan FILE replays a committed plan (for example a minimized
reproducer from tests/fixtures/plans/); --generate synthesizes one
from --seed (default 42) with --steps steps (default 60).
--replicas N (default 1, max 4) starts every shard with N replicas
and mixes membership churn — add_lib, remove_lib, promote_replica —
into the generated workload.
--crashes mixes crash_lib/reopen_lib churn into the generated
workload: shards lose their in-memory state mid-plan and the real
backends must recover them from their persistent stores (WAL replay
into the last durable manifest), while the simulator — which never
loses state — supplies the oracle rankings.
--out FILE writes the plan JSON before running, so a generated plan
can be committed or replayed later.

When a check fails, the plan is automatically ddmin-shrunk (bounded by
--max-checks candidate runs, default 200) to a minimal plan that still
violates the same property, and the reproducer is written into
--bugbase DIR (default: the current directory) as <name>.json.";

fn run_on(plan: &Plan, backend: &str) -> RunReport {
    match backend {
        "sim" => run_plan(plan, &mut SimBackend::new(plan)),
        "inproc" => run_plan(plan, &mut InProcBackend::new(plan)),
        _ => run_plan(plan, &mut TcpBackend::new(plan)),
    }
}

fn doublecheck_on(plan: &Plan, backend: &str) -> Result<RunReport, Failure> {
    match backend {
        "sim" => doublecheck(plan, SimBackend::new),
        "inproc" => doublecheck(plan, InProcBackend::new),
        _ => doublecheck(plan, TcpBackend::new),
    }
}

fn print_report(name: &str, report: &RunReport) -> Result<(), String> {
    let degraded = report
        .outcomes
        .iter()
        .filter(|o| !o.failed.is_empty())
        .count();
    let errors = report.outcomes.iter().filter(|o| o.error.is_some()).count();
    outln!(
        "{name}: {} queries ({degraded} degraded, {errors} errored)",
        report.outcomes.len()
    );
    let (_, sent, received) = report.accounting.trace;
    outln!("  traced traffic: {sent} bytes sent, {received} bytes received");
    if let Some((round_trips, wire_sent, wire_received)) = report.accounting.transport {
        outln!(
            "  wire traffic:   {wire_sent} bytes sent, {wire_received} bytes received \
             over {round_trips} round trips"
        );
    }
    Ok(())
}

/// Shrinks `failure` against `check` and writes the reproducer.
fn shrink_and_report<F>(
    plan: &Plan,
    failure: &Failure,
    check: F,
    bugbase: &str,
    max_checks: usize,
) -> Result<(), String>
where
    F: FnMut(&Plan) -> Option<Failure>,
{
    outln!("FAIL: {failure}");
    outln!("shrinking ({max_checks}-check budget)...");
    let result = shrink_plan(plan, failure, check, max_checks);
    let mut minimized = result.plan;
    minimized.name = format!("{}-min", plan.name);
    let path = write_bugbase(Path::new(bugbase), &minimized)
        .map_err(|e| format!("cannot write reproducer: {e}"))?;
    outln!(
        "minimized to {} steps in {} checks: {}",
        minimized.steps.len(),
        result.checks,
        path.display()
    );
    outln!("replay with: teraphim sim --plan {}", path.display());
    Err(format!("scenario check failed: {}", result.failure))
}

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments, I/O failure, or a
/// failed check (after writing the shrunken reproducer).
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["help", "generate", "allow-kills", "crashes"])?;
    if args.flag("help") {
        outln!("{HELP}");
        return Ok(());
    }

    let plan = if let Some(path) = args.get("plan") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Plan::from_json(&text).map_err(|e| format!("{path}: {e}"))?
    } else if args.flag("generate") {
        let seed = args.get_parsed("seed", 42u64)?;
        let name = args.get("name").map(str::to_owned);
        let name = name.unwrap_or_else(|| format!("gen-{seed}"));
        generate_plan(
            &name,
            seed,
            GenOptions {
                steps: args.get_parsed("steps", 60usize)?,
                clients: args.get_parsed("clients", 2u64)?,
                allow_kills: args.flag("allow-kills"),
                replicas: args.get_parsed("replicas", 1u64)?,
                crashes: args.flag("crashes"),
            },
        )
    } else {
        return Err(format!("need --plan FILE or --generate\n\n{HELP}"));
    };

    if let Some(out) = args.get("out") {
        std::fs::write(out, plan.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
        outln!("plan written:   {out}");
    }
    outln!(
        "plan {:?}: seed {}, {} steps ({} queries), {} clients, {} replicas/shard",
        plan.name,
        plan.seed,
        plan.steps.len(),
        plan.query_steps(),
        plan.clients,
        plan.replicas
    );

    let backend = args.get("backend").unwrap_or("sim");
    if !["sim", "inproc", "tcp"].contains(&backend) {
        return Err(format!(
            "unknown backend {backend:?} (expected sim, inproc, tcp)"
        ));
    }
    // `--backend` without an explicit `--check` means "just run it".
    let default_check = if args.get("backend").is_some() && args.get("check").is_none() {
        "run"
    } else {
        "differential"
    };
    let check = args.get("check").unwrap_or(default_check);
    let bugbase = args.get("bugbase").unwrap_or(".");
    let max_checks = args.get_parsed("max-checks", 200usize)?;

    match check {
        "run" => {
            let report = run_on(&plan, backend);
            print_report(backend, &report)?;
            Ok(())
        }
        "doublecheck" => match doublecheck_on(&plan, backend) {
            Ok(report) => {
                print_report(backend, &report)?;
                outln!("doublecheck OK: both runs identical to the score bit");
                Ok(())
            }
            Err(failure) => shrink_and_report(
                &plan,
                &failure,
                |p| doublecheck_on(p, backend).err(),
                bugbase,
                max_checks,
            ),
        },
        "differential" => match differential(&plan) {
            Ok(report) => {
                print_report("sim", &report.sim)?;
                print_report("inproc", &report.inproc)?;
                print_report("tcp", &report.tcp)?;
                outln!(
                    "differential OK: rankings and coverage agree across all three \
                     backends; accounting ledgers consistent"
                );
                Ok(())
            }
            Err(failure) => shrink_and_report(
                &plan,
                &failure,
                |p| differential(p).err(),
                bugbase,
                max_checks,
            ),
        },
        other => Err(format!(
            "unknown check {other:?} (expected run, doublecheck, differential)"
        )),
    }
}
