//! `teraphim stats` — poll a live fleet for per-librarian health.

use crate::args::Args;
use crate::commands::outln;
use teraphim_core::health::{poll_one, HealthPolicy, HealthReport, LibrarianHealth};
use teraphim_net::tcp::TcpTransport;

const HELP: &str = "\
usage: teraphim stats --servers ADDR[,ADDR...]
                      [--degraded-error-rate RATE]

polls each librarian server with the admin Stats message and prints a
per-librarian table: query counts, p50/p99 service latency (microseconds)
and health state (up / degraded / down). A server that cannot be reached
or does not answer the poll is reported down; a responding server whose
error rate is at or above RATE (default 0.1) is reported degraded";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments. Unreachable servers
/// are reported in the table, not as an error — a partially-down fleet
/// is exactly what this command exists to show.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["help"])?;
    if args.flag("help") {
        println!("{HELP}");
        return Ok(());
    }
    let servers = args.require("servers")?;
    let policy = HealthPolicy {
        degraded_error_rate: args.get_parsed("degraded-error-rate", 0.1f64)?,
    };

    let mut rows: Vec<LibrarianHealth> = Vec::new();
    for (i, addr) in servers.split(',').enumerate() {
        let librarian = u32::try_from(i).map_err(|_| "too many servers".to_owned())?;
        match TcpTransport::connect(addr.trim()) {
            Ok(mut transport) => rows.push(poll_one(librarian, &mut transport, policy)),
            Err(_) => rows.push(LibrarianHealth::down(librarian)),
        }
    }
    let report = HealthReport { librarians: rows };
    for line in report.render_table().lines() {
        outln!("{line}");
    }
    outln!("\n{}", report.summary());
    Ok(())
}
