//! `teraphim store` — inspect, verify, compact and time-travel a
//! persistent versioned index store.

use crate::args::Args;
use crate::commands::outln;
use teraphim_store::IndexStore;

const HELP: &str = "\
usage: teraphim store --dir DIR [--verify] [--compact]
                      [--as-of E --query TEXT [--k N]]

opens the persistent versioned store in DIR (replaying the write-ahead
log into the last durable manifest — exactly the crash-recovery path)
and prints its status: durable epoch, segments, pending WAL batches,
document count.

--verify      full integrity scan: every segment must decode and match
              the manifest, and the WAL must parse cleanly up to its
              valid prefix
--compact     checkpoint pending WAL batches into a segment, then merge
              all segments into one and truncate the WAL
--as-of E     reconstruct the collection exactly as it stood at durable
              epoch E (deterministic replay of the first E batches) and
              run --query TEXT against that historical view, printing
              the top k (default 10) as `rank docno score`";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments, a failed integrity
/// scan, or I/O failure.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["help", "verify", "compact"])?;
    if args.flag("help") {
        outln!("{HELP}");
        return Ok(());
    }
    let dir = args.require("dir")?;
    let (mut store, collection) = IndexStore::open(std::path::Path::new(dir))
        .map_err(|e| format!("cannot open store {dir}: {e}"))?;
    outln!(
        "store {dir}: {:?}, epoch {}, {} segment(s), {} pending batch(es), {} documents",
        store.name(),
        store.epoch(),
        store.num_segments(),
        store.pending_batches(),
        store.num_docs()
    );

    if args.flag("verify") {
        let status = store
            .verify()
            .map_err(|e| format!("integrity scan failed: {e}"))?;
        outln!(
            "verify OK: epoch {}, {} segment(s), {} pending batch(es), {} documents",
            status.epoch,
            status.segments,
            status.pending_batches,
            status.num_docs
        );
    }

    if args.flag("compact") {
        let before = store.num_segments();
        store
            .compact()
            .map_err(|e| format!("compaction failed: {e}"))?;
        outln!(
            "compacted {before} segment(s) + WAL into {} segment(s) at epoch {}",
            store.num_segments(),
            store.epoch()
        );
    }

    if let Some(epoch) = args.get("as-of") {
        let epoch: u64 = epoch
            .parse()
            .map_err(|e| format!("bad --as-of epoch {epoch:?}: {e}"))?;
        let query = args.require("query")?;
        let k = args.get_parsed("k", 10usize)?;
        let view = store
            .collection_at(epoch)
            .map_err(|e| format!("cannot reconstruct epoch {epoch}: {e}"))?;
        outln!(
            "as-of epoch {epoch}: {} documents (live epoch {} has {})",
            view.num_docs(),
            store.epoch(),
            collection.num_docs()
        );
        let hits = view.ranked_query(query, k);
        if hits.is_empty() {
            outln!("no matching documents");
            return Ok(());
        }
        for (rank, hit) in hits.iter().enumerate() {
            outln!(
                "{:>3}  {:<20} {:.6}",
                rank + 1,
                view.docno(hit.doc),
                hit.score
            );
        }
    } else if args.get("query").is_some() {
        return Err(format!("--query needs --as-of E\n\n{HELP}"));
    }
    Ok(())
}
