//! `teraphim top` — live per-librarian, per-phase latency attribution.
//!
//! Polls each librarian's admin `Stats` message and renders where
//! server-side time is going: queue wait, scan, rank, serialize. With
//! `--count > 1` successive polls show *deltas* — attribution over the
//! polling window — which is the overload diagnostic: a fleet whose
//! queue-wait share climbs between polls is saturating, regardless of
//! what its rank times look like.

use crate::args::Args;
use crate::commands::outln;
use teraphim_core::health::{poll_one, HealthPolicy, HealthState, LibrarianHealth};
use teraphim_net::tcp::TcpTransport;
use teraphim_obs::SERVER_PHASES;

const HELP: &str = "\
usage: teraphim top --servers ADDR[,ADDR...]
                    [--count N] [--interval-ms MS]

polls each librarian's Stats and prints per-phase server time
attribution (queue wait / scan / rank / serialize, microseconds and
percent of measured time). Phase totals only accumulate for traced
requests — point a `teraphim search` receptionist with tracing at the
fleet, or drive it with span-carrying clients.

--count N        number of polls (default 1)
--interval-ms MS sleep between polls (default 2000); from the second
                 poll onward the table shows per-window deltas";

fn phase_row(librarian: u32, name: &str, state: &str, phases: &[u64; 4]) -> String {
    let total: u64 = phases.iter().sum();
    let mut cells = String::new();
    for micros in phases {
        let share = if total == 0 {
            0.0
        } else {
            100.0 * (*micros as f64) / (total as f64)
        };
        cells.push_str(&format!("{micros:>10} {share:>5.1}%"));
    }
    let name = if name.is_empty() { "-" } else { name };
    format!("{librarian:>4}  {name:<12} {state:<9}{cells}")
}

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments. Unreachable servers
/// appear as `down` rows with zeroed attribution.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["help"])?;
    if args.flag("help") {
        println!("{HELP}");
        return Ok(());
    }
    let servers: Vec<String> = args
        .require("servers")?
        .split(',')
        .map(|s| s.trim().to_owned())
        .collect();
    let count: usize = args.get_parsed("count", 1)?;
    let interval_ms: u64 = args.get_parsed("interval-ms", 2000)?;
    if count == 0 {
        return Err("--count must be at least 1".into());
    }

    let mut prev: Option<Vec<LibrarianHealth>> = None;
    for round in 0..count {
        if round > 0 {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        }
        let mut rows = Vec::with_capacity(servers.len());
        for (i, addr) in servers.iter().enumerate() {
            let librarian = u32::try_from(i).map_err(|_| "too many servers".to_owned())?;
            match TcpTransport::connect(addr) {
                Ok(mut transport) => {
                    rows.push(poll_one(librarian, &mut transport, HealthPolicy::default()));
                }
                Err(_) => rows.push(LibrarianHealth::down(librarian)),
            }
        }

        let mut header = format!("{:>4}  {:<12} {:<9}", "lib", "name", "state");
        for phase in SERVER_PHASES {
            header.push_str(&format!("{phase:>10}(us)     %"));
        }
        if round > 0 {
            outln!("");
        }
        let mode = if prev.is_some() { "delta" } else { "total" };
        outln!("poll {} ({mode})", round + 1);
        outln!("{header}");
        let mut fleet = [0u64; 4];
        for row in &rows {
            let mut phases = row.server_phases;
            if let Some(prev_rows) = prev.as_ref() {
                if let Some(p) = prev_rows.iter().find(|p| p.librarian == row.librarian) {
                    for (cur, old) in phases.iter_mut().zip(p.server_phases) {
                        *cur = cur.saturating_sub(old);
                    }
                }
            }
            for (slot, micros) in fleet.iter_mut().zip(phases) {
                *slot = slot.saturating_add(micros);
            }
            outln!(
                "{}",
                phase_row(row.librarian, &row.name, row.state.as_str(), &phases)
            );
        }
        let measured: u64 = fleet.iter().sum();
        if measured == 0 {
            outln!("fleet: no server-phase time measured (no traced requests yet)");
        } else {
            let (top_idx, top_micros) = fleet
                .iter()
                .enumerate()
                .max_by_key(|(_, m)| **m)
                .map(|(i, m)| (i, *m))
                .unwrap_or((0, 0));
            outln!(
                "fleet: {measured}us measured, dominated by {} ({:.1}%)",
                SERVER_PHASES[top_idx],
                100.0 * top_micros as f64 / measured as f64
            );
        }
        let down = rows.iter().filter(|r| r.state == HealthState::Down).count();
        if down > 0 {
            outln!("({down} librarian(s) down)");
        }
        prev = Some(rows);
    }
    Ok(())
}
