//! `teraphim` — the TERAPHIM command line.
//!
//! ```text
//! teraphim gen-corpus --outdir corpus/ [--small] [--seed N]
//! teraphim index --name AP --input corpus/AP.sgml --output ap.tcol
//! teraphim query --index ap.tcol --query "distributed retrieval" [-k 10]
//! teraphim boolean --index ap.tcol --expr "cat AND (dog OR bird)"
//! teraphim fetch --index ap.tcol --docno AP-000001
//! teraphim serve --index ap.tcol --addr 127.0.0.1:7070
//! teraphim search --servers 127.0.0.1:7070,127.0.0.1:7071 \
//!                 --methodology cv --query "..." [-k 10]
//! teraphim sim --generate --seed 42 [--check differential]
//! teraphim sim --plan tests/fixtures/plans/fault_differential.json
//! teraphim index --name AP --input corpus/AP.sgml --store ap.store/
//! teraphim add --store ap.store/ --input corpus/DELTA.sgml
//! teraphim serve --store ap.store/ --addr 127.0.0.1:7070
//! teraphim store --dir ap.store/ --as-of 1 --query "..."
//! ```
//!
//! `index` builds a self-contained `.tcol` collection file (compressed
//! inverted index + compressed document store); `serve` exposes it as a
//! librarian over TCP; `search` is a receptionist over any set of
//! librarian servers, supporting the paper's CN/CV/CI methodologies.

mod args;
mod commands;

use std::process::ExitCode;

const USAGE: &str = "\
usage: teraphim <command> [options]

commands:
  gen-corpus   generate the synthetic TREC-like corpus as SGML files
  index        build a collection file from a TREC SGML file
  add          append documents to an existing collection file
  query        run a ranked query against a collection file
  boolean      run a Boolean query against a collection file
  fetch        fetch one document by its identifier
  eval         evaluate effectiveness against queries and qrels
  serve        serve a collection as a librarian over TCP
  search       distributed search across librarian servers
  stats        poll librarian servers for live fleet health
  top          live per-librarian, per-phase latency attribution
  flightrec    dump a live fleet's tail-latency flight recorders
  fleet        replica-group status and health-based routing
  sim          replay or generate scenario plans with differential checks
  store        inspect, verify, compact or time-travel a persistent store

run `teraphim <command> --help` for per-command options";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "gen-corpus" => commands::gen_corpus::run(rest),
        "index" => commands::index::run(rest),
        "add" => commands::add::run(rest),
        "query" => commands::query::run(rest),
        "boolean" => commands::boolean::run(rest),
        "fetch" => commands::fetch::run(rest),
        "eval" => commands::eval::run(rest),
        "serve" => commands::serve::run(rest),
        "search" => commands::search::run(rest),
        "stats" => commands::stats::run(rest),
        "top" => commands::top::run(rest),
        "flightrec" => commands::flightrec::run(rest),
        "fleet" => commands::fleet::run(rest),
        "sim" => commands::sim::run(rest),
        "store" => commands::store::run(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
