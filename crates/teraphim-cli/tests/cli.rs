//! End-to-end tests of the `teraphim` binary: generate a corpus, index
//! it, query it, serve it, and search it over TCP — all through the real
//! executable.

use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};

fn teraphim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_teraphim"))
}

fn run_ok(args: &[&str]) -> Output {
    let output = teraphim().args(args).output().expect("binary runs");
    assert!(
        output.status.success(),
        "teraphim {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// A scratch directory with a generated corpus and one built collection.
struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let dir =
            std::env::temp_dir().join(format!("teraphim-cli-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let corpus = dir.join("corpus");
        run_ok(&[
            "gen-corpus",
            "--outdir",
            corpus.to_str().expect("utf-8 path"),
            "--small",
            "--seed",
            "5",
        ]);
        let f = Fixture { dir };
        f.index("AP");
        f
    }

    fn corpus(&self) -> PathBuf {
        self.dir.join("corpus")
    }

    fn col(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.tcol"))
    }

    fn index(&self, name: &str) {
        run_ok(&[
            "index",
            "--name",
            name,
            "--input",
            self.corpus()
                .join(format!("{name}.sgml"))
                .to_str()
                .expect("path"),
            "--output",
            self.col(name).to_str().expect("path"),
        ]);
    }

    fn first_short_query(&self) -> String {
        let queries =
            std::fs::read_to_string(self.corpus().join("queries-short.tsv")).expect("queries");
        queries
            .lines()
            .next()
            .and_then(|l| l.split('\t').nth(1))
            .expect("query line")
            .to_owned()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn gen_corpus_writes_expected_files() {
    let f = Fixture::new("gen");
    for name in [
        "AP.sgml",
        "FR.sgml",
        "WSJ.sgml",
        "ZIFF.sgml",
        "queries-long.tsv",
        "queries-short.tsv",
        "qrels.txt",
    ] {
        assert!(f.corpus().join(name).exists(), "{name} missing");
    }
}

#[test]
fn index_then_query_finds_documents() {
    let f = Fixture::new("query");
    let query = f.first_short_query();
    let out = run_ok(&[
        "query",
        "--index",
        f.col("AP").to_str().expect("path"),
        "--query",
        &query,
        "--k",
        "3",
    ]);
    let text = stdout(&out);
    assert!(text.contains("AP-"), "no hits in: {text}");
    assert_eq!(text.lines().count(), 3, "expected 3 result lines: {text}");
}

#[test]
fn boolean_and_fetch_roundtrip() {
    let f = Fixture::new("bool");
    let query = f.first_short_query();
    let term = query.split_whitespace().next().expect("term");
    let out = run_ok(&[
        "boolean",
        "--index",
        f.col("AP").to_str().expect("path"),
        "--expr",
        term,
    ]);
    let text = stdout(&out);
    assert!(text.contains("matching documents"));

    let out = run_ok(&[
        "fetch",
        "--index",
        f.col("AP").to_str().expect("path"),
        "--docno",
        "AP-000000",
    ]);
    assert!(!stdout(&out).trim().is_empty());
}

#[test]
fn unknown_command_and_missing_options_fail() {
    let out = teraphim().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    let out = teraphim()
        .args(["query", "--index", "x.tcol"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--query"));
}

/// Spawns `teraphim serve` and kills it on drop.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn spawn(col: &Path, port: u16) -> Server {
        let addr = format!("127.0.0.1:{port}");
        let mut child = teraphim()
            .args([
                "serve",
                "--index",
                col.to_str().expect("path"),
                "--addr",
                &addr,
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn server");
        // Wait for the listener.
        for _ in 0..100 {
            if TcpStream::connect(&addr).is_ok() {
                return Server { child, addr };
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        let _ = child.kill();
        let _ = child.wait();
        panic!("server on {addr} never came up");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn serve_and_search_over_tcp() {
    let f = Fixture::new("serve");
    f.index("FR");
    let s1 = Server::spawn(&f.col("AP"), 7411);
    let s2 = Server::spawn(&f.col("FR"), 7412);
    let query = f.first_short_query();
    for methodology in ["cn", "cv", "ci"] {
        let out = run_ok(&[
            "search",
            "--servers",
            &format!("{},{}", s1.addr, s2.addr),
            "--methodology",
            methodology,
            "--query",
            &query,
            "--k",
            "5",
        ]);
        let text = stdout(&out);
        assert!(text.contains("hits in"), "{methodology}: {text}");
        assert!(text.contains("wire traffic"), "{methodology}: {text}");
    }
}
