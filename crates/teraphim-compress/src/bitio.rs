//! MSB-first bit-granular readers and writers.
//!
//! All integer codes in [`crate::codes`] and the Huffman coder in
//! [`crate::huffman`] are defined over these two types. Bits are packed
//! most-significant-bit first within each byte, which makes canonical
//! Huffman decoding by numeric comparison straightforward and matches the
//! conventions of the MG system.

use crate::{CodeError, Result};

/// An append-only bit sink backed by a growable byte buffer.
///
/// Bits are written MSB-first. The final byte is zero-padded when the
/// writer is converted into bytes.
///
/// # Examples
///
/// ```
/// use teraphim_compress::bitio::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bit(true);
/// w.write_bits(0b101, 3);
/// assert_eq!(w.bit_len(), 4);
/// assert_eq!(w.into_bytes(), vec![0b1101_0000]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in the final partial byte (0..=7). When zero,
    /// `bytes` contains only complete bytes.
    partial_bits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with capacity for `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        BitWriter {
            bytes: Vec::with_capacity(bits / 8 + 1),
            partial_bits: 0,
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        if self.partial_bits == 0 {
            self.bytes.len() as u64 * 8
        } else {
            (self.bytes.len() as u64 - 1) * 8 + u64::from(self.partial_bits)
        }
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.partial_bits == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("buffer non-empty");
            *last |= 1 << (7 - self.partial_bits);
        }
        self.partial_bits = (self.partial_bits + 1) % 8;
    }

    /// Appends the `count` low-order bits of `value`, most significant
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`, or if `value` has bits set above `count`
    /// (debug builds only).
    pub fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        debug_assert!(
            count == 64 || value < (1u64 << count),
            "value {value} does not fit in {count} bits"
        );
        // Simple loop: correctness first; the hot paths (gamma/delta) write
        // short runs where this is competitive.
        for i in (0..count).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        self.partial_bits = 0;
    }

    /// Appends a whole byte, aligning first.
    pub fn write_aligned_byte(&mut self, byte: u8) {
        self.align_to_byte();
        self.bytes.push(byte);
    }

    /// Consumes the writer and returns the packed bytes (final byte
    /// zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrowed view of the packed bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// A bit-granular cursor over a byte slice, MSB-first.
///
/// # Examples
///
/// ```
/// use teraphim_compress::bitio::BitReader;
///
/// # fn main() -> Result<(), teraphim_compress::CodeError> {
/// let mut r = BitReader::new(&[0b1101_0000]);
/// assert!(r.read_bit()?);
/// assert_eq!(r.read_bits(3)?, 0b101);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit position of the cursor.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at the first bit of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Current absolute bit position.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Total number of bits available in the underlying buffer.
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }

    /// Number of bits remaining from the cursor to the end of the buffer.
    pub fn remaining_bits(&self) -> u64 {
        self.bit_len().saturating_sub(self.pos)
    }

    /// Repositions the cursor at an absolute bit offset.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::UnexpectedEof`] if `pos` is beyond the end of
    /// the buffer.
    pub fn seek_to_bit(&mut self, pos: u64) -> Result<()> {
        if pos > self.bit_len() {
            return Err(CodeError::UnexpectedEof);
        }
        self.pos = pos;
        Ok(())
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::UnexpectedEof`] at end of buffer.
    pub fn read_bit(&mut self) -> Result<bool> {
        let byte_idx = (self.pos / 8) as usize;
        if byte_idx >= self.bytes.len() {
            return Err(CodeError::UnexpectedEof);
        }
        let bit_idx = (self.pos % 8) as u32;
        self.pos += 1;
        Ok((self.bytes[byte_idx] >> (7 - bit_idx)) & 1 == 1)
    }

    /// Reads `count` bits into the low-order bits of a `u64`, MSB-first.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::UnexpectedEof`] if fewer than `count` bits
    /// remain.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn read_bits(&mut self, count: u32) -> Result<u64> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        if self.remaining_bits() < u64::from(count) {
            return Err(CodeError::UnexpectedEof);
        }
        let mut value = 0u64;
        for _ in 0..count {
            value = (value << 1) | u64::from(self.read_bit()?);
        }
        Ok(value)
    }

    /// Skips forward to the next byte boundary (no-op if already aligned).
    pub fn align_to_byte(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_writer_produces_no_bytes() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn single_bits_pack_msb_first() {
        let mut w = BitWriter::new();
        for bit in [true, false, true, true, false, false, false, true, true] {
            w.write_bit(bit);
        }
        assert_eq!(w.bit_len(), 9);
        assert_eq!(w.into_bytes(), vec![0b1011_0001, 0b1000_0000]);
    }

    #[test]
    fn write_bits_matches_single_bit_writes() {
        let mut a = BitWriter::new();
        a.write_bits(0b1_0110, 5);
        let mut b = BitWriter::new();
        for bit in [true, false, true, true, false] {
            b.write_bit(bit);
        }
        assert_eq!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn write_and_read_64_bit_values() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(64).unwrap(), 0);
    }

    #[test]
    fn reader_eof_is_detected() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bit(), Err(CodeError::UnexpectedEof));
        assert_eq!(r.read_bits(1), Err(CodeError::UnexpectedEof));
    }

    #[test]
    fn read_bits_zero_is_empty() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }

    #[test]
    fn alignment_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.align_to_byte();
        w.write_aligned_byte(0xAB);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000, 0xAB]);

        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().unwrap());
        r.align_to_byte();
        assert_eq!(r.read_bits(8).unwrap(), 0xAB);
    }

    #[test]
    fn align_when_already_aligned_is_noop() {
        let mut r = BitReader::new(&[0x01, 0x02]);
        r.read_bits(8).unwrap();
        r.align_to_byte();
        assert_eq!(r.bit_pos(), 8);
    }

    #[test]
    fn seek_to_bit_round_trips() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEAD_BEEF, 32);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        r.seek_to_bit(16).unwrap();
        assert_eq!(r.read_bits(16).unwrap(), 0xBEEF);
        r.seek_to_bit(0).unwrap();
        assert_eq!(r.read_bits(16).unwrap(), 0xDEAD);
        assert!(r.seek_to_bit(33).is_err());
        assert!(r.seek_to_bit(32).is_ok());
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bit(false);
        assert_eq!(w.bit_len(), 1);
        w.write_bits(0, 7);
        assert_eq!(w.bit_len(), 8);
        w.write_bits(0, 3);
        assert_eq!(w.bit_len(), 11);
    }
}
