//! CRC-32 checksums for sealing on-disk blobs.
//!
//! The persistent store (teraphim-store) frames every durable artefact —
//! segment payloads, WAL records, the manifest — with a CRC-32 so that a
//! torn write or bit rot is detected at open time instead of surfacing as
//! a garbled posting list deep inside a query. The polynomial is the
//! reflected IEEE 802.3 one (`0xEDB88320`), i.e. the same checksum as
//! zlib/gzip, so values can be cross-checked with standard tools.
//!
//! # Examples
//!
//! ```
//! use teraphim_compress::checksum::{crc32, Crc32};
//!
//! let whole = crc32(b"hello world");
//! let mut incremental = Crc32::new();
//! incremental.update(b"hello ");
//! incremental.update(b"world");
//! assert_eq!(incremental.finish(), whole);
//! ```

/// Reflected IEEE 802.3 polynomial used by zlib, gzip and PNG.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, one step of the shift register per input byte.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32 hasher.
///
/// Feed bytes with [`Crc32::update`] and read the digest with
/// [`Crc32::finish`]; `finish` does not consume the hasher, so a running
/// checksum can be sampled mid-stream (the WAL writer does this to seal
/// each record while streaming it out).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Creates a hasher in the initial (all-ones) state.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Returns the digest of everything fed so far.
    #[must_use]
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from the zlib crc32() implementation.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello world"), 0x0D4A_1185);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0u16..700).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 7, 350, 699, 700] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(&data));
        }
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let data = vec![0xA5u8; 64];
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut garbled = data.clone();
                garbled[i] ^= 1 << bit;
                assert_ne!(crc32(&garbled), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
