//! Integer codes for inverted-file compression.
//!
//! The codes implemented here are the standard repertoire used by MG-style
//! compressed inverted files (Witten, Moffat & Bell, *Managing
//! Gigabytes*):
//!
//! * **Unary** — optimal for geometrically distributed values with p = ½.
//! * **Elias γ** — parameterless; good for small values such as
//!   in-document frequencies `f_dt`.
//! * **Elias δ** — parameterless; better than γ for larger magnitudes.
//! * **Golomb / Rice** — parameterised; with `b ≈ 0.69 · N/f_t` this is the
//!   near-optimal code for d-gaps of a Bernoulli-distributed term.
//! * **v-byte** — byte-aligned variable-length code, used where byte
//!   alignment matters more than density (e.g. wire headers).
//!
//! All codes operate on `u64` values ≥ 1, matching their classical
//! definitions (d-gaps and term frequencies are always ≥ 1). Use
//! [`write_gamma0`]/[`read_gamma0`] for values that may be zero.

use crate::bitio::{BitReader, BitWriter};
use crate::{CodeError, Result};

// ---------------------------------------------------------------------------
// Unary
// ---------------------------------------------------------------------------

/// Writes `n ≥ 1` in unary: `n - 1` zero bits followed by a one bit.
///
/// # Panics
///
/// Panics in debug builds if `n == 0`.
pub fn write_unary(w: &mut BitWriter, n: u64) {
    debug_assert!(n >= 1, "unary codes values >= 1");
    for _ in 1..n {
        w.write_bit(false);
    }
    w.write_bit(true);
}

/// Reads a unary codeword written by [`write_unary`].
///
/// # Errors
///
/// Returns [`CodeError::UnexpectedEof`] on a truncated stream.
pub fn read_unary(r: &mut BitReader<'_>) -> Result<u64> {
    let mut n = 1u64;
    while !r.read_bit()? {
        n += 1;
        if n == u64::MAX {
            return Err(CodeError::Corrupt("unary run too long"));
        }
    }
    Ok(n)
}

// ---------------------------------------------------------------------------
// Elias gamma
// ---------------------------------------------------------------------------

/// Number of bits in the binary representation of `n ≥ 1`.
fn bit_width(n: u64) -> u32 {
    64 - n.leading_zeros()
}

/// Writes `n ≥ 1` in Elias γ: unary length prefix then the value's low
/// bits.
///
/// # Panics
///
/// Panics in debug builds if `n == 0`.
pub fn write_gamma(w: &mut BitWriter, n: u64) {
    debug_assert!(n >= 1, "gamma codes values >= 1");
    let width = bit_width(n);
    write_unary(w, u64::from(width));
    if width > 1 {
        // Drop the leading 1 bit, it is implied by the length prefix.
        w.write_bits(n & !(1u64 << (width - 1)), width - 1);
    }
}

/// Reads an Elias γ codeword written by [`write_gamma`].
///
/// # Errors
///
/// Returns [`CodeError::UnexpectedEof`] on truncation and
/// [`CodeError::Corrupt`] if the decoded width exceeds 64 bits.
pub fn read_gamma(r: &mut BitReader<'_>) -> Result<u64> {
    let width = read_unary(r)?;
    if width > 64 {
        return Err(CodeError::Corrupt("gamma width exceeds 64 bits"));
    }
    let width = width as u32;
    if width == 1 {
        return Ok(1);
    }
    let low = r.read_bits(width - 1)?;
    Ok((1u64 << (width - 1)) | low)
}

/// Writes a possibly-zero value by γ-coding `n + 1`.
pub fn write_gamma0(w: &mut BitWriter, n: u64) {
    debug_assert!(n < u64::MAX);
    write_gamma(w, n + 1);
}

/// Reads a value written by [`write_gamma0`].
///
/// # Errors
///
/// Propagates errors from [`read_gamma`].
pub fn read_gamma0(r: &mut BitReader<'_>) -> Result<u64> {
    Ok(read_gamma(r)? - 1)
}

// ---------------------------------------------------------------------------
// Elias delta
// ---------------------------------------------------------------------------

/// Writes `n ≥ 1` in Elias δ: γ-coded length then the value's low bits.
///
/// # Panics
///
/// Panics in debug builds if `n == 0`.
pub fn write_delta(w: &mut BitWriter, n: u64) {
    debug_assert!(n >= 1, "delta codes values >= 1");
    let width = bit_width(n);
    write_gamma(w, u64::from(width));
    if width > 1 {
        w.write_bits(n & !(1u64 << (width - 1)), width - 1);
    }
}

/// Reads an Elias δ codeword written by [`write_delta`].
///
/// # Errors
///
/// Returns [`CodeError::UnexpectedEof`] on truncation and
/// [`CodeError::Corrupt`] if the decoded width exceeds 64 bits.
pub fn read_delta(r: &mut BitReader<'_>) -> Result<u64> {
    let width = read_gamma(r)?;
    if width > 64 {
        return Err(CodeError::Corrupt("delta width exceeds 64 bits"));
    }
    let width = width as u32;
    if width == 1 {
        return Ok(1);
    }
    let low = r.read_bits(width - 1)?;
    Ok((1u64 << (width - 1)) | low)
}

// ---------------------------------------------------------------------------
// Golomb / Rice
// ---------------------------------------------------------------------------

/// Computes the Golomb parameter `b ≈ 0.69 · (n / f)` recommended for
/// coding the d-gaps of a term appearing in `f` of `n` documents.
///
/// Returns at least 1. This is the classical choice of Gallager & Van
/// Voorhis applied by Witten, Moffat & Bell to inverted files.
pub fn golomb_parameter(n_docs: u64, f_t: u64) -> u64 {
    if f_t == 0 {
        return 1;
    }
    let b = (0.69 * (n_docs as f64 / f_t as f64)).ceil() as u64;
    b.max(1)
}

/// Writes `n ≥ 1` with the Golomb code of parameter `b ≥ 1`.
///
/// The quotient `(n-1)/b` is coded in unary and the remainder with a
/// truncated binary code.
///
/// # Panics
///
/// Panics in debug builds if `n == 0` or `b == 0`.
pub fn write_golomb(w: &mut BitWriter, n: u64, b: u64) {
    debug_assert!(n >= 1, "golomb codes values >= 1");
    debug_assert!(b >= 1, "golomb parameter must be >= 1");
    let v = n - 1;
    let q = v / b;
    let rem = v % b;
    write_unary(w, q + 1);
    if b == 1 {
        return;
    }
    // Truncated binary coding of rem in [0, b).
    let width = bit_width(b - 1).max(1);
    let threshold = (1u64 << width) - b; // count of short codewords
    if rem < threshold {
        w.write_bits(rem, width - 1);
    } else {
        w.write_bits(rem + threshold, width);
    }
}

/// Reads a Golomb codeword of parameter `b` written by [`write_golomb`].
///
/// # Errors
///
/// Returns [`CodeError::UnexpectedEof`] on truncation.
///
/// # Panics
///
/// Panics in debug builds if `b == 0`.
pub fn read_golomb(r: &mut BitReader<'_>, b: u64) -> Result<u64> {
    debug_assert!(b >= 1, "golomb parameter must be >= 1");
    let q = read_unary(r)? - 1;
    if b == 1 {
        return Ok(q + 1);
    }
    let width = bit_width(b - 1).max(1);
    let threshold = (1u64 << width) - b;
    let mut rem = r.read_bits(width - 1)?;
    if rem >= threshold {
        rem = (rem << 1) | u64::from(r.read_bit()?);
        rem -= threshold;
    }
    Ok(q * b + rem + 1)
}

/// Writes `n ≥ 1` with the Rice code of parameter `k` (Golomb with
/// `b = 2^k`).
pub fn write_rice(w: &mut BitWriter, n: u64, k: u32) {
    debug_assert!(n >= 1, "rice codes values >= 1");
    let v = n - 1;
    write_unary(w, (v >> k) + 1);
    if k > 0 {
        w.write_bits(v & ((1u64 << k) - 1), k);
    }
}

/// Reads a Rice codeword of parameter `k` written by [`write_rice`].
///
/// # Errors
///
/// Returns [`CodeError::UnexpectedEof`] on truncation.
pub fn read_rice(r: &mut BitReader<'_>, k: u32) -> Result<u64> {
    let q = read_unary(r)? - 1;
    let low = if k > 0 { r.read_bits(k)? } else { 0 };
    Ok((q << k) + low + 1)
}

// ---------------------------------------------------------------------------
// v-byte (byte-aligned)
// ---------------------------------------------------------------------------

/// Appends `n` to `out` as a v-byte code: seven payload bits per byte, the
/// high bit set on the final byte.
pub fn write_vbyte(out: &mut Vec<u8>, mut n: u64) {
    loop {
        let low = (n & 0x7F) as u8;
        n >>= 7;
        if n == 0 {
            out.push(low | 0x80);
            return;
        }
        out.push(low);
    }
}

/// Reads a v-byte code from `input` starting at `*pos`, advancing `*pos`.
///
/// # Errors
///
/// Returns [`CodeError::UnexpectedEof`] if the terminator byte is missing
/// and [`CodeError::Corrupt`] if the value overflows a `u64`.
pub fn read_vbyte(input: &[u8], pos: &mut usize) -> Result<u64> {
    let mut n = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos).ok_or(CodeError::UnexpectedEof)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte & 0x7F > 1) {
            return Err(CodeError::Corrupt("v-byte value overflows u64"));
        }
        n |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 != 0 {
            return Ok(n);
        }
        shift += 7;
    }
}

/// Number of bytes the v-byte code of `n` occupies.
pub fn vbyte_len(n: u64) -> usize {
    let bits = bit_width(n.max(1));
    bits.div_ceil(7) as usize
}

// ---------------------------------------------------------------------------
// Code length helpers (used for index-size accounting without encoding)
// ---------------------------------------------------------------------------

/// Bit length of the γ code of `n ≥ 1`.
pub fn gamma_len(n: u64) -> u64 {
    debug_assert!(n >= 1);
    u64::from(2 * bit_width(n) - 1)
}

/// Bit length of the δ code of `n ≥ 1`.
pub fn delta_len(n: u64) -> u64 {
    debug_assert!(n >= 1);
    let width = u64::from(bit_width(n));
    gamma_len(width) + width - 1
}

/// Bit length of the Golomb code of `n ≥ 1` with parameter `b ≥ 1`.
pub fn golomb_len(n: u64, b: u64) -> u64 {
    debug_assert!(n >= 1 && b >= 1);
    let v = n - 1;
    let q = v / b;
    if b == 1 {
        return q + 1;
    }
    let rem = v % b;
    let width = u64::from(bit_width(b - 1).max(1));
    let threshold = (1u64 << width) - b;
    q + 1 + if rem < threshold { width - 1 } else { width }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<W, R>(values: &[u64], write: W, read: R)
    where
        W: Fn(&mut BitWriter, u64),
        R: Fn(&mut BitReader<'_>) -> Result<u64>,
    {
        let mut w = BitWriter::new();
        for &v in values {
            write(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in values {
            assert_eq!(read(&mut r).unwrap(), v);
        }
    }

    const SAMPLE: &[u64] = &[
        1,
        2,
        3,
        4,
        5,
        7,
        8,
        15,
        16,
        100,
        1_000,
        65_535,
        65_536,
        1 << 32,
        (1 << 40) + 12345,
        u64::MAX / 2,
    ];

    #[test]
    fn unary_roundtrip_small() {
        roundtrip(&[1, 2, 3, 10, 33], write_unary, read_unary);
    }

    #[test]
    fn unary_known_encoding() {
        let mut w = BitWriter::new();
        write_unary(&mut w, 3);
        assert_eq!(w.into_bytes(), vec![0b0010_0000]);
    }

    #[test]
    fn gamma_roundtrip() {
        roundtrip(SAMPLE, write_gamma, read_gamma);
    }

    #[test]
    fn gamma_known_encodings() {
        // gamma(1) = "1", gamma(2) = "010", gamma(3) = "011", gamma(4) = "00100"
        let mut w = BitWriter::new();
        write_gamma(&mut w, 1);
        write_gamma(&mut w, 2);
        write_gamma(&mut w, 3);
        write_gamma(&mut w, 4);
        // 1 010 011 00100 -> 1010 0110 0100....
        assert_eq!(w.into_bytes(), vec![0b1010_0110, 0b0100_0000]);
    }

    #[test]
    fn gamma_max_value() {
        roundtrip(&[u64::MAX], write_gamma, read_gamma);
    }

    #[test]
    fn gamma0_codes_zero() {
        let mut w = BitWriter::new();
        write_gamma0(&mut w, 0);
        write_gamma0(&mut w, 5);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(read_gamma0(&mut r).unwrap(), 0);
        assert_eq!(read_gamma0(&mut r).unwrap(), 5);
    }

    #[test]
    fn delta_roundtrip() {
        roundtrip(SAMPLE, write_delta, read_delta);
    }

    #[test]
    fn delta_shorter_than_gamma_for_large_values() {
        assert!(delta_len(1 << 40) < gamma_len(1 << 40));
    }

    #[test]
    fn delta_max_value() {
        roundtrip(&[u64::MAX], write_delta, read_delta);
    }

    #[test]
    fn golomb_roundtrip_various_parameters() {
        // Keep quotients bounded: Golomb codes the quotient in unary, so
        // values far above the parameter would write enormous runs (in
        // real use b is tuned to the gap distribution).
        for b in [1u64, 2, 3, 5, 7, 8, 100, 1_000_000] {
            let values: Vec<u64> = SAMPLE
                .iter()
                .copied()
                .filter(|&n| (n - 1) / b < 100_000)
                .collect();
            roundtrip(&values, |w, n| write_golomb(w, n, b), |r| read_golomb(r, b));
        }
    }

    #[test]
    fn golomb_parameter_formula() {
        assert_eq!(golomb_parameter(1_000_000, 1_000), 690);
        assert_eq!(golomb_parameter(100, 100), 1);
        assert_eq!(golomb_parameter(100, 0), 1);
        assert!(golomb_parameter(10, 9) >= 1);
    }

    #[test]
    fn rice_roundtrip_various_parameters() {
        for k in [0u32, 1, 3, 7, 16] {
            let values: Vec<u64> = SAMPLE
                .iter()
                .copied()
                .filter(|&n| (n - 1) >> k < 100_000)
                .collect();
            roundtrip(&values, |w, n| write_rice(w, n, k), |r| read_rice(r, k));
        }
    }

    #[test]
    fn rice_equals_golomb_power_of_two() {
        for k in [0u32, 2, 5] {
            let b = 1u64 << k;
            for &n in SAMPLE.iter().filter(|&&n| (n - 1) >> k < 100_000) {
                let mut wr = BitWriter::new();
                write_rice(&mut wr, n, k);
                let mut wg = BitWriter::new();
                write_golomb(&mut wg, n, b);
                assert_eq!(wr.bit_len(), wg.bit_len(), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn vbyte_roundtrip() {
        let mut out = Vec::new();
        for &v in SAMPLE {
            write_vbyte(&mut out, v);
        }
        write_vbyte(&mut out, 0);
        write_vbyte(&mut out, u64::MAX);
        let mut pos = 0;
        for &v in SAMPLE {
            assert_eq!(read_vbyte(&out, &mut pos).unwrap(), v);
        }
        assert_eq!(read_vbyte(&out, &mut pos).unwrap(), 0);
        assert_eq!(read_vbyte(&out, &mut pos).unwrap(), u64::MAX);
        assert_eq!(pos, out.len());
    }

    #[test]
    fn vbyte_len_matches_encoding() {
        for &v in SAMPLE {
            let mut out = Vec::new();
            write_vbyte(&mut out, v);
            assert_eq!(out.len(), vbyte_len(v), "value {v}");
        }
    }

    #[test]
    fn vbyte_truncated_stream_errors() {
        let out = vec![0x01u8]; // continuation bit never terminated
        let mut pos = 0;
        assert_eq!(read_vbyte(&out, &mut pos), Err(CodeError::UnexpectedEof));
    }

    #[test]
    fn length_helpers_match_actual_encodings() {
        for &v in SAMPLE {
            let mut w = BitWriter::new();
            write_gamma(&mut w, v);
            assert_eq!(w.bit_len(), gamma_len(v), "gamma {v}");

            let mut w = BitWriter::new();
            write_delta(&mut w, v);
            assert_eq!(w.bit_len(), delta_len(v), "delta {v}");

            for b in [1u64, 3, 8, 1000] {
                if (v - 1) / b > 100_000 {
                    continue; // avoid pathological unary quotients
                }
                let mut w = BitWriter::new();
                write_golomb(&mut w, v, b);
                assert_eq!(w.bit_len(), golomb_len(v, b), "golomb {v} b={b}");
            }
        }
    }

    #[test]
    fn truncated_gamma_errors() {
        let mut w = BitWriter::new();
        write_gamma(&mut w, 1_000_000);
        let bytes = w.into_bytes();
        let cut = &bytes[..bytes.len() - 1];
        let mut r = BitReader::new(cut);
        assert!(read_gamma(&mut r).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn gamma_roundtrips(values in proptest::collection::vec(1u64..u64::MAX, 0..200)) {
            let mut w = BitWriter::new();
            for &v in &values { write_gamma(&mut w, v); }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &values { prop_assert_eq!(read_gamma(&mut r).unwrap(), v); }
        }

        #[test]
        fn delta_roundtrips(values in proptest::collection::vec(1u64..u64::MAX, 0..200)) {
            let mut w = BitWriter::new();
            for &v in &values { write_delta(&mut w, v); }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &values { prop_assert_eq!(read_delta(&mut r).unwrap(), v); }
        }

        #[test]
        fn golomb_roundtrips(
            values in proptest::collection::vec(1u64..1u64 << 20, 0..200),
            b in 1u64..10_000,
        ) {
            let mut w = BitWriter::new();
            for &v in &values { write_golomb(&mut w, v, b); }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &values { prop_assert_eq!(read_golomb(&mut r, b).unwrap(), v); }
        }

        #[test]
        fn rice_roundtrips(
            values in proptest::collection::vec(1u64..1u64 << 20, 0..200),
            k in 4u32..20,
        ) {
            let mut w = BitWriter::new();
            for &v in &values { write_rice(&mut w, v, k); }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &values { prop_assert_eq!(read_rice(&mut r, k).unwrap(), v); }
        }

        #[test]
        fn vbyte_roundtrips(values in proptest::collection::vec(0u64..u64::MAX, 0..200)) {
            let mut out = Vec::new();
            for &v in &values { write_vbyte(&mut out, v); }
            let mut pos = 0;
            for &v in &values { prop_assert_eq!(read_vbyte(&out, &mut pos).unwrap(), v); }
            prop_assert_eq!(pos, out.len());
        }

        #[test]
        fn mixed_codes_share_a_stream(values in proptest::collection::vec(1u64..1u64 << 18, 1..100)) {
            // Interleave gamma/delta/golomb in one stream: positional decode
            // must stay in lockstep.
            let mut w = BitWriter::new();
            for (i, &v) in values.iter().enumerate() {
                match i % 3 {
                    0 => write_gamma(&mut w, v),
                    1 => write_delta(&mut w, v),
                    _ => write_golomb(&mut w, v, 7),
                }
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for (i, &v) in values.iter().enumerate() {
                let got = match i % 3 {
                    0 => read_gamma(&mut r).unwrap(),
                    1 => read_delta(&mut r).unwrap(),
                    _ => read_golomb(&mut r, 7).unwrap(),
                };
                prop_assert_eq!(got, v);
            }
        }
    }
}
