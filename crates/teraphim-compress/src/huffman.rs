//! Canonical Huffman coding.
//!
//! Symbols are dense `u32` indices (the caller maps its alphabet onto
//! `0..n`). Code construction is deterministic: ties in the Huffman merge
//! are broken by symbol order, and codewords are assigned canonically
//! (shorter codes numerically first, equal-length codes in symbol order),
//! so an encoder and decoder built from the same frequency table always
//! agree. This is exactly the property that lets MG store only the code
//! *lengths* in its dictionary; we keep whole tables in memory for
//! simplicity but the canonical discipline is retained.
//!
//! # Examples
//!
//! ```
//! use teraphim_compress::bitio::{BitReader, BitWriter};
//! use teraphim_compress::huffman::HuffmanCode;
//!
//! # fn main() -> Result<(), teraphim_compress::CodeError> {
//! let code = HuffmanCode::from_frequencies(&[10, 1, 3, 3])?;
//! let mut w = BitWriter::new();
//! for &sym in &[0u32, 2, 1, 0, 3] {
//!     code.encode(&mut w, sym);
//! }
//! let bytes = w.into_bytes();
//! let mut r = BitReader::new(&bytes);
//! for &sym in &[0u32, 2, 1, 0, 3] {
//!     assert_eq!(code.decode(&mut r)?, sym);
//! }
//! # Ok(())
//! # }
//! ```

use crate::bitio::{BitReader, BitWriter};
use crate::{CodeError, Result};
use std::collections::BinaryHeap;

/// A canonical Huffman code over symbols `0..n`.
///
/// Symbols with zero frequency receive no codeword; encoding them panics
/// in debug builds and produces an unspecified (but decodable-as-other)
/// codeword in release builds, so callers must only encode symbols they
/// counted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffmanCode {
    /// Per-symbol codeword bit length; 0 means "symbol absent".
    lengths: Vec<u8>,
    /// Per-symbol codeword, right-aligned in the low bits.
    codewords: Vec<u64>,
    /// Decoding tables, indexed by (length - 1): the numerically first
    /// codeword of each length, and the index into `sorted_symbols` where
    /// that length's run begins.
    first_code: Vec<u64>,
    first_index: Vec<usize>,
    /// Symbols sorted by (length, symbol) — canonical order.
    sorted_symbols: Vec<u32>,
    max_len: u8,
}

impl HuffmanCode {
    /// Builds a canonical code from per-symbol frequencies.
    ///
    /// Zero-frequency symbols get no codeword. A single-symbol alphabet is
    /// assigned a one-bit code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::Corrupt`] if no symbol has positive frequency.
    pub fn from_frequencies(freqs: &[u64]) -> Result<Self> {
        let lengths = code_lengths(freqs)?;
        Ok(Self::from_lengths(lengths))
    }

    /// Builds the canonical code implied by per-symbol code lengths
    /// (length 0 = absent symbol).
    ///
    /// This is the form a decoder reconstructs from a serialized
    /// dictionary.
    pub fn from_lengths(lengths: Vec<u8>) -> Self {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        let mut sorted_symbols: Vec<u32> = (0..lengths.len() as u32)
            .filter(|&s| lengths[s as usize] > 0)
            .collect();
        sorted_symbols.sort_by_key(|&s| (lengths[s as usize], s));

        // Count codewords per length, then derive the numerically first
        // codeword of each length (standard canonical construction).
        let mut count = vec![0u64; max_len as usize + 1];
        for &sym in &sorted_symbols {
            count[lengths[sym as usize] as usize] += 1;
        }
        let mut first_code = vec![0u64; max_len as usize];
        let mut first_index = vec![0usize; max_len as usize];
        let mut code = 0u64;
        let mut index = 0usize;
        for len in 1..=max_len as usize {
            first_code[len - 1] = code;
            first_index[len - 1] = index;
            code = (code + count[len]) << 1;
            index += count[len] as usize;
        }

        let mut codewords = vec![0u64; lengths.len()];
        let mut next_code = first_code.clone();
        for &sym in &sorted_symbols {
            let len = lengths[sym as usize] as usize;
            codewords[sym as usize] = next_code[len - 1];
            next_code[len - 1] += 1;
        }

        HuffmanCode {
            lengths,
            codewords,
            first_code,
            first_index,
            sorted_symbols,
            max_len,
        }
    }

    /// Number of symbols in the alphabet (including absent ones).
    pub fn alphabet_len(&self) -> usize {
        self.lengths.len()
    }

    /// Codeword bit length of `symbol`, or 0 if the symbol is absent.
    pub fn length(&self, symbol: u32) -> u8 {
        self.lengths.get(symbol as usize).copied().unwrap_or(0)
    }

    /// Per-symbol code lengths (0 = absent); enough to reconstruct the
    /// code via [`HuffmanCode::from_lengths`].
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Appends the codeword for `symbol` to `w`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` has no codeword (zero frequency at build time or
    /// out of range).
    pub fn encode(&self, w: &mut BitWriter, symbol: u32) {
        let len = self.lengths[symbol as usize];
        assert!(len > 0, "symbol {symbol} has no codeword");
        w.write_bits(self.codewords[symbol as usize], u32::from(len));
    }

    /// Decodes one symbol from `r`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::UnexpectedEof`] on truncation and
    /// [`CodeError::Corrupt`] if the bits match no codeword.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u32> {
        if self.max_len == 0 {
            return Err(CodeError::Corrupt("empty huffman code"));
        }
        let mut code = 0u64;
        for len in 1..=self.max_len {
            code = (code << 1) | u64::from(r.read_bit()?);
            let li = (len - 1) as usize;
            // Determine how many codewords of this exact length exist.
            let run_end = if len == self.max_len {
                self.sorted_symbols.len()
            } else {
                self.first_index[len as usize]
            };
            let run_start = self.first_index[li];
            let count = run_end - run_start;
            if count > 0 {
                let first = self.first_code[li];
                if code >= first && code - first < count as u64 {
                    return Ok(self.sorted_symbols[run_start + (code - first) as usize]);
                }
            }
        }
        Err(CodeError::Corrupt("bits match no huffman codeword"))
    }

    /// Total compressed size, in bits, of a message with the given symbol
    /// frequencies (which must be coverable by this code).
    pub fn message_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .enumerate()
            .map(|(s, &f)| f * u64::from(self.lengths[s]))
            .sum()
    }
}

/// Computes Huffman code lengths from frequencies, deterministic under
/// symbol-order tie breaking.
///
/// # Errors
///
/// Returns [`CodeError::Corrupt`] if every frequency is zero (or the
/// table is empty).
fn code_lengths(freqs: &[u64]) -> Result<Vec<u8>> {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        /// Tie-break key: smallest symbol contained in the subtree; makes
        /// the construction fully deterministic.
        order: u32,
        id: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // BinaryHeap is a max-heap; invert for min-heap behaviour.
            other
                .weight
                .cmp(&self.weight)
                .then(other.order.cmp(&self.order))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let present: Vec<u32> = (0..freqs.len() as u32)
        .filter(|&s| freqs[s as usize] > 0)
        .collect();
    if present.is_empty() {
        return Err(CodeError::Corrupt("huffman alphabet is empty"));
    }
    let mut lengths = vec![0u8; freqs.len()];
    if present.len() == 1 {
        lengths[present[0] as usize] = 1;
        return Ok(lengths);
    }

    // parents[i] = parent node id; leaves are 0..present.len(), internal
    // nodes follow.
    let mut parents: Vec<usize> = Vec::with_capacity(present.len() * 2);
    let mut heap = BinaryHeap::new();
    for (i, &sym) in present.iter().enumerate() {
        parents.push(usize::MAX);
        heap.push(Node {
            weight: freqs[sym as usize],
            order: sym,
            id: i,
        });
    }
    while heap.len() > 1 {
        let a = heap.pop().expect("heap has >= 2 items");
        let b = heap.pop().expect("heap has >= 2 items");
        let id = parents.len();
        parents.push(usize::MAX);
        parents[a.id] = id;
        parents[b.id] = id;
        heap.push(Node {
            weight: a.weight.saturating_add(b.weight),
            order: a.order.min(b.order),
            id,
        });
    }

    for (i, &sym) in present.iter().enumerate() {
        let mut depth = 0u8;
        let mut node = i;
        while parents[node] != usize::MAX {
            node = parents[node];
            depth += 1;
        }
        lengths[sym as usize] = depth;
    }
    Ok(lengths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(freqs: &[u64], message: &[u32]) {
        let code = HuffmanCode::from_frequencies(freqs).unwrap();
        let mut w = BitWriter::new();
        for &s in message {
            code.encode(&mut w, s);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in message {
            assert_eq!(code.decode(&mut r).unwrap(), s, "message {message:?}");
        }
    }

    #[test]
    fn two_symbols_get_one_bit_each() {
        let code = HuffmanCode::from_frequencies(&[5, 3]).unwrap();
        assert_eq!(code.length(0), 1);
        assert_eq!(code.length(1), 1);
    }

    #[test]
    fn single_symbol_alphabet() {
        roundtrip(&[7], &[0, 0, 0]);
        let code = HuffmanCode::from_frequencies(&[7]).unwrap();
        assert_eq!(code.length(0), 1);
    }

    #[test]
    fn empty_alphabet_is_an_error() {
        assert!(HuffmanCode::from_frequencies(&[]).is_err());
        assert!(HuffmanCode::from_frequencies(&[0, 0, 0]).is_err());
    }

    #[test]
    fn zero_frequency_symbols_are_skipped() {
        let code = HuffmanCode::from_frequencies(&[4, 0, 2, 0, 1]).unwrap();
        assert_eq!(code.length(1), 0);
        assert_eq!(code.length(3), 0);
        roundtrip(&[4, 0, 2, 0, 1], &[0, 2, 4, 0, 2]);
    }

    #[test]
    fn skewed_frequencies_give_shorter_codes_to_common_symbols() {
        let code = HuffmanCode::from_frequencies(&[1000, 10, 10, 10, 1]).unwrap();
        assert!(code.length(0) < code.length(4));
        assert!(code.length(1) <= code.length(4));
    }

    #[test]
    fn kraft_equality_holds() {
        let freqs = [13u64, 7, 7, 3, 2, 1, 1, 1, 5, 9];
        let code = HuffmanCode::from_frequencies(&freqs).unwrap();
        let kraft: f64 = (0..freqs.len() as u32)
            .filter(|&s| code.length(s) > 0)
            .map(|s| 2f64.powi(-i32::from(code.length(s))))
            .sum();
        assert!((kraft - 1.0).abs() < 1e-12, "kraft sum {kraft}");
    }

    #[test]
    fn canonical_codewords_are_numerically_ordered() {
        let freqs = [5u64, 5, 2, 2, 2, 1];
        let code = HuffmanCode::from_frequencies(&freqs).unwrap();
        // Within a length, codewords increase with symbol index.
        for len in 1..=8u8 {
            let syms: Vec<u32> = (0..freqs.len() as u32)
                .filter(|&s| code.length(s) == len)
                .collect();
            for pair in syms.windows(2) {
                assert!(code.codewords[pair[0] as usize] < code.codewords[pair[1] as usize]);
            }
        }
    }

    #[test]
    fn from_lengths_reconstructs_same_code() {
        let freqs = [31u64, 17, 8, 8, 4, 2, 1, 1];
        let a = HuffmanCode::from_frequencies(&freqs).unwrap();
        let b = HuffmanCode::from_lengths(a.lengths().to_vec());
        assert_eq!(a, b);
    }

    #[test]
    fn message_bits_accounts_exactly() {
        let freqs = [10u64, 5, 2, 1];
        let code = HuffmanCode::from_frequencies(&freqs).unwrap();
        let mut w = BitWriter::new();
        for (sym, &f) in freqs.iter().enumerate() {
            for _ in 0..f {
                code.encode(&mut w, sym as u32);
            }
        }
        assert_eq!(w.bit_len(), code.message_bits(&freqs));
    }

    #[test]
    fn decode_rejects_garbage() {
        // Build a deep code, then feed bits that run off the end.
        let freqs = [64u64, 32, 16, 8, 4, 2, 1, 1];
        let code = HuffmanCode::from_frequencies(&freqs).unwrap();
        let mut r = BitReader::new(&[]);
        assert!(code.decode(&mut r).is_err());
    }

    #[test]
    fn huffman_beats_fixed_width_on_skewed_data() {
        let freqs = [1_000u64, 100, 10, 1, 1, 1, 1, 1];
        let code = HuffmanCode::from_frequencies(&freqs).unwrap();
        let total: u64 = freqs.iter().sum();
        let fixed_bits = total * 3; // 8 symbols -> 3 bits fixed
        assert!(code.message_bits(&freqs) < fixed_bits);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrips_arbitrary_messages(
            freqs in proptest::collection::vec(0u64..1_000, 1..64),
            seed in 0u64..1_000,
        ) {
            prop_assume!(freqs.iter().any(|&f| f > 0));
            let code = HuffmanCode::from_frequencies(&freqs).unwrap();
            let present: Vec<u32> = (0..freqs.len() as u32)
                .filter(|&s| freqs[s as usize] > 0)
                .collect();
            // Pseudo-random message over present symbols.
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let message: Vec<u32> = (0..100)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    present[(state >> 33) as usize % present.len()]
                })
                .collect();
            let mut w = BitWriter::new();
            for &s in &message { code.encode(&mut w, s); }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &s in &message { prop_assert_eq!(code.decode(&mut r).unwrap(), s); }
        }

        #[test]
        fn kraft_inequality_never_violated(
            freqs in proptest::collection::vec(0u64..10_000, 1..128),
        ) {
            prop_assume!(freqs.iter().any(|&f| f > 0));
            let code = HuffmanCode::from_frequencies(&freqs).unwrap();
            let kraft: f64 = (0..freqs.len() as u32)
                .filter(|&s| code.length(s) > 0)
                .map(|s| 2f64.powi(-i32::from(code.length(s))))
                .sum();
            prop_assert!(kraft <= 1.0 + 1e-9);
        }

        #[test]
        fn entropy_bound_holds(
            freqs in proptest::collection::vec(1u64..10_000, 2..64),
        ) {
            // Huffman is within 1 bit/symbol of the entropy.
            let code = HuffmanCode::from_frequencies(&freqs).unwrap();
            let total: f64 = freqs.iter().sum::<u64>() as f64;
            let entropy: f64 = freqs
                .iter()
                .map(|&f| {
                    let p = f as f64 / total;
                    -p * p.log2()
                })
                .sum();
            let avg_len = code.message_bits(&freqs) as f64 / total;
            prop_assert!(avg_len >= entropy - 1e-9, "avg {avg_len} < entropy {entropy}");
            prop_assert!(avg_len <= entropy + 1.0 + 1e-9, "avg {avg_len} > entropy+1 {entropy}");
        }
    }
}
