//! Bit-level integer coding and text compression primitives.
//!
//! This crate supplies the compression machinery that the MG system (and
//! therefore TERAPHIM, the distributed retrieval system reproduced in this
//! workspace) relies on:
//!
//! * [`bitio`] — MSB-first bit readers and writers over byte buffers.
//! * [`codes`] — parameterless integer codes (unary, Elias γ, Elias δ),
//!   parameterised codes (Golomb, Rice) and byte-aligned v-byte coding.
//!   These are used to store inverted-list d-gaps and in-document
//!   frequencies compressed.
//! * [`checksum`] — CRC-32 (IEEE/zlib polynomial) for sealing on-disk
//!   blobs; the persistent store frames segments, WAL records and the
//!   manifest with it so torn writes are detected at open time.
//! * [`huffman`] — canonical Huffman coding over arbitrary symbol
//!   alphabets, with length-limited code construction.
//! * [`textcomp`] — a word-based zero-order text model (alternating
//!   word/non-word tokens, two Huffman models plus an escape channel) used
//!   by the compressed document store, mirroring MG's approach of storing
//!   all documents compressed so that they can also be *transmitted*
//!   compressed.
//!
//! # Examples
//!
//! Round-tripping a list of d-gaps with Elias γ:
//!
//! ```
//! use teraphim_compress::bitio::{BitReader, BitWriter};
//! use teraphim_compress::codes::{read_gamma, write_gamma};
//!
//! # fn main() -> Result<(), teraphim_compress::CodeError> {
//! let gaps = [1u64, 3, 2, 57, 1];
//! let mut w = BitWriter::new();
//! for &g in &gaps {
//!     write_gamma(&mut w, g);
//! }
//! let bytes = w.into_bytes();
//! let mut r = BitReader::new(&bytes);
//! for &g in &gaps {
//!     assert_eq!(read_gamma(&mut r)?, g);
//! }
//! # Ok(())
//! # }
//! ```

pub mod bitio;
pub mod checksum;
pub mod codes;
pub mod huffman;
pub mod textcomp;

use std::error::Error;
use std::fmt;

/// Error produced when decoding a compressed stream fails.
///
/// Encoding in this crate is infallible (writers grow their buffers);
/// decoding can fail if the stream is truncated or corrupt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// The input ended before a complete codeword was read.
    UnexpectedEof,
    /// A decoded value does not fit in the target integer width, or a
    /// structurally impossible codeword was encountered.
    Corrupt(&'static str),
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::UnexpectedEof => write!(f, "unexpected end of compressed stream"),
            CodeError::Corrupt(what) => write!(f, "corrupt compressed stream: {what}"),
        }
    }
}

impl Error for CodeError {}

/// Convenience alias for decode results.
pub type Result<T> = std::result::Result<T, CodeError>;
