//! Word-based semi-static text compression.
//!
//! MG stores document text compressed with a word-based model: text is
//! decomposed into a strictly alternating sequence of *word* and
//! *non-word* tokens, and two zero-order Huffman models (one per token
//! class) code the sequence. Tokens unseen at training time are coded
//! through an escape symbol followed by their raw bytes.
//!
//! TERAPHIM inherits this: documents live on disk compressed and are
//! *transmitted* compressed between librarian and receptionist, which is
//! one of the paper's mitigations for WAN transfer cost.
//!
//! # Examples
//!
//! ```
//! use teraphim_compress::textcomp::TextModel;
//!
//! # fn main() -> Result<(), teraphim_compress::CodeError> {
//! let model = TextModel::train(["the cat sat on the mat", "the dog sat"].iter().copied())?;
//! let compressed = model.compress("the cat sat on the dog");
//! assert_eq!(model.decompress(&compressed)?, "the cat sat on the dog");
//! // Novel words pass through the escape channel.
//! let compressed = model.compress("the axolotl sat");
//! assert_eq!(model.decompress(&compressed)?, "the axolotl sat");
//! # Ok(())
//! # }
//! ```

use crate::bitio::{BitReader, BitWriter};
use crate::codes::{read_gamma0, write_gamma0};
use crate::huffman::HuffmanCode;
use crate::{CodeError, Result};
use std::collections::HashMap;

/// Reserved symbol index for the escape codeword in both models.
const ESCAPE: u32 = 0;

/// Splits text into a strictly alternating `[word, nonword, word, ...]`
/// token sequence starting with a (possibly empty) word.
///
/// A *word* is a maximal run of alphanumeric characters; a *non-word* is a
/// maximal run of anything else. Concatenating the tokens reproduces the
/// input exactly.
pub fn alternating_tokens(text: &str) -> Vec<&str> {
    let mut tokens = Vec::new();
    let mut expect_word = true;
    let mut start = 0;
    let mut iter = text.char_indices().peekable();
    while let Some(&(i, c)) = iter.peek() {
        let is_word = c.is_alphanumeric();
        if is_word == expect_word {
            // Consume a maximal run of this class.
            let mut end = i;
            while let Some(&(j, d)) = iter.peek() {
                if d.is_alphanumeric() == is_word {
                    end = j + d.len_utf8();
                    iter.next();
                } else {
                    break;
                }
            }
            tokens.push(&text[start..end]);
            start = end;
        } else {
            // Emit an empty token of the expected class to restore
            // alternation.
            tokens.push("");
        }
        expect_word = !expect_word;
    }
    tokens
}

/// One of the two token-class models: vocabulary plus Huffman code.
#[derive(Debug, Clone)]
struct ClassModel {
    /// Token string for each symbol; index 0 is the escape and has no
    /// string.
    tokens: Vec<String>,
    lookup: HashMap<String, u32>,
    code: HuffmanCode,
}

impl ClassModel {
    fn train(counts: HashMap<&str, u64>) -> Result<ClassModel> {
        // Deterministic symbol order: by token string. Symbol 0 is escape.
        let mut entries: Vec<(&str, u64)> = counts.into_iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
        let mut tokens = vec![String::new()];
        let mut freqs = vec![1u64]; // escape always possible
        let mut lookup = HashMap::new();
        for (tok, count) in entries {
            lookup.insert(tok.to_owned(), tokens.len() as u32);
            freqs.push(count);
            tokens.push(tok.to_owned());
        }
        let code = HuffmanCode::from_frequencies(&freqs)?;
        Ok(ClassModel {
            tokens,
            lookup,
            code,
        })
    }

    fn encode(&self, w: &mut BitWriter, token: &str) {
        match self.lookup.get(token) {
            Some(&sym) => self.code.encode(w, sym),
            None => {
                self.code.encode(w, ESCAPE);
                let bytes = token.as_bytes();
                write_gamma0(w, bytes.len() as u64);
                for &b in bytes {
                    w.write_bits(u64::from(b), 8);
                }
            }
        }
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Result<String> {
        let sym = self.code.decode(r)?;
        if sym != ESCAPE {
            return Ok(self.tokens[sym as usize].clone());
        }
        let len = read_gamma0(r)? as usize;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            bytes.push(r.read_bits(8)? as u8);
        }
        String::from_utf8(bytes).map_err(|_| CodeError::Corrupt("escaped token is not UTF-8"))
    }

    /// Approximate serialized dictionary size: token bytes + one length
    /// byte per entry.
    fn dictionary_bytes(&self) -> usize {
        self.tokens.iter().map(|t| t.len() + 1).sum()
    }

    /// Serializes the model: token strings plus canonical code lengths
    /// (the code itself is reconstructed canonically).
    fn to_bytes(&self, out: &mut Vec<u8>) {
        let lengths = self.code.lengths();
        out.extend_from_slice(&(self.tokens.len() as u32).to_le_bytes());
        for (i, token) in self.tokens.iter().enumerate() {
            let bytes = token.as_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
            out.push(lengths.get(i).copied().unwrap_or(0));
        }
    }

    fn from_bytes(bytes: &[u8], pos: &mut usize) -> Result<ClassModel> {
        let count = read_u32(bytes, pos)? as usize;
        let mut tokens = Vec::with_capacity(count.min(1 << 24));
        let mut lengths = Vec::with_capacity(count.min(1 << 24));
        let mut lookup = HashMap::new();
        for i in 0..count {
            let len = read_u32(bytes, pos)? as usize;
            let slice = bytes
                .get(*pos..*pos + len)
                .ok_or(CodeError::UnexpectedEof)?;
            *pos += len;
            let token = std::str::from_utf8(slice)
                .map_err(|_| CodeError::Corrupt("model token is not UTF-8"))?
                .to_owned();
            let code_len = *bytes.get(*pos).ok_or(CodeError::UnexpectedEof)?;
            *pos += 1;
            if i != ESCAPE as usize {
                lookup.insert(token.clone(), i as u32);
            }
            tokens.push(token);
            lengths.push(code_len);
        }
        Ok(ClassModel {
            tokens,
            lookup,
            code: HuffmanCode::from_lengths(lengths),
        })
    }
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32> {
    let slice = bytes.get(*pos..*pos + 4).ok_or(CodeError::UnexpectedEof)?;
    *pos += 4;
    Ok(u32::from_le_bytes(slice.try_into().expect("4 bytes")))
}

/// A trained word-based compression model for a document collection.
///
/// Training scans the collection once; compression and decompression are
/// then deterministic. Novel tokens (e.g. in updated documents or queries)
/// are handled via per-class escape codewords.
#[derive(Debug, Clone)]
pub struct TextModel {
    words: ClassModel,
    nonwords: ClassModel,
}

impl TextModel {
    /// Trains word and non-word Huffman models over a collection of texts.
    ///
    /// # Errors
    ///
    /// Never fails in practice (the escape symbol guarantees non-empty
    /// alphabets); any [`CodeError`] from code construction is propagated.
    pub fn train<'a, I>(texts: I) -> Result<TextModel>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut word_counts: HashMap<&str, u64> = HashMap::new();
        let mut nonword_counts: HashMap<&str, u64> = HashMap::new();
        // Collect token slices; we need the text alive, so process one at a
        // time.
        let mut owned: Vec<&'a str> = Vec::new();
        for text in texts {
            owned.push(text);
        }
        for text in &owned {
            for (i, tok) in alternating_tokens(text).into_iter().enumerate() {
                let counts = if i % 2 == 0 {
                    &mut word_counts
                } else {
                    &mut nonword_counts
                };
                *counts.entry(tok).or_insert(0) += 1;
            }
        }
        Ok(TextModel {
            words: ClassModel::train(word_counts)?,
            nonwords: ClassModel::train(nonword_counts)?,
        })
    }

    /// Compresses one document.
    pub fn compress(&self, text: &str) -> Vec<u8> {
        let tokens = alternating_tokens(text);
        let mut w = BitWriter::new();
        write_gamma0(&mut w, tokens.len() as u64);
        for (i, tok) in tokens.into_iter().enumerate() {
            if i % 2 == 0 {
                self.words.encode(&mut w, tok);
            } else {
                self.nonwords.encode(&mut w, tok);
            }
        }
        w.into_bytes()
    }

    /// Decompresses a document produced by [`TextModel::compress`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`] if the stream is truncated or corrupt.
    pub fn decompress(&self, bytes: &[u8]) -> Result<String> {
        let mut r = BitReader::new(bytes);
        let count = read_gamma0(&mut r)? as usize;
        let mut out = String::new();
        for i in 0..count {
            let tok = if i % 2 == 0 {
                self.words.decode(&mut r)?
            } else {
                self.nonwords.decode(&mut r)?
            };
            out.push_str(&tok);
        }
        Ok(out)
    }

    /// Approximate size of the model's dictionaries in bytes (used for the
    /// paper's storage accounting).
    pub fn dictionary_bytes(&self) -> usize {
        self.words.dictionary_bytes() + self.nonwords.dictionary_bytes()
    }

    /// Number of distinct word tokens in the trained model.
    pub fn word_vocab_len(&self) -> usize {
        self.words.tokens.len() - 1
    }

    /// Serializes the trained model (dictionaries plus canonical code
    /// lengths) for on-disk collections and wire shipping.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.words.to_bytes(&mut out);
        self.nonwords.to_bytes(&mut out);
        out
    }

    /// Reconstructs a model serialized by [`TextModel::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`] on truncation or corruption.
    pub fn from_bytes(bytes: &[u8]) -> Result<TextModel> {
        let mut pos = 0usize;
        let words = ClassModel::from_bytes(bytes, &mut pos)?;
        let nonwords = ClassModel::from_bytes(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(CodeError::Corrupt("trailing bytes after text model"));
        }
        Ok(TextModel { words, nonwords })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_alternate_and_concatenate() {
        let text = "The cat, sat -- twice!";
        let tokens = alternating_tokens(text);
        assert_eq!(tokens.concat(), text);
        for (i, tok) in tokens.iter().enumerate() {
            if tok.is_empty() {
                continue;
            }
            let all_word = tok.chars().all(char::is_alphanumeric);
            assert_eq!(all_word, i % 2 == 0, "token {i}: {tok:?}");
        }
    }

    #[test]
    fn leading_separator_yields_empty_first_word() {
        let tokens = alternating_tokens("  hello");
        assert_eq!(tokens, vec!["", "  ", "hello"]);
    }

    #[test]
    fn empty_text_has_no_tokens() {
        assert!(alternating_tokens("").is_empty());
    }

    #[test]
    fn unicode_text_tokenizes() {
        let text = "naïve — café 42";
        let tokens = alternating_tokens(text);
        assert_eq!(tokens.concat(), text);
    }

    #[test]
    fn roundtrip_in_vocabulary() {
        let docs = ["the cat sat on the mat", "a dog sat on a log"];
        let model = TextModel::train(docs.iter().copied()).unwrap();
        for doc in docs {
            assert_eq!(model.decompress(&model.compress(doc)).unwrap(), doc);
        }
    }

    #[test]
    fn roundtrip_novel_tokens() {
        let model = TextModel::train(["the cat sat"].iter().copied()).unwrap();
        let text = "the zyzzyva sat; the cat wobbled?!";
        assert_eq!(model.decompress(&model.compress(text)).unwrap(), text);
    }

    #[test]
    fn roundtrip_empty_document() {
        let model = TextModel::train(["some text"].iter().copied()).unwrap();
        assert_eq!(model.decompress(&model.compress("")).unwrap(), "");
    }

    #[test]
    fn compression_shrinks_repetitive_text() {
        let doc = "the quick brown fox jumps over the lazy dog ".repeat(50);
        let model = TextModel::train([doc.as_str()].iter().copied()).unwrap();
        let compressed = model.compress(&doc);
        assert!(
            compressed.len() < doc.len() / 2,
            "compressed {} vs original {}",
            compressed.len(),
            doc.len()
        );
    }

    #[test]
    fn truncated_stream_errors() {
        let model = TextModel::train(["alpha beta gamma delta"].iter().copied()).unwrap();
        let compressed = model.compress("alpha beta gamma delta alpha beta");
        let cut = &compressed[..compressed.len() / 2];
        assert!(model.decompress(cut).is_err());
    }

    #[test]
    fn model_serialization_roundtrips_compression() {
        let docs = ["the cat sat on the mat", "dogs chase cats, often!"];
        let model = TextModel::train(docs.iter().copied()).unwrap();
        let restored = TextModel::from_bytes(&model.to_bytes()).unwrap();
        for text in [docs[0], docs[1], "a novel zyzzyva appears"] {
            // A restored model must decode what the original encoded and
            // encode identically.
            let original = model.compress(text);
            assert_eq!(restored.decompress(&original).unwrap(), text);
            assert_eq!(restored.compress(text), original);
        }
    }

    #[test]
    fn model_deserialization_rejects_truncation() {
        let model = TextModel::train(["alpha beta gamma"].iter().copied()).unwrap();
        let bytes = model.to_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(TextModel::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(TextModel::from_bytes(&extended).is_err());
    }

    #[test]
    fn dictionary_bytes_is_positive() {
        let model = TextModel::train(["alpha beta"].iter().copied()).unwrap();
        assert!(model.dictionary_bytes() > 0);
        assert_eq!(model.word_vocab_len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn tokens_always_concatenate(text in ".{0,400}") {
            let tokens = alternating_tokens(&text);
            prop_assert_eq!(tokens.concat(), text);
        }

        #[test]
        fn compress_roundtrips_any_text(
            train in proptest::collection::vec("[a-z ]{0,80}", 1..5),
            text in "[a-zA-Z0-9,.;:!? éü-]{0,200}",
        ) {
            let model = TextModel::train(train.iter().map(String::as_str)).unwrap();
            let compressed = model.compress(&text);
            prop_assert_eq!(model.decompress(&compressed).unwrap(), text);
        }
    }
}
