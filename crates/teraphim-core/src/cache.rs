//! Receptionist-side caching with epoch-based invalidation.
//!
//! Three caches sit in front of the fleet, all behind one
//! [`CacheConfig`] and all **off by default** (see
//! [`Receptionist::enable_cache`]):
//!
//! * a sharded LRU **result cache** keyed by the normalized query, the
//!   methodology, `k` and the coverage policy, storing the merged
//!   ranking (and its [`Coverage`], when produced by
//!   `query_with_coverage`);
//! * a **term-statistics cache** that remembers global document
//!   frequencies so CV query weighting skips the merged-vocabulary
//!   probe on hot terms;
//! * an **answer-document cache** for the fetch phase, bounded by
//!   *bytes* rather than entries, since answer documents vary in size
//!   by orders of magnitude.
//!
//! # Invalidation
//!
//! Correctness is generational. Librarians report an index epoch in
//! every rank/score reply and in `StatsReply`; the receptionist folds
//! those observations — plus the shape of the failed-librarian set —
//! into [`CacheState`], which bumps a single *fleet generation*
//! whenever anything moves. Every cached entry records the generation
//! it was inserted under; a lookup that finds an entry from an older
//! generation drops it lazily and reports [`Lookup::Stale`]. There is
//! no eager sweep: stale entries cost nothing until touched, then one
//! map removal.
//!
//! Entries produced under degraded coverage are additionally flagged
//! [`CachedAnswer::degraded`] and are never served once the fleet is
//! healthy again (the generation bump on any failed-set change already
//! guarantees this; the flag is a second, local line of defence).
//!
//! # Determinism
//!
//! Everything here is deterministic: shard selection uses a fixed
//! FNV-1a hash (never `RandomState`), recency is a monotone tick
//! counter, and eviction removes the strictly least-recently-used
//! entry. A cached answer replays the exact bytes the fleet produced,
//! so cached and cache-free receptionists return byte-identical
//! rankings — the property `tests/cache_transparency.rs` proves.
//!
//! [`Receptionist::enable_cache`]: crate::Receptionist::enable_cache
//! [`Coverage`]: crate::Coverage

use crate::receptionist::{Coverage, GlobalHit};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use teraphim_index::DocId;

/// Capacity knobs for the receptionist caches. A capacity of zero
/// disables that cache entirely (lookups are constant-time misses and
/// inserts are no-ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total merged-ranking entries across all result-cache shards.
    pub result_entries: usize,
    /// Number of result-cache shards (at least 1; each holds
    /// `ceil(result_entries / result_shards)` entries).
    pub result_shards: usize,
    /// Entries in the term-statistics cache.
    pub term_entries: usize,
    /// Byte budget for the answer-document cache.
    pub doc_bytes: usize,
}

impl Default for CacheConfig {
    /// Small but useful defaults: 256 rankings over 4 shards, 1024
    /// term statistics, 1 MiB of answer documents.
    fn default() -> Self {
        CacheConfig {
            result_entries: 256,
            result_shards: 4,
            term_entries: 1024,
            doc_bytes: 1 << 20,
        }
    }
}

impl CacheConfig {
    /// Every cache disabled; useful as a differential-testing control.
    #[must_use]
    pub fn disabled() -> Self {
        CacheConfig {
            result_entries: 0,
            result_shards: 1,
            term_entries: 0,
            doc_bytes: 0,
        }
    }
}

/// The outcome of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup<T> {
    /// A current-generation entry was found.
    Hit(T),
    /// Nothing cached under the key.
    Miss,
    /// An entry existed but belonged to an invalidated generation (or
    /// violated the degraded-serving rule) and was dropped.
    Stale,
}

impl<T> Lookup<T> {
    /// Maps the payload of a `Hit`, preserving `Miss`/`Stale`.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Lookup<U> {
        match self {
            Lookup::Hit(v) => Lookup::Hit(f(v)),
            Lookup::Miss => Lookup::Miss,
            Lookup::Stale => Lookup::Stale,
        }
    }
}

/// Key of one result-cache entry: everything that determines the bytes
/// of a merged ranking besides the index contents themselves.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// Normalized query: analyzed `(term, f_qt)` pairs, sorted.
    pub terms: Vec<(String, u32)>,
    /// Methodology code (`"MS"`, `"CN"`, `"CV"`, `"CI"`).
    pub code: &'static str,
    /// Requested answer size.
    pub k: usize,
    /// Coverage policy in force (`min_answered`; 0 for plain `query`,
    /// which has no degradation policy).
    pub min_answered: usize,
}

/// A cached merged ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedAnswer {
    /// The merged global top `k`, exactly as the fleet produced it.
    pub hits: Vec<GlobalHit>,
    /// Coverage metadata when the entry came from
    /// `query_with_coverage`; `None` for plain `query` entries, which
    /// therefore cannot satisfy a coverage-requiring lookup.
    pub coverage: Option<Coverage>,
    /// True when at least one librarian had failed when this entry was
    /// produced. Degraded entries are only served while the fleet is
    /// still degraded.
    pub degraded: bool,
}

/// Key of one answer-document cache entry: owning librarian, local
/// document id, and whether the body was fetched `plain`.
pub type DocKey = (usize, DocId, bool);

/// Per-cache hit/miss/stale/eviction tallies, mirrored locally so
/// `cache_stats` works without a metrics registry attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing usable (stale drops included).
    pub misses: u64,
    /// The subset of misses that dropped an invalidated entry.
    pub stale: u64,
    /// Entries evicted to make room for inserts.
    pub evictions: u64,
}

/// A point-in-time view of the receptionist caches, from
/// [`Receptionist::cache_stats`].
///
/// [`Receptionist::cache_stats`]: crate::Receptionist::cache_stats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Current fleet generation (bumps invalidate everything older).
    pub generation: u64,
    /// Result-cache counters.
    pub results: CacheCounters,
    /// Term-statistics cache counters.
    pub terms: CacheCounters,
    /// Answer-document cache counters.
    pub docs: CacheCounters,
    /// Rankings currently cached across all shards.
    pub result_entries: usize,
    /// Term statistics currently cached.
    pub term_entries: usize,
    /// Bytes currently held by the answer-document cache.
    pub doc_bytes_used: usize,
}

/// Deterministic 64-bit FNV-1a, used for shard selection so the same
/// key always lands in the same shard in every process.
#[derive(Debug, Clone, Copy)]
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    generation: u64,
    /// Monotone recency stamp; larger is more recent. Unique per
    /// cache, so least-recently-used is always strict.
    tick: u64,
}

/// A generation-aware LRU map bounded by entry count.
///
/// Recency is a monotone tick; eviction removes the entry with the
/// smallest tick, which is unique, so eviction order is deterministic
/// regardless of `HashMap` iteration order.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, Entry<V>>,
    capacity: usize,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An LRU holding at most `capacity` entries (0 disables it).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            capacity,
            tick: 0,
        }
    }

    /// Entries currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Probes `key` against `generation`. A current-generation entry
    /// is freshened and returned; an older one is dropped lazily.
    pub fn get(&mut self, key: &K, generation: u64) -> Lookup<&V> {
        if self.capacity == 0 {
            return Lookup::Miss;
        }
        match self.map.get_mut(key) {
            Some(entry) if entry.generation == generation => {
                self.tick += 1;
                entry.tick = self.tick;
                Lookup::Hit(&self.map[key].value)
            }
            Some(_) => {
                self.map.remove(key);
                Lookup::Stale
            }
            None => Lookup::Miss,
        }
    }

    /// Inserts (or replaces) `key` under `generation`, evicting
    /// least-recently-used entries to respect capacity. Returns how
    /// many entries were evicted.
    pub fn insert(&mut self, key: K, value: V, generation: u64) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        self.tick += 1;
        self.map.insert(
            key,
            Entry {
                value,
                generation,
                tick: self.tick,
            },
        );
        let mut evicted = 0;
        while self.map.len() > self.capacity {
            self.evict_lru();
            evicted += 1;
        }
        evicted
    }

    fn evict_lru(&mut self) {
        if let Some(key) = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.tick)
            .map(|(k, _)| k.clone())
        {
            self.map.remove(&key);
        }
    }
}

/// A generation-aware LRU bounded by total *weight* (bytes) instead of
/// entry count. Entries heavier than the whole budget are refused
/// outright rather than flushing everything else.
#[derive(Debug)]
pub struct ByteLru<K, V> {
    map: HashMap<K, (Entry<V>, usize)>,
    budget: usize,
    used: usize,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> ByteLru<K, V> {
    /// A byte-bounded LRU with the given budget (0 disables it).
    #[must_use]
    pub fn new(budget: usize) -> Self {
        ByteLru {
            map: HashMap::new(),
            budget,
            used: 0,
            tick: 0,
        }
    }

    /// Entries currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently charged against the budget.
    #[must_use]
    pub fn used(&self) -> usize {
        self.used
    }

    /// Probes `key` against `generation`; same contract as
    /// [`LruCache::get`].
    pub fn get(&mut self, key: &K, generation: u64) -> Lookup<&V> {
        if self.budget == 0 {
            return Lookup::Miss;
        }
        match self.map.get_mut(key) {
            Some((entry, _)) if entry.generation == generation => {
                self.tick += 1;
                entry.tick = self.tick;
                Lookup::Hit(&self.map[key].0.value)
            }
            Some(_) => {
                if let Some((_, weight)) = self.map.remove(key) {
                    self.used -= weight;
                }
                Lookup::Stale
            }
            None => Lookup::Miss,
        }
    }

    /// Inserts `key` charging `weight` bytes, evicting
    /// least-recently-used entries until the budget holds. Oversized
    /// values (`weight > budget`) are not cached at all. Returns how
    /// many entries were evicted.
    pub fn insert(&mut self, key: K, value: V, weight: usize, generation: u64) -> u64 {
        if self.budget == 0 || weight > self.budget {
            return 0;
        }
        self.tick += 1;
        if let Some((_, old_weight)) = self.map.insert(
            key,
            (
                Entry {
                    value,
                    generation,
                    tick: self.tick,
                },
                weight,
            ),
        ) {
            self.used -= old_weight;
        }
        self.used += weight;
        let mut evicted = 0;
        while self.used > self.budget {
            self.evict_lru();
            evicted += 1;
        }
        evicted
    }

    fn evict_lru(&mut self) {
        if let Some(key) = self
            .map
            .iter()
            .min_by_key(|(_, (e, _))| e.tick)
            .map(|(k, _)| k.clone())
        {
            if let Some((_, weight)) = self.map.remove(&key) {
                self.used -= weight;
            }
        }
    }
}

/// An entry-bounded LRU split into shards by a deterministic FNV-1a
/// hash of the key, so large result caches don't degenerate into one
/// long eviction scan.
#[derive(Debug)]
pub struct ShardedLru<K, V> {
    shards: Vec<LruCache<K, V>>,
}

impl<K: Eq + Hash + Clone, V> ShardedLru<K, V> {
    /// `total` entries spread over `shards` shards (each shard holds
    /// `ceil(total / shards)`; `total == 0` disables the cache).
    #[must_use]
    pub fn new(total: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = total.div_ceil(shards);
        ShardedLru {
            shards: (0..shards).map(|_| LruCache::new(per_shard)).collect(),
        }
    }

    fn shard(&mut self, key: &K) -> &mut LruCache<K, V> {
        let mut h = Fnv1a::new();
        key.hash(&mut h);
        let idx = (h.finish() % self.shards.len() as u64) as usize;
        &mut self.shards[idx]
    }

    /// Entries currently held across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(LruCache::len).sum()
    }

    /// True when every shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(LruCache::is_empty)
    }

    /// Probes the owning shard; same contract as [`LruCache::get`].
    pub fn get(&mut self, key: &K, generation: u64) -> Lookup<&V> {
        // Borrow dance: compute the shard index first so the returned
        // reference borrows `self.shards` rather than a temporary.
        let mut h = Fnv1a::new();
        key.hash(&mut h);
        let idx = (h.finish() % self.shards.len() as u64) as usize;
        self.shards[idx].get(key, generation)
    }

    /// Inserts into the owning shard; returns entries evicted there.
    pub fn insert(&mut self, key: K, value: V, generation: u64) -> u64 {
        let shard = self.shard(&key);
        shard.insert(key, value, generation)
    }
}

/// All receptionist cache state: the three caches plus the
/// invalidation inputs they are validated against.
#[derive(Debug)]
pub struct CacheState {
    config: CacheConfig,
    /// The fleet generation. Bumped whenever any librarian's epoch
    /// moves, the failed-librarian set changes shape, or global state
    /// is rebuilt (`enable_cv` / `enable_ci`).
    generation: u64,
    /// Last index epoch observed per librarian (grows on demand).
    lib_epochs: Vec<u64>,
    /// The failed-librarian set as of the last observation, sorted.
    failed: Vec<usize>,
    /// Merged rankings.
    pub(crate) results: ShardedLru<ResultKey, CachedAnswer>,
    /// Global document frequency per term (`None` = not in the merged
    /// vocabulary — negative knowledge is cacheable too).
    pub(crate) terms: LruCache<String, Option<u64>>,
    /// Answer-document bodies: `(docno, body bytes)`.
    pub(crate) docs: ByteLru<DocKey, (String, Vec<u8>)>,
    /// Local counter mirrors, per cache kind.
    pub(crate) results_counters: CacheCounters,
    pub(crate) terms_counters: CacheCounters,
    pub(crate) docs_counters: CacheCounters,
}

impl CacheState {
    /// Fresh caches at generation 0 with nothing observed yet.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        CacheState {
            config,
            generation: 0,
            lib_epochs: Vec::new(),
            failed: Vec::new(),
            results: ShardedLru::new(config.result_entries, config.result_shards),
            terms: LruCache::new(config.term_entries),
            docs: ByteLru::new(config.doc_bytes),
            results_counters: CacheCounters::default(),
            terms_counters: CacheCounters::default(),
            docs_counters: CacheCounters::default(),
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The current fleet generation.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True while at least one librarian is known to be failed.
    #[must_use]
    pub fn fleet_degraded(&self) -> bool {
        !self.failed.is_empty()
    }

    /// Invalidates everything cached so far (lazily): entries from
    /// older generations are dropped as they are touched.
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Folds one librarian's self-reported index epoch into the state;
    /// any movement bumps the fleet generation.
    pub fn observe_epoch(&mut self, librarian: usize, epoch: u64) {
        if self.lib_epochs.len() <= librarian {
            self.lib_epochs.resize(librarian + 1, 0);
        }
        if self.lib_epochs[librarian] != epoch {
            self.lib_epochs[librarian] = epoch;
            self.bump_generation();
        }
    }

    /// Folds the current failed-librarian set into the state; any
    /// change of shape — degradation, recovery, or a different set of
    /// casualties — bumps the fleet generation.
    pub fn observe_failed(&mut self, failed: &[usize]) {
        let mut sorted = failed.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted != self.failed {
            self.failed = sorted;
            self.bump_generation();
        }
    }

    /// Probes the result cache. `want_coverage` selects the
    /// `query_with_coverage` contract: the entry must carry coverage
    /// metadata, and degraded entries are served only while the fleet
    /// is still degraded. Plain `query` lookups never accept degraded
    /// entries.
    pub fn lookup_result(&mut self, key: &ResultKey, want_coverage: bool) -> Lookup<CachedAnswer> {
        let degraded_now = self.fleet_degraded();
        let outcome = match self.results.get(key, self.generation) {
            Lookup::Hit(entry) => {
                let servable = if want_coverage {
                    entry.coverage.is_some() && (!entry.degraded || degraded_now)
                } else {
                    !entry.degraded
                };
                if servable {
                    Lookup::Hit(entry.clone())
                } else {
                    Lookup::Miss
                }
            }
            Lookup::Miss => Lookup::Miss,
            Lookup::Stale => Lookup::Stale,
        };
        match outcome {
            Lookup::Hit(_) => self.results_counters.hits += 1,
            Lookup::Miss => self.results_counters.misses += 1,
            Lookup::Stale => {
                self.results_counters.misses += 1;
                self.results_counters.stale += 1;
            }
        }
        outcome
    }

    /// Caches a merged ranking under the current generation. Returns
    /// entries evicted to make room.
    pub fn insert_result(&mut self, key: ResultKey, answer: CachedAnswer) -> u64 {
        let evicted = self.results.insert(key, answer, self.generation);
        self.results_counters.evictions += evicted;
        evicted
    }

    /// Probes the term-statistics cache for a global document
    /// frequency (`Hit(None)` means the term is known to be absent
    /// from the merged vocabulary).
    pub fn lookup_term(&mut self, term: &str) -> Lookup<Option<u64>> {
        let outcome = match self.terms.get(&term.to_owned(), self.generation) {
            Lookup::Hit(v) => Lookup::Hit(*v),
            Lookup::Miss => Lookup::Miss,
            Lookup::Stale => Lookup::Stale,
        };
        match outcome {
            Lookup::Hit(_) => self.terms_counters.hits += 1,
            Lookup::Miss => self.terms_counters.misses += 1,
            Lookup::Stale => {
                self.terms_counters.misses += 1;
                self.terms_counters.stale += 1;
            }
        }
        outcome
    }

    /// Caches a term's global document frequency (or its absence).
    pub fn insert_term(&mut self, term: String, doc_freq: Option<u64>) -> u64 {
        let evicted = self.terms.insert(term, doc_freq, self.generation);
        self.terms_counters.evictions += evicted;
        evicted
    }

    /// Probes the answer-document cache.
    pub fn lookup_doc(&mut self, key: &DocKey) -> Lookup<(String, Vec<u8>)> {
        let outcome = match self.docs.get(key, self.generation) {
            Lookup::Hit(v) => Lookup::Hit(v.clone()),
            Lookup::Miss => Lookup::Miss,
            Lookup::Stale => Lookup::Stale,
        };
        match outcome {
            Lookup::Hit(_) => self.docs_counters.hits += 1,
            Lookup::Miss => self.docs_counters.misses += 1,
            Lookup::Stale => {
                self.docs_counters.misses += 1;
                self.docs_counters.stale += 1;
            }
        }
        outcome
    }

    /// Caches one answer document's identifier and body bytes, charged
    /// at body + docno + a small fixed overhead.
    pub fn insert_doc(&mut self, key: DocKey, docno: String, body: Vec<u8>) -> u64 {
        let weight = body.len() + docno.len() + 16;
        let evicted = self
            .docs
            .insert(key, (docno, body), weight, self.generation);
        self.docs_counters.evictions += evicted;
        evicted
    }

    /// Snapshot of counters, occupancy and the current generation.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            generation: self.generation,
            results: self.results_counters,
            terms: self.terms_counters,
            docs: self.docs_counters,
            result_entries: self.results.len(),
            term_entries: self.terms.len(),
            doc_bytes_used: self.docs.used(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_one_thrashes_deterministically() {
        let mut lru: LruCache<&str, u32> = LruCache::new(1);
        assert_eq!(lru.insert("a", 1, 0), 0);
        assert_eq!(lru.insert("b", 2, 0), 1, "a must be evicted");
        assert_eq!(lru.get(&"a", 0), Lookup::Miss);
        assert_eq!(lru.get(&"b", 0), Lookup::Hit(&2));
        assert_eq!(lru.insert("c", 3, 0), 1, "b must be evicted");
        assert_eq!(lru.get(&"b", 0), Lookup::Miss);
        assert_eq!(lru.get(&"c", 0), Lookup::Hit(&3));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn zero_capacity_is_a_disabled_fast_path() {
        let mut lru: LruCache<&str, u32> = LruCache::new(0);
        assert_eq!(lru.insert("a", 1, 0), 0);
        assert_eq!(lru.get(&"a", 0), Lookup::Miss);
        assert!(lru.is_empty());
        let mut bytes: ByteLru<&str, Vec<u8>> = ByteLru::new(0);
        assert_eq!(bytes.insert("a", vec![1], 1, 0), 0);
        assert_eq!(bytes.get(&"a", 0), Lookup::Miss);
        assert!(bytes.is_empty());
    }

    #[test]
    fn eviction_follows_recency_after_mixed_hits() {
        let mut lru: LruCache<&str, u32> = LruCache::new(3);
        lru.insert("a", 1, 0);
        lru.insert("b", 2, 0);
        lru.insert("c", 3, 0);
        // Touch "a": it is now the most recent; "b" is the oldest.
        assert_eq!(lru.get(&"a", 0), Lookup::Hit(&1));
        assert_eq!(lru.insert("d", 4, 0), 1);
        assert_eq!(lru.get(&"b", 0), Lookup::Miss, "b was least recent");
        assert_eq!(lru.get(&"a", 0), Lookup::Hit(&1));
        assert_eq!(lru.get(&"c", 0), Lookup::Hit(&3));
        assert_eq!(lru.get(&"d", 0), Lookup::Hit(&4));
    }

    #[test]
    fn stale_generations_drop_lazily() {
        let mut lru: LruCache<&str, u32> = LruCache::new(4);
        lru.insert("a", 1, 0);
        lru.insert("b", 2, 0);
        // Generation moves on; nothing is swept eagerly.
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&"a", 1), Lookup::Stale);
        assert_eq!(lru.len(), 1, "only the touched entry was dropped");
        assert_eq!(lru.get(&"a", 1), Lookup::Miss, "stale reported once");
        assert_eq!(lru.get(&"b", 1), Lookup::Stale);
        assert!(lru.is_empty());
    }

    #[test]
    fn byte_budget_evicts_by_recency_and_skips_oversized() {
        let mut docs: ByteLru<u32, Vec<u8>> = ByteLru::new(100);
        assert_eq!(docs.insert(1, vec![0; 40], 40, 0), 0);
        assert_eq!(docs.insert(2, vec![0; 40], 40, 0), 0);
        // Touch 1 so 2 becomes the eviction victim.
        assert_eq!(docs.get(&1, 0), Lookup::Hit(&vec![0u8; 40]));
        assert_eq!(docs.insert(3, vec![0; 40], 40, 0), 1);
        assert_eq!(docs.get(&2, 0), Lookup::Miss);
        assert_eq!(docs.used(), 80);
        // An entry heavier than the whole budget is refused, leaving
        // the cache untouched.
        assert_eq!(docs.insert(4, vec![0; 200], 200, 0), 0);
        assert_eq!(docs.get(&4, 0), Lookup::Miss);
        assert_eq!(docs.used(), 80);
        assert_eq!(docs.len(), 2);
    }

    #[test]
    fn byte_budget_replacing_a_key_recharges_its_weight() {
        let mut docs: ByteLru<u32, Vec<u8>> = ByteLru::new(100);
        docs.insert(1, vec![0; 60], 60, 0);
        docs.insert(1, vec![0; 30], 30, 0);
        assert_eq!(docs.used(), 30);
        assert_eq!(docs.len(), 1);
    }

    #[test]
    fn sharded_lru_is_deterministic_and_complete() {
        let mut a: ShardedLru<String, u32> = ShardedLru::new(64, 4);
        let mut b: ShardedLru<String, u32> = ShardedLru::new(64, 4);
        for i in 0..50u32 {
            a.insert(format!("key-{i}"), i, 0);
            b.insert(format!("key-{i}"), i, 0);
        }
        assert_eq!(a.len(), 50);
        for i in 0..50u32 {
            let key = format!("key-{i}");
            assert_eq!(a.get(&key, 0), b.get(&key, 0), "shard choice must agree");
            assert_eq!(a.get(&key, 0), Lookup::Hit(&i));
        }
    }

    fn key(q: &str) -> ResultKey {
        ResultKey {
            terms: vec![(q.to_owned(), 1)],
            code: "CN",
            k: 10,
            min_answered: 0,
        }
    }

    fn answer(degraded: bool, with_coverage: bool) -> CachedAnswer {
        CachedAnswer {
            hits: vec![GlobalHit {
                librarian: 0,
                doc: 1,
                score: 0.5,
            }],
            coverage: with_coverage.then(|| Coverage {
                answered: vec![0],
                failed: if degraded { vec![1] } else { vec![] },
                docs_fraction: None,
            }),
            degraded,
        }
    }

    #[test]
    fn epoch_movement_bumps_the_generation_once_per_change() {
        let mut state = CacheState::new(CacheConfig::default());
        assert_eq!(state.generation(), 0);
        state.observe_epoch(0, 0);
        state.observe_epoch(3, 0);
        assert_eq!(state.generation(), 0, "epoch 0 is the baseline");
        state.observe_epoch(1, 1);
        assert_eq!(state.generation(), 1);
        state.observe_epoch(1, 1);
        assert_eq!(state.generation(), 1, "unchanged epoch is quiet");
        state.observe_epoch(1, 2);
        assert_eq!(state.generation(), 2);
    }

    #[test]
    fn failed_set_changes_bump_in_both_directions() {
        let mut state = CacheState::new(CacheConfig::default());
        state.observe_failed(&[]);
        assert_eq!(state.generation(), 0);
        state.observe_failed(&[2, 1]);
        assert_eq!(state.generation(), 1);
        assert!(state.fleet_degraded());
        state.observe_failed(&[1, 2]);
        assert_eq!(state.generation(), 1, "same set, different order");
        state.observe_failed(&[1]);
        assert_eq!(state.generation(), 2, "partial recovery still a change");
        state.observe_failed(&[]);
        assert_eq!(state.generation(), 3, "full recovery invalidates too");
        assert!(!state.fleet_degraded());
    }

    #[test]
    fn generation_bump_invalidates_results_lazily() {
        let mut state = CacheState::new(CacheConfig::default());
        state.insert_result(key("q"), answer(false, false));
        assert!(matches!(
            state.lookup_result(&key("q"), false),
            Lookup::Hit(_)
        ));
        state.observe_epoch(0, 1);
        assert_eq!(state.lookup_result(&key("q"), false), Lookup::Stale);
        assert_eq!(state.lookup_result(&key("q"), false), Lookup::Miss);
        let stats = state.stats();
        assert_eq!(stats.results.hits, 1);
        assert_eq!(stats.results.misses, 2);
        assert_eq!(stats.results.stale, 1);
    }

    #[test]
    fn coverage_contract_gates_result_hits() {
        let mut state = CacheState::new(CacheConfig::default());
        // A plain-query entry has no coverage: it cannot satisfy a
        // coverage-requiring lookup.
        state.insert_result(key("plain"), answer(false, false));
        assert_eq!(state.lookup_result(&key("plain"), true), Lookup::Miss);
        assert!(matches!(
            state.lookup_result(&key("plain"), false),
            Lookup::Hit(_)
        ));
        // A coverage entry serves both contracts.
        state.insert_result(key("cov"), answer(false, true));
        assert!(matches!(
            state.lookup_result(&key("cov"), true),
            Lookup::Hit(_)
        ));
        assert!(matches!(
            state.lookup_result(&key("cov"), false),
            Lookup::Hit(_)
        ));
    }

    #[test]
    fn degraded_entries_never_serve_a_healthy_fleet() {
        let mut state = CacheState::new(CacheConfig::default());
        state.observe_failed(&[1]);
        state.insert_result(key("q"), answer(true, true));
        // While degraded, the entry serves coverage lookups.
        assert!(matches!(
            state.lookup_result(&key("q"), true),
            Lookup::Hit(_)
        ));
        // Plain queries never accept degraded entries.
        assert_eq!(state.lookup_result(&key("q"), false), Lookup::Miss);
        // Recovery bumps the generation, so the entry is stale.
        state.observe_failed(&[]);
        assert_eq!(state.lookup_result(&key("q"), true), Lookup::Stale);
    }

    #[test]
    fn term_cache_remembers_absence() {
        let mut state = CacheState::new(CacheConfig::default());
        assert_eq!(state.lookup_term("zebra"), Lookup::Miss);
        state.insert_term("zebra".to_owned(), None);
        assert_eq!(state.lookup_term("zebra"), Lookup::Hit(None));
        state.insert_term("cat".to_owned(), Some(7));
        assert_eq!(state.lookup_term("cat"), Lookup::Hit(Some(7)));
        state.bump_generation();
        assert_eq!(state.lookup_term("cat"), Lookup::Stale);
    }

    #[test]
    fn doc_cache_round_trips_bodies_and_counts_bytes() {
        let mut state = CacheState::new(CacheConfig::default());
        let key: DocKey = (2, 7, false);
        assert_eq!(state.lookup_doc(&key), Lookup::Miss);
        state.insert_doc(key, "DOC-7".to_owned(), vec![1, 2, 3]);
        assert_eq!(
            state.lookup_doc(&key),
            Lookup::Hit(("DOC-7".to_owned(), vec![1, 2, 3]))
        );
        let stats = state.stats();
        assert_eq!(stats.doc_bytes_used, 3 + 5 + 16);
        assert_eq!(stats.docs.hits, 1);
        assert_eq!(stats.docs.misses, 1);
    }

    #[test]
    fn disabled_config_never_caches_anything() {
        let mut state = CacheState::new(CacheConfig::disabled());
        state.insert_result(key("q"), answer(false, false));
        assert_eq!(state.lookup_result(&key("q"), false), Lookup::Miss);
        state.insert_term("cat".to_owned(), Some(1));
        assert_eq!(state.lookup_term("cat"), Lookup::Miss);
        state.insert_doc((0, 0, false), "D".to_owned(), vec![0]);
        assert_eq!(state.lookup_doc(&(0, 0, false)), Lookup::Miss);
    }
}
