//! A batteries-included distributed collection.
//!
//! [`DistributedCollection`] stands up one in-process librarian per
//! subcollection, runs the CV and CI preprocessing steps, and exposes all
//! three methodologies behind a `&self` API (the receptionist sits behind
//! a mutex). This is the entry point examples and quick experiments use;
//! fine-grained control (custom transports, TCP deployment, traffic
//! inspection) goes through [`crate::Receptionist`] directly.

use crate::librarian::Librarian;
use crate::methodology::{CiParams, Methodology};
use crate::receptionist::{FetchedDoc, GlobalHit, Receptionist};
use crate::TeraphimError;
use std::sync::{Mutex, MutexGuard, PoisonError};
use teraphim_net::InProcTransport;
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

/// A ready-to-query distributed collection over in-process librarians.
#[derive(Debug)]
pub struct DistributedCollection {
    receptionist: Mutex<Receptionist<InProcTransport<Librarian>>>,
    num_librarians: usize,
}

impl DistributedCollection {
    /// Builds librarians over parsed TREC documents, then enables the
    /// Central Vocabulary and Central Index (G = 10, k' = 100) states.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing failures.
    pub fn build(parts: &[(&str, &[TrecDoc])]) -> Result<Self, TeraphimError> {
        Self::build_with(parts, Analyzer::default(), CiParams::default())
    }

    /// Builds with a custom analyzer and CI parameters.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing failures.
    pub fn build_with(
        parts: &[(&str, &[TrecDoc])],
        analyzer: Analyzer,
        ci: CiParams,
    ) -> Result<Self, TeraphimError> {
        let transports: Vec<InProcTransport<Librarian>> = parts
            .iter()
            .map(|(name, docs)| {
                InProcTransport::new(Librarian::build(name, analyzer.clone(), docs))
            })
            .collect();
        let num_librarians = transports.len();
        let mut receptionist = Receptionist::new(transports, analyzer);
        receptionist.enable_cv()?;
        receptionist.enable_ci(ci)?;
        Ok(DistributedCollection {
            receptionist: Mutex::new(receptionist),
            num_librarians,
        })
    }

    /// Builds from `(name, [(docno, text)])` pairs.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing failures.
    pub fn from_texts(parts: &[(&str, &[(&str, &str)])]) -> Result<Self, TeraphimError> {
        let owned: Vec<(String, Vec<TrecDoc>)> = parts
            .iter()
            .map(|(name, docs)| {
                (
                    (*name).to_owned(),
                    docs.iter()
                        .map(|(docno, text)| TrecDoc {
                            docno: (*docno).to_owned(),
                            text: (*text).to_owned(),
                        })
                        .collect(),
                )
            })
            .collect();
        let refs: Vec<(&str, &[TrecDoc])> = owned
            .iter()
            .map(|(name, docs)| (name.as_str(), docs.as_slice()))
            .collect();
        Self::build(&refs)
    }

    /// Number of librarians.
    pub fn num_librarians(&self) -> usize {
        self.num_librarians
    }

    fn lock(&self) -> MutexGuard<'_, Receptionist<InProcTransport<Librarian>>> {
        self.receptionist
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Evaluates a ranked query, returning the global top `k`.
    ///
    /// # Errors
    ///
    /// Propagates receptionist failures.
    pub fn query(
        &self,
        methodology: Methodology,
        query: &str,
        k: usize,
    ) -> Result<Vec<GlobalHit>, TeraphimError> {
        self.lock().query(methodology, query, k)
    }

    /// Queries and resolves external document identifiers.
    ///
    /// # Errors
    ///
    /// Propagates receptionist failures.
    pub fn ranked_docnos(
        &self,
        methodology: Methodology,
        query: &str,
        k: usize,
    ) -> Result<Vec<String>, TeraphimError> {
        self.lock().ranked_docnos(methodology, query, k)
    }

    /// Fetches the documents of a ranking (step 4 of the model).
    ///
    /// # Errors
    ///
    /// Propagates receptionist failures.
    pub fn fetch(&self, hits: &[GlobalHit], plain: bool) -> Result<Vec<FetchedDoc>, TeraphimError> {
        self.lock().fetch(hits, plain)
    }

    /// Central-vocabulary size in bytes.
    pub fn cv_vocabulary_bytes(&self) -> usize {
        self.lock()
            .cv_vocabulary_bytes()
            .expect("CV enabled at build time")
    }

    /// Central-index size in bytes.
    pub fn ci_index_bytes(&self) -> usize {
        self.lock()
            .ci_index_bytes()
            .expect("CI enabled at build time")
    }

    /// Aggregate wire traffic so far.
    pub fn traffic(&self) -> teraphim_net::TrafficStats {
        self.lock().traffic()
    }

    /// Switches the receptionist between concurrent and sequential
    /// subquery fan-out (rankings are identical; elapsed time differs).
    pub fn set_dispatch_mode(&self, mode: teraphim_net::DispatchMode) {
        self.lock().set_dispatch_mode(mode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> DistributedCollection {
        DistributedCollection::from_texts(&[
            (
                "A",
                &[
                    ("A-1", "the cat sat on the mat"),
                    ("A-2", "cats herd poorly"),
                ][..],
            ),
            (
                "B",
                &[
                    ("B-1", "inverted file compression"),
                    ("B-2", "the dog ate the inverted file"),
                ][..],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn all_methodologies_answer() {
        let s = system();
        for m in Methodology::ALL {
            let hits = s.query(m, "cat file", 3).unwrap();
            assert!(!hits.is_empty(), "{m}");
            assert!(hits.len() <= 3, "{m}");
        }
    }

    #[test]
    fn query_through_shared_reference() {
        let s = system();
        let r1 = s
            .ranked_docnos(Methodology::CentralVocabulary, "cat", 2)
            .unwrap();
        let r2 = s
            .ranked_docnos(Methodology::CentralVocabulary, "cat", 2)
            .unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn fetch_returns_documents_in_rank_order() {
        let s = system();
        let hits = s
            .query(Methodology::CentralVocabulary, "inverted file", 2)
            .unwrap();
        let docs = s.fetch(&hits, true).unwrap();
        assert_eq!(docs.len(), hits.len());
        for (d, h) in docs.iter().zip(&hits) {
            assert_eq!(d.doc, h.doc);
            assert!(d.text.is_some());
        }
    }

    #[test]
    fn sizes_are_reported() {
        let s = system();
        assert!(s.cv_vocabulary_bytes() > 0);
        assert!(s.ci_index_bytes() > 0);
        assert_eq!(s.num_librarians(), 2);
    }

    #[test]
    fn dispatch_modes_agree() {
        let s = system();
        let conc = s
            .query(Methodology::CentralVocabulary, "cat file", 3)
            .unwrap();
        s.set_dispatch_mode(teraphim_net::DispatchMode::Sequential);
        let seq = s
            .query(Methodology::CentralVocabulary, "cat file", 3)
            .unwrap();
        assert_eq!(conc, seq);
    }

    #[test]
    fn empty_parts_build() {
        let s = DistributedCollection::from_texts(&[("EMPTY", &[][..])]).unwrap();
        let hits = s.query(Methodology::CentralNothing, "anything", 5).unwrap();
        assert!(hits.is_empty());
    }
}
