//! Fleet health: polling librarians over the admin `Stats` protocol and
//! classifying each as up, degraded or down.
//!
//! Health combines two ledgers. The *server side* is what each librarian
//! reports about itself over [`Message::Stats`] — index shape, requests
//! served, errors returned, service latency. The *client side* is what
//! the receptionist's [`MetricsRegistry`] observed about it — timeouts
//! and fan-out drop-outs the librarian itself cannot see (a dead server
//! reports nothing). A librarian is **down** when the `Stats` poll
//! itself fails, **degraded** when either ledger shows an error rate at
//! or above [`HealthPolicy::degraded_error_rate`], and **up** otherwise.
//!
//! [`MetricsRegistry`]: teraphim_obs::MetricsRegistry

use teraphim_net::{Message, Transport};
use teraphim_obs::{HistogramSnapshot, LibrarianMetrics};

/// Health classification of one librarian.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Answering, error rate below the degraded threshold.
    Up,
    /// Answering, but erroring or timing out at or above the threshold.
    Degraded,
    /// The `Stats` poll itself failed.
    Down,
}

impl HealthState {
    /// Stable lowercase label (`"up"`, `"degraded"`, `"down"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Up => "up",
            HealthState::Degraded => "degraded",
            HealthState::Down => "down",
        }
    }
}

/// Thresholds for classifying a responding librarian.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Error rate (errors over requests, on either ledger) at or above
    /// which a responding librarian is [`HealthState::Degraded`].
    pub degraded_error_rate: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            degraded_error_rate: 0.1,
        }
    }
}

/// One librarian's row in a [`HealthReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct LibrarianHealth {
    /// Librarian (partition) index.
    pub librarian: u32,
    /// Self-reported collection name (empty when down).
    pub name: String,
    /// Classification under the polling policy.
    pub state: HealthState,
    /// Documents in its collection.
    pub num_docs: u64,
    /// Distinct vocabulary terms.
    pub num_terms: u64,
    /// Serialized index size in bytes.
    pub index_bytes: u64,
    /// Requests it has served.
    pub requests_served: u64,
    /// Of those, rank/score requests.
    pub rank_requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Self-reported index epoch (0 until the librarian reindexes).
    pub epoch: u64,
    /// Self-reported service latency, microseconds.
    pub latency: HistogramSnapshot,
    /// Self-reported lifetime server-phase totals, microseconds,
    /// indexed like `teraphim_obs::SERVER_PHASES` (queue wait, scan,
    /// rank, serialize). All zero for librarians that never saw a
    /// span-carrying request (or predate phase timing).
    pub server_phases: [u64; 4],
}

impl LibrarianHealth {
    /// The row for a librarian whose `Stats` poll failed.
    #[must_use]
    pub fn down(librarian: u32) -> Self {
        LibrarianHealth {
            librarian,
            name: String::new(),
            state: HealthState::Down,
            num_docs: 0,
            num_terms: 0,
            index_bytes: 0,
            requests_served: 0,
            rank_requests: 0,
            errors: 0,
            epoch: 0,
            latency: HistogramSnapshot::empty(),
            server_phases: [0; 4],
        }
    }

    /// Server-side error rate: errors over requests served.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        self.errors as f64 / (self.requests_served.max(1)) as f64
    }
}

/// A point-in-time fleet health snapshot, one row per librarian.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Rows in librarian index order.
    pub librarians: Vec<LibrarianHealth>,
}

impl HealthReport {
    /// Rows in the given state.
    #[must_use]
    pub fn count(&self, state: HealthState) -> usize {
        self.librarians.iter().filter(|l| l.state == state).count()
    }

    /// True when every librarian is [`HealthState::Up`].
    #[must_use]
    pub fn all_up(&self) -> bool {
        self.count(HealthState::Up) == self.librarians.len()
    }

    /// Renders the fixed-width per-librarian table `teraphim stats`
    /// prints. The same shape regardless of transport (TCP or
    /// in-process); `-` marks fields a down librarian could not report.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>4}  {:<12} {:<9} {:>8} {:>9} {:>8} {:>7} {:>9} {:>9}\n",
            "lib", "name", "state", "docs", "requests", "queries", "errors", "p50(us)", "p99(us)"
        ));
        for row in &self.librarians {
            if row.state == HealthState::Down {
                out.push_str(&format!(
                    "{:>4}  {:<12} {:<9} {:>8} {:>9} {:>8} {:>7} {:>9} {:>9}\n",
                    row.librarian,
                    "-",
                    row.state.as_str(),
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-"
                ));
                continue;
            }
            let (p50, p99) = if row.latency.is_empty() {
                ("-".to_owned(), "-".to_owned())
            } else {
                (row.latency.p50().to_string(), row.latency.p99().to_string())
            };
            let name = if row.name.is_empty() { "-" } else { &row.name };
            out.push_str(&format!(
                "{:>4}  {:<12} {:<9} {:>8} {:>9} {:>8} {:>7} {:>9} {:>9}\n",
                row.librarian,
                name,
                row.state.as_str(),
                row.num_docs,
                row.requests_served,
                row.rank_requests,
                row.errors,
                p50,
                p99,
            ));
        }
        out
    }

    /// One-line summary, e.g. `4 librarians: 3 up, 0 degraded, 1 down`.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} librarians: {} up, {} degraded, {} down",
            self.librarians.len(),
            self.count(HealthState::Up),
            self.count(HealthState::Degraded),
            self.count(HealthState::Down),
        )
    }

    /// Re-classifies rows against the *client-side* ledger: a librarian
    /// that answered its poll is still degraded if the receptionist has
    /// watched it time out or drop out of fan-outs at or above the
    /// policy threshold.
    pub fn apply_client_observations(
        &mut self,
        observed: &[LibrarianMetrics],
        policy: HealthPolicy,
    ) {
        for row in &mut self.librarians {
            if row.state != HealthState::Up {
                continue;
            }
            if let Some(m) = observed.iter().find(|m| m.librarian == row.librarian) {
                if m.sent > 0 && m.error_rate() >= policy.degraded_error_rate {
                    row.state = HealthState::Degraded;
                }
            }
        }
    }
}

/// Polls one librarian over `transport` and classifies the reply.
pub fn poll_one<T: Transport>(
    librarian: u32,
    transport: &mut T,
    policy: HealthPolicy,
) -> LibrarianHealth {
    match transport.request(&Message::Stats) {
        Ok(Message::StatsReply {
            name,
            num_docs,
            num_terms,
            index_bytes,
            requests_served,
            rank_requests,
            errors,
            epoch,
            latency,
            server_phases,
        }) => {
            let mut phases = [0u64; 4];
            for (i, micros) in server_phases {
                if let Some(slot) = phases.get_mut(i as usize) {
                    *slot = micros;
                }
            }
            let mut row = LibrarianHealth {
                librarian,
                name,
                state: HealthState::Up,
                num_docs,
                num_terms,
                index_bytes,
                requests_served,
                rank_requests,
                errors,
                epoch,
                latency: HistogramSnapshot::from_bucket_pairs(&latency),
                server_phases: phases,
            };
            if row.requests_served > 0 && row.error_rate() >= policy.degraded_error_rate {
                row.state = HealthState::Degraded;
            }
            row
        }
        Ok(_) | Err(_) => LibrarianHealth::down(librarian),
    }
}

/// Polls every librarian in index order.
pub fn poll_fleet<T: Transport>(transports: &mut [T], policy: HealthPolicy) -> HealthReport {
    let librarians = transports
        .iter_mut()
        .enumerate()
        .map(|(i, t)| poll_one(i as u32, t, policy))
        .collect();
    HealthReport { librarians }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn up_row(librarian: u32, requests: u64, errors: u64) -> LibrarianHealth {
        LibrarianHealth {
            librarian,
            name: format!("lib-{librarian}"),
            state: HealthState::Up,
            num_docs: 10,
            num_terms: 100,
            index_bytes: 1000,
            requests_served: requests,
            rank_requests: requests / 2,
            errors,
            epoch: 0,
            latency: HistogramSnapshot::from_bucket_pairs(&[(8, requests)]),
            server_phases: [0; 4],
        }
    }

    #[test]
    fn table_has_one_row_per_librarian_and_dashes_when_down() {
        let report = HealthReport {
            librarians: vec![up_row(0, 10, 0), LibrarianHealth::down(1)],
        };
        let table = report.render_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 rows");
        assert!(lines[0].contains("p99(us)"));
        assert!(lines[1].contains("up"));
        assert!(lines[2].contains("down"));
        assert!(lines[2].contains('-'));
        assert_eq!(report.summary(), "2 librarians: 1 up, 0 degraded, 1 down");
    }

    #[test]
    fn client_observations_degrade_a_responding_librarian() {
        let mut report = HealthReport {
            librarians: vec![up_row(0, 10, 0), up_row(1, 10, 0)],
        };
        let observed = vec![LibrarianMetrics {
            librarian: 1,
            sent: 10,
            replies: 8,
            bytes_sent: 100,
            bytes_received: 80,
            timeouts: 2,
            retries: 2,
            faults: 0,
            failures: 0,
            latency: HistogramSnapshot::empty(),
        }];
        report.apply_client_observations(&observed, HealthPolicy::default());
        assert_eq!(report.librarians[0].state, HealthState::Up);
        assert_eq!(report.librarians[1].state, HealthState::Degraded);
        assert!(!report.all_up());
    }

    #[test]
    fn server_reported_errors_degrade() {
        let row = up_row(0, 10, 0);
        assert_eq!(row.error_rate(), 0.0);
        let mut bad = up_row(0, 10, 5);
        assert!(bad.error_rate() >= 0.5);
        // poll_one applies this threshold; mimic its classification.
        if bad.error_rate() >= HealthPolicy::default().degraded_error_rate {
            bad.state = HealthState::Degraded;
        }
        assert_eq!(bad.state, HealthState::Degraded);
    }
}
