//! TERAPHIM: the distributed text-retrieval system of de Kretser,
//! Moffat, Shimmin & Zobel (ICDCS 1998), in Rust.
//!
//! The architecture follows §3 of the paper:
//!
//! * a [`Librarian`] is an independent mono-server engine managing one
//!   subcollection — it indexes, evaluates queries, and fetches
//!   documents; it answers the wire protocol of `teraphim-net`;
//! * a [`Receptionist`] brokers user queries to a set of librarians over
//!   any transport, merges their rankings, and requests the answer
//!   documents;
//! * [`Methodology`] selects how much global information the
//!   receptionist holds: **Central Nothing** (a librarian list),
//!   **Central Vocabulary** (merged vocabularies and statistics) or
//!   **Central Index** (a grouped central index, expanded via the
//!   `k'`-group candidate mechanism).
//!
//! Two drivers execute queries:
//!
//! * the *real* driver ([`Receptionist`]) over in-process or TCP
//!   transports — used for effectiveness experiments (Table 1) and real
//!   deployments;
//! * the *simulation* driver ([`sim::SimDriver`]) which runs the same
//!   methodology logic while charging every message, disk access and CPU
//!   step to a `teraphim-simnet` resource model — used for the response
//!   time experiments (Tables 3 and 4).
//!
//! # Examples
//!
//! ```
//! use teraphim_core::{DistributedCollection, Methodology};
//!
//! # fn main() -> Result<(), teraphim_core::TeraphimError> {
//! let system = DistributedCollection::from_texts(&[
//!     ("ALPHA", &[("A-1", "the cat sat on the mat"), ("A-2", "dogs chase cats")]),
//!     ("BETA", &[("B-1", "compression of inverted files")]),
//! ])?;
//! let hits = system.query(Methodology::CentralVocabulary, "cat compression", 3)?;
//! assert!(!hits.is_empty());
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod distributed;
pub mod health;
pub mod librarian;
pub mod methodology;
pub mod receptionist;
pub mod selection;
pub mod serving;
pub mod sim;

pub use cache::{CacheConfig, CacheCounters, CacheStats};
pub use distributed::DistributedCollection;
pub use health::{HealthPolicy, HealthReport, HealthState, LibrarianHealth};
pub use librarian::Librarian;
pub use methodology::{CiParams, Methodology};
pub use receptionist::{
    Coverage, DegradePolicy, FetchedDoc, GlobalHit, RankedAnswer, Receptionist,
};
pub use serving::{QuerySession, ServePool};

use std::error::Error;
use std::fmt;

/// Errors surfaced by TERAPHIM operations.
#[derive(Debug)]
pub enum TeraphimError {
    /// A transport or protocol failure.
    Net(teraphim_net::NetError),
    /// An engine-level failure at a librarian.
    Engine(teraphim_engine::EngineError),
    /// An index failure (e.g. while building the central index).
    Index(teraphim_index::IndexError),
    /// A persistent-store failure (durable append, open, recovery).
    Store(teraphim_store::StoreError),
    /// The receptionist lacks the global state the methodology needs.
    MissingGlobalState(&'static str),
    /// Invalid parameters (e.g. `k' < k / G`).
    BadParameters(String),
    /// Too few librarians answered to satisfy the degradation policy:
    /// the query produced no usable (even partial) ranking.
    InsufficientCoverage {
        /// Librarians that answered successfully.
        answered: usize,
        /// Librarians that failed permanently (after retries).
        failed: usize,
    },
}

impl fmt::Display for TeraphimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeraphimError::Net(e) => write!(f, "network: {e}"),
            TeraphimError::Engine(e) => write!(f, "engine: {e}"),
            TeraphimError::Index(e) => write!(f, "index: {e}"),
            TeraphimError::Store(e) => write!(f, "store: {e}"),
            TeraphimError::MissingGlobalState(what) => {
                write!(f, "receptionist lacks global state: {what}")
            }
            TeraphimError::BadParameters(msg) => write!(f, "bad parameters: {msg}"),
            TeraphimError::InsufficientCoverage { answered, failed } => write!(
                f,
                "insufficient coverage: {answered} librarian(s) answered, {failed} failed"
            ),
        }
    }
}

impl Error for TeraphimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TeraphimError::Net(e) => Some(e),
            TeraphimError::Engine(e) => Some(e),
            TeraphimError::Index(e) => Some(e),
            TeraphimError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<teraphim_net::NetError> for TeraphimError {
    fn from(e: teraphim_net::NetError) -> Self {
        TeraphimError::Net(e)
    }
}

impl From<teraphim_engine::EngineError> for TeraphimError {
    fn from(e: teraphim_engine::EngineError) -> Self {
        TeraphimError::Engine(e)
    }
}

impl From<teraphim_store::StoreError> for TeraphimError {
    fn from(e: teraphim_store::StoreError) -> Self {
        TeraphimError::Store(e)
    }
}

impl From<teraphim_index::IndexError> for TeraphimError {
    fn from(e: teraphim_index::IndexError) -> Self {
        TeraphimError::Index(e)
    }
}
