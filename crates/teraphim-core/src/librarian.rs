//! The librarian: an independent mono-server engine that answers the
//! TERAPHIM protocol.
//!
//! "Each is responsible for some component of the collection, for which
//! it maintains an index, evaluates queries, and fetches documents"
//! (§3). A librarian never consults central information: rank requests
//! either carry explicit weights (CV/CI) or are answered with purely
//! local statistics (CN). This is the transparency property the paper
//! requires — any subcollection can serve several receptionists at once.

use std::path::Path;
use std::time::Instant;
use teraphim_engine::{ranking, Collection, RankScratch};
use teraphim_net::{Message, Service};
use teraphim_obs::{
    FlightEntry, FlightRecorder, Histogram, ServerTimings, Span, SpanContext, SpanTree,
};
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

/// Saturating microseconds for phase timing.
fn elapsed_micros(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// A librarian serving one subcollection.
///
/// Ranking scratch buffers (accumulator map, candidate vectors) live on
/// the librarian and are reused across the query stream, so steady-state
/// query evaluation allocates no fresh hash tables.
///
/// Every librarian also keeps its own service ledger — request, rank and
/// error counters plus a log-bucketed service-latency histogram — and
/// serves it over [`Message::Stats`], so a receptionist (or `teraphim
/// stats`) can snapshot fleet health without any shared state.
#[derive(Debug)]
pub struct Librarian {
    collection: Collection,
    scratch: RankScratch,
    requests_served: u64,
    rank_requests: u64,
    errors_returned: u64,
    latency: Histogram,
    /// Index epoch: 0 at build, bumped by [`Librarian::bump_epoch`] when
    /// the index changes. Echoed in every rank/score reply and in
    /// `StatsReply` so receptionist caches can invalidate.
    epoch: u64,
    /// Serialized index size, computed lazily on the first `Stats`
    /// request (serialization is too expensive for the constructor).
    index_bytes_cache: Option<u64>,
    /// Fleet routing table, when this librarian serves as a routing
    /// info point (answers [`Message::RoutingRequest`]).
    routing: Option<teraphim_net::RoutingTable>,
    /// Scan (term lookup / weighting) micros of the last handled
    /// request; harvested by [`Service::take_phase_timings`].
    last_scan: u64,
    /// Rank (accumulator/heap) micros of the last handled request.
    last_rank: u64,
    /// Lifetime server-phase totals, indexed like
    /// [`SERVER_PHASES`] — the server side of the phase ledger,
    /// published in [`Message::StatsReply`].
    phase_totals: [u64; 4],
    /// Server-side flight recorder: exemplar spans for requests that
    /// arrived with a span context. Detached (free) by default.
    flight: FlightRecorder,
    /// Durable backing store, when the librarian was opened from (or
    /// attached to) a store directory. With a store attached, the epoch
    /// is the store's durable epoch and
    /// [`Librarian::add_documents`] follows the write-ahead discipline.
    store: Option<teraphim_store::IndexStore>,
}

impl Librarian {
    /// Builds a librarian over parsed documents.
    pub fn build(name: &str, analyzer: Analyzer, docs: &[TrecDoc]) -> Self {
        Self::from_collection(Collection::build(name, analyzer, docs))
    }

    /// Builds a librarian from `(docno, text)` pairs with the default
    /// analyzer.
    pub fn from_texts(name: &str, docs: &[(&str, &str)]) -> Self {
        Self::from_collection(Collection::from_texts(name, docs))
    }

    /// Wraps an existing collection (e.g. one loaded from disk).
    pub fn from_collection(collection: Collection) -> Self {
        Librarian {
            collection,
            scratch: RankScratch::new(),
            requests_served: 0,
            rank_requests: 0,
            errors_returned: 0,
            latency: Histogram::new(),
            epoch: 0,
            index_bytes_cache: None,
            routing: None,
            last_scan: 0,
            last_rank: 0,
            phase_totals: [0; 4],
            flight: FlightRecorder::disabled(),
            store: None,
        }
    }

    /// Opens a librarian from a persistent store directory instead of
    /// rebuilding its index: segments are deserialized and merged, the
    /// WAL's valid prefix replayed, and the librarian's epoch set to the
    /// store's durable epoch — so reopening after a crash serves replies
    /// that are cache-indistinguishable from the pre-crash librarian at
    /// that epoch.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TeraphimError::Store`] if the store is missing
    /// or corrupt.
    pub fn open(dir: &Path) -> Result<Librarian, crate::TeraphimError> {
        let (store, collection) = teraphim_store::IndexStore::open(dir)?;
        let mut librarian = Self::from_collection(collection);
        librarian.epoch = store.epoch();
        librarian.store = Some(store);
        Ok(librarian)
    }

    /// Builds a librarian over parsed documents *and* creates a
    /// persistent store for it in `dir` (epoch 0 = this base build).
    ///
    /// # Errors
    ///
    /// Returns [`crate::TeraphimError::Store`] if `dir` already holds a
    /// store or cannot be written.
    pub fn create_store(
        dir: &Path,
        name: &str,
        analyzer: &Analyzer,
        docs: &[TrecDoc],
    ) -> Result<Librarian, crate::TeraphimError> {
        let (store, collection) = teraphim_store::IndexStore::create(dir, name, analyzer, docs)?;
        let mut librarian = Self::from_collection(collection);
        librarian.store = Some(store);
        Ok(librarian)
    }

    /// Appends a document batch, durably when a store is attached: the
    /// batch is WAL-logged and synced *first*, and only then merged into
    /// the in-memory index, so the advertised epoch never gets ahead of
    /// what a crash would recover. Without a store this is a plain
    /// in-memory append plus an epoch bump. Returns the new epoch.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TeraphimError::Store`] if the WAL append fails
    /// (the in-memory index is then left untouched) or
    /// [`crate::TeraphimError::Engine`] if the merge fails.
    pub fn add_documents(&mut self, docs: &[TrecDoc]) -> Result<u64, crate::TeraphimError> {
        match &mut self.store {
            Some(store) => {
                let epoch = store.log_batch(docs)?;
                self.collection.append_documents(docs)?;
                self.epoch = epoch;
            }
            None => {
                self.collection.append_documents(docs)?;
                self.epoch += 1;
            }
        }
        self.index_bytes_cache = None;
        Ok(self.epoch)
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&teraphim_store::IndexStore> {
        self.store.as_ref()
    }

    /// Mutable access to the attached store (checkpoint, compact,
    /// crash-point injection in tests).
    pub fn store_mut(&mut self) -> Option<&mut teraphim_store::IndexStore> {
        self.store.as_mut()
    }

    /// Attaches a flight recorder retaining at most `capacity`
    /// exemplars; span-carrying requests leave a server-side span tree
    /// in it. Returns a handle sharing the buffer.
    pub fn enable_flight_recorder(&mut self, capacity: usize) -> FlightRecorder {
        self.flight = FlightRecorder::new(capacity);
        self.flight.clone()
    }

    /// The librarian's flight recorder handle (detached unless
    /// [`Librarian::enable_flight_recorder`] was called).
    pub fn flight(&self) -> FlightRecorder {
        self.flight.clone()
    }

    /// Current index epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Declares the index changed: every later reply carries the new
    /// epoch, telling receptionists their cached results are stale.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Adopts a shard's epoch wholesale — the migration handoff path: a
    /// replica joining a shard's group indexes the same documents and
    /// then takes the shard's current epoch, so its replies are
    /// cache-indistinguishable from the replicas that were already
    /// serving.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The underlying collection.
    pub fn collection(&self) -> &Collection {
        &self.collection
    }

    /// Mutable access (e.g. to pre-build skip tables).
    pub fn collection_mut(&mut self) -> &mut Collection {
        &mut self.collection
    }

    /// Collection name.
    pub fn name(&self) -> &str {
        self.collection.name()
    }

    /// Attaches the fleet's shared routing table so this librarian can
    /// answer [`Message::RoutingRequest`] admin queries (any node can
    /// serve the table; it is shared and versioned).
    pub fn set_routing_table(&mut self, table: teraphim_net::RoutingTable) {
        self.routing = Some(table);
    }

    /// Number of documents managed.
    pub fn num_docs(&self) -> u64 {
        self.collection.num_docs()
    }

    /// Builds the [`Message::StatsReply`] for this librarian's current
    /// service ledger.
    fn stats_reply(&mut self) -> Message {
        let index_bytes = *self
            .index_bytes_cache
            .get_or_insert_with(|| self.collection.index().to_bytes().len() as u64);
        Message::StatsReply {
            name: self.collection.name().to_owned(),
            num_docs: self.collection.num_docs(),
            num_terms: self.collection.index().vocab().len() as u64,
            index_bytes,
            requests_served: self.requests_served,
            rank_requests: self.rank_requests,
            errors: self.errors_returned,
            epoch: self.epoch,
            latency: self.latency.snapshot().to_bucket_pairs(),
            server_phases: self
                .phase_totals
                .iter()
                .enumerate()
                .filter(|(_, &micros)| micros > 0)
                .map(|(i, &micros)| (i as u32, micros))
                .collect(),
        }
    }

    fn handle_inner(&mut self, request: Message) -> Message {
        match request {
            Message::StatsRequest => {
                let index = self.collection.index();
                let term_freqs = index
                    .vocab()
                    .iter()
                    .map(|(id, term)| (term.to_owned(), index.stats().doc_freq(id)))
                    .collect();
                Message::StatsResponse {
                    num_docs: index.stats().num_docs(),
                    term_freqs,
                }
            }
            Message::IndexRequest => Message::IndexResponse {
                index_bytes: self.collection.index().to_bytes(),
            },
            Message::RankRequest { query_id, k, terms } => {
                // Central Nothing: local statistics. Query terms arrive as
                // strings with their f_qt; unknown terms contribute
                // nothing. Scan = lookup + local weighting; rank = the
                // accumulator/heap pass.
                let scan_started = Instant::now();
                let index = self.collection.index();
                let pairs: Vec<(teraphim_index::TermId, u32)> = terms
                    .iter()
                    .filter_map(|(t, f)| index.vocab().term_id(t).map(|id| (id, *f)))
                    .collect();
                let weighted = ranking::local_weights(index, &pairs);
                self.last_scan = elapsed_micros(scan_started);
                let rank_started = Instant::now();
                let hits =
                    ranking::rank_with_scratch(index, &weighted, k as usize, &mut self.scratch);
                self.last_rank = elapsed_micros(rank_started);
                Message::RankResponse {
                    query_id,
                    epoch: self.epoch,
                    entries: hits.into_iter().map(|h| (h.doc, h.score)).collect(),
                }
            }
            Message::RankWeightedRequest { query_id, k, terms } => {
                // Central Vocabulary: the receptionist supplies global
                // weights, so scores are identical to a mono-server run.
                // No local scan phase — the weighting already happened
                // client-side.
                let rank_started = Instant::now();
                let hits = self.collection.ranked_query_weighted_scratch(
                    &terms,
                    k as usize,
                    &mut self.scratch,
                );
                self.last_rank = elapsed_micros(rank_started);
                Message::RankResponse {
                    query_id,
                    epoch: self.epoch,
                    entries: hits.into_iter().map(|h| (h.doc, h.score)).collect(),
                }
            }
            Message::ScoreCandidatesRequest {
                query_id,
                terms,
                candidates,
            } => {
                let rank_started = Instant::now();
                let result = self.collection.score_candidates_scratch(
                    &terms,
                    &candidates,
                    &mut self.scratch,
                );
                self.last_rank = elapsed_micros(rank_started);
                match result {
                    Ok((scores, postings_decoded)) => Message::ScoreResponse {
                        query_id,
                        epoch: self.epoch,
                        entries: scores.into_iter().map(|s| (s.doc, s.score)).collect(),
                        postings_decoded,
                    },
                    Err(e) => Message::Error {
                        message: format!("candidate scoring failed: {e}"),
                    },
                }
            }
            Message::FetchDocsRequest {
                query_id,
                docs,
                plain,
            } => {
                let mut out = Vec::with_capacity(docs.len());
                for doc in docs {
                    let docno = match self.collection.store().docno_checked(doc) {
                        Some(d) => d.to_owned(),
                        None => {
                            return Message::Error {
                                message: format!("unknown document id {doc}"),
                            }
                        }
                    };
                    let bytes = if plain {
                        match self.collection.fetch(doc) {
                            Ok(text) => text.into_bytes(),
                            Err(e) => {
                                return Message::Error {
                                    message: format!("fetch failed: {e}"),
                                }
                            }
                        }
                    } else {
                        match self.collection.store().compressed_bytes(doc) {
                            Ok(b) => b.to_vec(),
                            Err(e) => {
                                return Message::Error {
                                    message: format!("fetch failed: {e}"),
                                }
                            }
                        }
                    };
                    out.push((doc, docno, bytes));
                }
                Message::DocsResponse {
                    query_id,
                    docs: out,
                }
            }
            Message::FetchHeadersRequest { query_id, docs } => {
                let mut headers = Vec::with_capacity(docs.len());
                for doc in docs {
                    match self.collection.store().docno_checked(doc) {
                        Some(d) => headers.push((doc, d.to_owned())),
                        None => {
                            return Message::Error {
                                message: format!("unknown document id {doc}"),
                            }
                        }
                    }
                }
                Message::HeadersResponse { query_id, headers }
            }
            Message::BooleanRequest { query_id, expr } => {
                match self.collection.boolean_query(&expr) {
                    Ok(docs) => Message::BooleanResponse { query_id, docs },
                    Err(e) => Message::Error {
                        message: format!("boolean query failed: {e}"),
                    },
                }
            }
            // Handled in `Service::handle` before the ledger is updated.
            Message::Stats => self.stats_reply(),
            Message::RoutingRequest => match &self.routing {
                Some(table) => table.to_message(),
                None => Message::Error {
                    message: "no routing table at this librarian".into(),
                },
            },
            Message::FlightRecRequest => Message::FlightRecReply {
                // A detached recorder dumps an empty (but well-formed)
                // summary — asking is never an error.
                json: self.flight.dump_json(),
            },
            // Requests only a receptionist should ever receive.
            Message::StatsResponse { .. }
            | Message::IndexResponse { .. }
            | Message::RankResponse { .. }
            | Message::ScoreResponse { .. }
            | Message::DocsResponse { .. }
            | Message::HeadersResponse { .. }
            | Message::BooleanResponse { .. }
            | Message::Error { .. }
            | Message::Unavailable { .. }
            | Message::StatsReply { .. }
            | Message::RoutingReply { .. }
            | Message::FlightRecReply { .. } => Message::Error {
                message: "librarian received a response message".into(),
            },
        }
    }
}

impl Service for Librarian {
    fn handle(&mut self, request: Message) -> Message {
        // Admin stats are answered out of band: they do not count as
        // served requests and are not timed, so polling a fleet for
        // health never perturbs the ledger it reads.
        if matches!(request, Message::Stats) {
            return self.stats_reply();
        }
        // Routing-table polls and flight-recorder dumps are admin
        // traffic too: answered out of band so fleet status checks
        // never perturb the service ledger.
        if matches!(request, Message::RoutingRequest | Message::FlightRecRequest) {
            return self.handle_inner(request);
        }
        let started = Instant::now();
        let is_rank = matches!(
            request,
            Message::RankRequest { .. }
                | Message::RankWeightedRequest { .. }
                | Message::ScoreCandidatesRequest { .. }
        );
        // Phase clocks restart per request; non-rank requests report
        // zero scan/rank.
        self.last_scan = 0;
        self.last_rank = 0;
        let response = self.handle_inner(request);
        self.requests_served += 1;
        if is_rank {
            self.rank_requests += 1;
        }
        if matches!(
            response,
            Message::Error { .. } | Message::Unavailable { .. }
        ) {
            self.errors_returned += 1;
        }
        self.latency.record(elapsed_micros(started));
        response
    }

    fn take_phase_timings(&mut self) -> Option<(u64, u64)> {
        Some((
            std::mem::take(&mut self.last_scan),
            std::mem::take(&mut self.last_rank),
        ))
    }

    fn note_server_timings(&mut self, timings: &ServerTimings, span: Option<&SpanContext>) {
        for (i, (_, micros)) in timings.as_pairs().iter().enumerate() {
            self.phase_totals[i] = self.phase_totals[i].saturating_add(*micros);
        }
        // A span-carrying request leaves a server-side exemplar: a
        // one-level span tree of the four phases, stamped with the
        // client's trace id, so `teraphim flightrec` can surface what a
        // slow request spent its time on without the client's trace.
        if !self.flight.is_enabled() {
            return;
        }
        let Some(span) = span else { return };
        let trace_id = span.trace_id;
        let librarian = span.parent_span;
        let timings = *timings;
        let name = self.collection.name().to_owned();
        self.flight.record_entry(move || {
            let total = timings.total_micros();
            let mut root = Span {
                name: "serve".to_owned(),
                librarian: Some(librarian),
                start_micros: 0,
                duration_micros: total,
                faulted: false,
                children: Vec::new(),
            };
            let mut at = 0u64;
            for (phase, micros) in timings.as_pairs() {
                root.children.push(Span {
                    name: phase.to_owned(),
                    librarian: Some(librarian),
                    start_micros: at,
                    duration_micros: micros,
                    faulted: false,
                    children: Vec::new(),
                });
                at = at.saturating_add(micros);
            }
            let tree = SpanTree {
                trace_id,
                op: name,
                methodology: None,
                query_id: 0,
                k: 0,
                faulted: false,
                degraded: false,
                root,
            };
            FlightEntry {
                trace_id,
                op: tree.op.clone(),
                methodology: None,
                query_id: 0,
                duration_micros: total,
                faulted: false,
                degraded: false,
                json: tree.to_json(),
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teraphim_net::{InProcTransport, Transport};

    fn librarian() -> Librarian {
        Librarian::from_texts(
            "TEST",
            &[
                ("T-1", "the cat sat on the mat"),
                ("T-2", "dogs and cats and birds"),
                ("T-3", "compression of inverted files"),
            ],
        )
    }

    #[test]
    fn stats_request_returns_vocabulary() {
        let mut lib = librarian();
        let resp = lib.handle(Message::StatsRequest);
        match resp {
            Message::StatsResponse {
                num_docs,
                term_freqs,
            } => {
                assert_eq!(num_docs, 3);
                let cat = term_freqs.iter().find(|(t, _)| t == "cat").unwrap();
                assert_eq!(cat.1, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn index_request_roundtrips_through_serialization() {
        let mut lib = librarian();
        let resp = lib.handle(Message::IndexRequest);
        match resp {
            Message::IndexResponse { index_bytes } => {
                let index = teraphim_index::InvertedIndex::from_bytes(&index_bytes).unwrap();
                assert_eq!(index.num_docs(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rank_request_uses_local_statistics() {
        let mut lib = librarian();
        let resp = lib.handle(Message::RankRequest {
            query_id: 1,
            k: 10,
            terms: vec![("cat".into(), 1)],
        });
        match resp {
            Message::RankResponse {
                query_id, entries, ..
            } => {
                assert_eq!(query_id, 1);
                assert_eq!(entries.len(), 2);
                // Scores strictly ordered.
                assert!(entries[0].1 >= entries[1].1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn weighted_rank_matches_engine() {
        let mut lib = librarian();
        let expected = lib
            .collection()
            .ranked_query_weighted(&[("compression".into(), 2.0)], 5);
        let resp = lib.handle(Message::RankWeightedRequest {
            query_id: 2,
            k: 5,
            terms: vec![("compression".into(), 2.0)],
        });
        match resp {
            Message::RankResponse { entries, .. } => {
                assert_eq!(entries.len(), expected.len());
                for (e, x) in entries.iter().zip(&expected) {
                    assert_eq!(e.0, x.doc);
                    assert!((e.1 - x.score).abs() < 1e-12);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fetch_docs_plain_and_compressed() {
        let mut lib = librarian();
        let plain = lib.handle(Message::FetchDocsRequest {
            query_id: 3,
            docs: vec![0],
            plain: true,
        });
        let Message::DocsResponse {
            docs: plain_docs, ..
        } = plain
        else {
            panic!("bad response");
        };
        assert_eq!(plain_docs[0].1, "T-1");
        assert_eq!(
            String::from_utf8(plain_docs[0].2.clone()).unwrap(),
            "the cat sat on the mat"
        );
        let compressed = lib.handle(Message::FetchDocsRequest {
            query_id: 3,
            docs: vec![0],
            plain: false,
        });
        let Message::DocsResponse {
            docs: comp_docs, ..
        } = compressed
        else {
            panic!("bad response");
        };
        assert!(comp_docs[0].2.len() < plain_docs[0].2.len());
    }

    #[test]
    fn fetch_headers() {
        let mut lib = librarian();
        let resp = lib.handle(Message::FetchHeadersRequest {
            query_id: 4,
            docs: vec![2, 0],
        });
        assert_eq!(
            resp,
            Message::HeadersResponse {
                query_id: 4,
                headers: vec![(2, "T-3".into()), (0, "T-1".into())],
            }
        );
    }

    #[test]
    fn unknown_documents_are_errors() {
        let mut lib = librarian();
        let resp = lib.handle(Message::FetchDocsRequest {
            query_id: 5,
            docs: vec![99],
            plain: true,
        });
        assert!(matches!(resp, Message::Error { .. }));
    }

    #[test]
    fn response_messages_are_rejected() {
        let mut lib = librarian();
        let resp = lib.handle(Message::RankResponse {
            query_id: 1,
            epoch: 0,
            entries: vec![],
        });
        assert!(matches!(resp, Message::Error { .. }));
    }

    #[test]
    fn stats_ledger_counts_requests_and_errors() {
        let mut lib = librarian();
        lib.handle(Message::RankRequest {
            query_id: 1,
            k: 10,
            terms: vec![("cat".into(), 1)],
        });
        lib.handle(Message::FetchHeadersRequest {
            query_id: 2,
            docs: vec![0],
        });
        lib.handle(Message::FetchDocsRequest {
            query_id: 3,
            docs: vec![99],
            plain: true,
        }); // error: unknown doc
        let reply = lib.handle(Message::Stats);
        let Message::StatsReply {
            name,
            num_docs,
            num_terms,
            index_bytes,
            requests_served,
            rank_requests,
            errors,
            epoch,
            latency,
            server_phases,
        } = reply
        else {
            panic!("expected StatsReply");
        };
        assert_eq!(name, "TEST");
        assert_eq!(num_docs, 3);
        assert!(num_terms > 0);
        assert!(index_bytes > 0);
        assert_eq!(requests_served, 3);
        assert_eq!(rank_requests, 1);
        assert_eq!(errors, 1);
        assert_eq!(epoch, 0, "fresh librarian starts at epoch 0");
        let total: u64 = latency.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3, "every served request is timed");
        assert!(
            server_phases.is_empty(),
            "no phase totals before any span-carrying request: {server_phases:?}"
        );
        // Polling stats again does not count the poll itself.
        let again = lib.handle(Message::Stats);
        if let Message::StatsReply {
            requests_served, ..
        } = again
        {
            assert_eq!(requests_served, 3);
        }
    }

    #[test]
    fn works_through_a_transport() {
        let mut t = InProcTransport::new(librarian());
        let resp = t
            .request(&Message::RankRequest {
                query_id: 7,
                k: 1,
                terms: vec![("cat".into(), 1)],
            })
            .unwrap();
        assert!(matches!(resp, Message::RankResponse { .. }));
        assert!(t.stats().total_bytes() > 0);
    }

    #[test]
    fn store_backed_librarian_recovers_epoch_and_rankings() {
        let dir = teraphim_store::TempDir::new("librarian").unwrap();
        let docs: Vec<TrecDoc> = [
            ("T-1", "the cat sat on the mat"),
            ("T-2", "dogs and cats and birds"),
        ]
        .iter()
        .map(|(docno, text)| TrecDoc {
            docno: (*docno).to_owned(),
            text: (*text).to_owned(),
        })
        .collect();
        let mut lib =
            Librarian::create_store(dir.path(), "TEST", &Analyzer::default(), &docs).unwrap();
        assert_eq!(lib.epoch(), 0);
        let batch = vec![TrecDoc {
            docno: "T-3".into(),
            text: "compression of inverted files".into(),
        }];
        assert_eq!(lib.add_documents(&batch).unwrap(), 1);
        let expected: Vec<(u32, u64)> = lib
            .collection()
            .ranked_query("cat compression", 10)
            .into_iter()
            .map(|h| (h.doc, h.score.to_bits()))
            .collect();
        drop(lib);

        let mut reopened = Librarian::open(dir.path()).unwrap();
        assert_eq!(reopened.epoch(), 1, "epoch is durable across reopen");
        let got: Vec<(u32, u64)> = reopened
            .collection()
            .ranked_query("cat compression", 10)
            .into_iter()
            .map(|h| (h.doc, h.score.to_bits()))
            .collect();
        assert_eq!(got, expected, "recovered rankings are byte-identical");
        // The recovered epoch flows through StatsReply unchanged.
        let reply = reopened.handle(Message::Stats);
        let Message::StatsReply { epoch, .. } = reply else {
            panic!("expected StatsReply");
        };
        assert_eq!(epoch, 1);
    }

    #[test]
    fn failed_wal_append_leaves_memory_untouched() {
        let dir = teraphim_store::TempDir::new("librarian-crash").unwrap();
        let mut lib =
            Librarian::create_store(dir.path(), "TEST", &Analyzer::default(), &[]).unwrap();
        lib.store_mut()
            .unwrap()
            .inject_crash(teraphim_store::CrashPoint {
                offset: 3,
                mode: teraphim_store::CrashMode::Truncate,
            });
        let batch = vec![TrecDoc {
            docno: "X-1".into(),
            text: "never committed".into(),
        }];
        assert!(matches!(
            lib.add_documents(&batch),
            Err(crate::TeraphimError::Store(_))
        ));
        assert_eq!(lib.epoch(), 0, "epoch must not advance past durability");
        assert_eq!(lib.num_docs(), 0, "in-memory index must not run ahead");
    }

    #[test]
    fn score_candidates_round_trip() {
        let mut lib = librarian();
        let resp = lib.handle(Message::ScoreCandidatesRequest {
            query_id: 8,
            terms: vec![("cat".into(), 1.0)],
            candidates: vec![0, 1, 2],
        });
        match resp {
            Message::ScoreResponse { entries, .. } => {
                assert_eq!(entries.len(), 3);
                assert!(entries[0].1 > 0.0); // T-1 contains cat
                assert_eq!(entries[2].1, 0.0); // T-3 does not
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
