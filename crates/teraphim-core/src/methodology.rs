//! Methodology selection and parameters.

use std::fmt;

/// Parameters of the Central Index methodology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CiParams {
    /// Group size `G` (the paper uses 10, from its earlier grouping
    /// study).
    pub group_size: u32,
    /// Number of groups `k'` expanded into candidates. The paper
    /// requires `k' ≥ k / G`; its experiments use 100 and 1000.
    pub k_prime: usize,
}

impl Default for CiParams {
    fn default() -> Self {
        CiParams {
            group_size: 10,
            k_prime: 100,
        }
    }
}

impl CiParams {
    /// Validates `k' ≥ k / G` for a requested ranking depth `k`.
    pub fn valid_for(&self, k: usize) -> bool {
        self.k_prime * self.group_size as usize >= k
    }
}

/// The three federated methodologies of §3 (the mono-server baseline is
/// `teraphim_engine::Collection` used directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Methodology {
    /// The receptionist holds only a list of librarians; librarians rank
    /// with local statistics and the receptionist merges at face value.
    CentralNothing,
    /// The receptionist holds the merged vocabularies and ships global
    /// term weights; librarian scores are identical to a mono-server
    /// system.
    CentralVocabulary,
    /// The receptionist holds a grouped central index, ranks groups,
    /// and asks librarians to score only the expanded candidates.
    CentralIndex,
}

impl fmt::Display for Methodology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

impl Methodology {
    /// All three methodologies, in the paper's presentation order.
    pub const ALL: [Methodology; 3] = [
        Methodology::CentralNothing,
        Methodology::CentralVocabulary,
        Methodology::CentralIndex,
    ];

    /// The paper's two-letter abbreviation as a static string — the
    /// `methodology` label stamped onto query traces.
    pub fn code(&self) -> &'static str {
        match self {
            Methodology::CentralNothing => "CN",
            Methodology::CentralVocabulary => "CV",
            Methodology::CentralIndex => "CI",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_abbreviations() {
        assert_eq!(Methodology::CentralNothing.to_string(), "CN");
        assert_eq!(Methodology::CentralVocabulary.to_string(), "CV");
        assert_eq!(Methodology::CentralIndex.to_string(), "CI");
    }

    #[test]
    fn default_ci_params_match_the_paper() {
        let p = CiParams::default();
        assert_eq!(p.group_size, 10);
        assert_eq!(p.k_prime, 100);
    }

    #[test]
    fn k_prime_validity() {
        let p = CiParams {
            group_size: 10,
            k_prime: 100,
        };
        assert!(p.valid_for(20));
        assert!(p.valid_for(1000));
        assert!(!p.valid_for(1001));
    }

    #[test]
    fn all_contains_three() {
        assert_eq!(Methodology::ALL.len(), 3);
    }
}
