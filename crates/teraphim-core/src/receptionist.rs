//! The receptionist: the broker between users and librarians.
//!
//! Query evaluation follows the four steps of §3: (1) the user lodges a
//! query and the receptionist passes it — with global information as the
//! methodology allows — to the librarians; (2) each librarian determines
//! a local ranking; (3) the receptionist waits for all responses and
//! merges them into a collection-wide top `k`; (4) the librarians return
//! the text of the chosen documents.
//!
//! The receptionist is generic over the transport, so the same logic
//! drives in-process librarians, TCP librarians on a LAN, and the
//! byte-accounted runs that feed the WAN simulation.

use crate::cache::{CacheConfig, CacheState, CacheStats, CachedAnswer, Lookup, ResultKey};
use crate::health::{self, HealthPolicy, HealthReport, HealthState};
use crate::methodology::{CiParams, Methodology};
use crate::TeraphimError;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use teraphim_engine::ranking::{self, ScoredDoc};
use teraphim_index::similarity;
use teraphim_index::{CollectionStats, DocId, GroupedIndex, InvertedIndex, Vocabulary};
use teraphim_net::{
    dispatch_collect_traced, dispatch_partial_traced, dispatch_traced, DispatchMode, Message,
    NetError, RoutingTable, TrafficStats, Transport,
};
use teraphim_obs::{EventKind, LibCandidates, Phase, TraceSink};
use teraphim_text::Analyzer;

/// A merged ranking entry: which librarian owns the document.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalHit {
    /// Index of the owning librarian.
    pub librarian: usize,
    /// Local document id at that librarian.
    pub doc: DocId,
    /// Similarity score as merged.
    pub score: f64,
}

/// A fetched answer document.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchedDoc {
    /// Index of the owning librarian.
    pub librarian: usize,
    /// Local document id.
    pub doc: DocId,
    /// External identifier.
    pub docno: String,
    /// Decompressed text when fetched `plain`; `None` when the document
    /// travelled compressed (TERAPHIM's preferred mode — decompression
    /// then happens at display time with the collection's model).
    pub text: Option<String>,
    /// Bytes that crossed the wire for this document's body.
    pub body_bytes: usize,
}

/// What fraction of the librarian fleet — and of the global collection —
/// actually contributed to a merged ranking. Attached to every
/// [`RankedAnswer`] so callers can tell a complete answer from a
/// degraded one.
#[derive(Debug, Clone, PartialEq)]
pub struct Coverage {
    /// Librarians that were contacted and answered successfully, in
    /// index order.
    pub answered: Vec<usize>,
    /// Librarians whose exchange failed permanently (after any retries
    /// the transport stack performs), in index order.
    pub failed: Vec<usize>,
    /// Fraction of the global document count held by librarians that
    /// did *not* fail — `None` when the receptionist has no global
    /// collection statistics (Central Nothing without CV preprocessing).
    pub docs_fraction: Option<f64>,
}

impl Coverage {
    /// True when every contacted librarian answered.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }

    /// True when at least one librarian dropped out of the merge.
    pub fn is_degraded(&self) -> bool {
        !self.failed.is_empty()
    }
}

/// A merged ranking plus the coverage it was computed over.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedAnswer {
    /// The merged global top `k` over the answering librarians.
    pub hits: Vec<GlobalHit>,
    /// Which librarians contributed and which failed.
    pub coverage: Coverage,
}

/// When is a partial answer still an answer? The receptionist's
/// degradation policy for [`Receptionist::query_with_coverage`]:
/// fewer than `min_answered` successful librarians turns the degraded
/// result into [`TeraphimError::InsufficientCoverage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Minimum number of librarians that must answer for a ranking to
    /// be returned at all.
    pub min_answered: usize,
}

impl Default for DegradePolicy {
    /// Any surviving librarian is better than no answer.
    fn default() -> Self {
        DegradePolicy { min_answered: 1 }
    }
}

/// Global state for the Central Vocabulary methodology. Immutable once
/// built, so forked receptionists ([`Receptionist::fork`]) share one
/// copy behind an [`Arc`] instead of re-running the vocabulary
/// exchange per session.
#[derive(Debug)]
struct CvState {
    vocab: Vocabulary,
    stats: CollectionStats,
    /// Per-librarian statistics (aligned to `vocab`) for collection
    /// selection.
    selection: crate::selection::SelectionState,
}

/// Global state for the Central Index methodology. Immutable once
/// built and shared across forked receptionists like [`CvState`].
#[derive(Debug)]
struct CiState {
    grouped: GroupedIndex,
    params: CiParams,
}

/// A shared routing table plus the last version this receptionist acted
/// on; the delta between the two is what a query observes.
#[derive(Debug, Clone)]
struct RoutingWatch {
    table: RoutingTable,
    last_seen: u64,
}

/// The receptionist over a set of librarian transports.
///
/// # Examples
///
/// ```
/// use teraphim_core::{Librarian, Methodology, Receptionist};
/// use teraphim_net::InProcTransport;
/// use teraphim_text::Analyzer;
///
/// # fn main() -> Result<(), teraphim_core::TeraphimError> {
/// let librarians = vec![
///     Librarian::from_texts("A", &[("A-1", "cats sleep all day")]),
///     Librarian::from_texts("B", &[("B-1", "dogs fetch sticks")]),
/// ];
/// let transports = librarians.into_iter().map(InProcTransport::new).collect();
/// let mut receptionist = Receptionist::new(transports, Analyzer::default());
/// receptionist.enable_cv()?; // Central Vocabulary preprocessing
/// let hits = receptionist.query(Methodology::CentralVocabulary, "cats", 5)?;
/// assert_eq!(hits.len(), 1);
/// assert_eq!(receptionist.headers(&hits)?, vec!["A-1".to_string()]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Receptionist<T: Transport> {
    transports: Vec<T>,
    analyzer: Analyzer,
    cv: Option<Arc<CvState>>,
    ci: Option<Arc<CiState>>,
    next_query_id: u32,
    dispatch: DispatchMode,
    degrade: DegradePolicy,
    trace: TraceSink,
    cache: Option<CacheState>,
    routing: Option<RoutingWatch>,
}

impl<T: Transport> Receptionist<T> {
    /// Creates a Central-Nothing-capable receptionist: all it knows is
    /// the librarian list. Subqueries fan out concurrently by default
    /// (the paper's parallel-librarians model, where elapsed time is the
    /// maximum of the librarians' times).
    pub fn new(transports: Vec<T>, analyzer: Analyzer) -> Self {
        Receptionist {
            transports,
            analyzer,
            cv: None,
            ci: None,
            next_query_id: 0,
            dispatch: DispatchMode::default(),
            degrade: DegradePolicy::default(),
            trace: TraceSink::disabled(),
            cache: None,
            routing: None,
        }
    }

    /// Clones this receptionist's *global* state onto a fresh set of
    /// transports, producing an independent session that can run on
    /// another thread. The expensive preprocessing products — the
    /// merged CV vocabulary/statistics and the CI grouped index — are
    /// shared behind [`Arc`]s (they are immutable once built), so a
    /// pool of hundreds of sessions costs no more memory than one.
    ///
    /// Per-session state is *not* shared: the fork gets its own
    /// transports (and therefore its own traffic accounting), its own
    /// query-id counter, a fresh cache with the same configuration
    /// (caches are unsynchronized, so each session maintains its own),
    /// and a disabled trace sink — attach one per session with
    /// [`Receptionist::set_trace_sink`] if needed. Dispatch mode and
    /// degrade policy carry over.
    ///
    /// The fork may run over a *different* transport type than the
    /// prototype — e.g. preprocess over plain per-call
    /// `TcpTransport`s, then fork sessions onto multiplexed handles.
    /// The transports must of course address the same librarian fleet
    /// in the same order.
    pub fn fork<U: Transport>(&self, transports: Vec<U>) -> Receptionist<U> {
        Receptionist {
            transports,
            analyzer: self.analyzer.clone(),
            cv: self.cv.clone(),
            ci: self.ci.clone(),
            next_query_id: 0,
            dispatch: self.dispatch,
            degrade: self.degrade,
            trace: TraceSink::disabled(),
            cache: self.cache.as_ref().map(|c| CacheState::new(c.config())),
            routing: self.routing.clone(),
        }
    }

    /// Enables the receptionist-side caches (merged rankings, term
    /// statistics, answer documents) under `config`. Caching is
    /// *off* by default; enabling it never changes what a query
    /// returns — cached entries replay the exact bytes the fleet
    /// produced, and epoch-based invalidation (librarians report an
    /// index epoch in every ranking reply and stats poll) drops
    /// entries as soon as any index is observed to have moved. See
    /// the `cache` module docs for the invalidation rules.
    pub fn enable_cache(&mut self, config: CacheConfig) {
        self.cache = Some(CacheState::new(config));
    }

    /// Watches a fleet [`RoutingTable`]: every query operation first
    /// compares the table's version against the last one it acted on,
    /// and any movement — a replica joined, left, or was promoted
    /// anywhere in the fleet — bumps the cache generation before the
    /// cache is consulted. Membership changes therefore can never
    /// serve a result or term-statistics entry cached under the old
    /// routing, by the same generation mechanism epoch bumps use.
    pub fn set_routing_table(&mut self, table: RoutingTable) {
        let last_seen = table.version();
        self.routing = Some(RoutingWatch { table, last_seen });
    }

    /// The watched routing table's current version, if one is attached.
    pub fn routing_version(&self) -> Option<u64> {
        self.routing.as_ref().map(|w| w.table.version())
    }

    /// Folds any routing-table movement into the cache generation.
    fn observe_routing(&mut self) {
        let Some(watch) = self.routing.as_mut() else {
            return;
        };
        let version = watch.table.version();
        if version != watch.last_seen {
            watch.last_seen = version;
            if let Some(cache) = self.cache.as_mut() {
                cache.bump_generation();
            }
        }
    }

    /// Drops all cached state and disables caching.
    pub fn disable_cache(&mut self) {
        self.cache = None;
    }

    /// True while [`Receptionist::enable_cache`] is in force.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Hit/miss/eviction counters and occupancy for the enabled
    /// caches, or `None` when caching is off.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(CacheState::stats)
    }

    /// Attaches a trace sink: subsequent operations record structured
    /// [`EventKind`] events into it, one [`teraphim_obs::QueryTrace`] per
    /// operation. The sink is also pushed down into every transport via
    /// [`Transport::set_trace`] (librarian = shard index), so wire
    /// transports start sending span contexts and decorator stacks
    /// (retry, faults, replica groups) record into the same traces.
    /// Pass [`TraceSink::disabled`] to stop tracing.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
        for (lib, transport) in self.transports.iter_mut().enumerate() {
            transport.set_trace(self.trace.clone(), lib as u32);
        }
    }

    /// The sink operations currently record into (disabled by default).
    pub fn trace_sink(&self) -> &TraceSink {
        &self.trace
    }

    /// Creates a fresh enabled sink, attaches it, and returns it — call
    /// [`TraceSink::take_traces`] on the returned handle after running
    /// queries.
    pub fn enable_tracing(&mut self) -> TraceSink {
        let sink = TraceSink::new();
        self.set_trace_sink(sink.clone());
        sink
    }

    /// Attaches a tail-retaining [`FlightRecorder`] of `capacity`
    /// exemplars to the current sink (enabling a metrics-only sink first
    /// when none is attached, so recording works without trace
    /// buffering) and returns a handle for dumping. Completed query
    /// traces are offered as span-tree exemplars; the recorder keeps the
    /// slowest plus every faulted or degraded one.
    ///
    /// [`FlightRecorder`]: teraphim_obs::FlightRecorder
    pub fn enable_flight_recorder(&mut self, capacity: usize) -> teraphim_obs::FlightRecorder {
        if !self.trace.is_enabled() {
            let registry = Arc::new(teraphim_obs::MetricsRegistry::new());
            self.set_trace_sink(TraceSink::metrics_only(registry));
        }
        let recorder = teraphim_obs::FlightRecorder::new(capacity);
        self.trace.attach_flight(recorder.clone());
        recorder
    }

    /// Tees the attached sink into a fresh [`MetricsRegistry`] and
    /// returns it. If no sink is attached a metrics-only sink (which
    /// never buffers events) is attached first, so long-running fleets
    /// can meter without accumulating traces. Every subsequent query
    /// updates the registry's rolling per-librarian and per-methodology
    /// counters and histograms with no further calls needed.
    ///
    /// [`MetricsRegistry`]: teraphim_obs::MetricsRegistry
    pub fn enable_metrics(&mut self) -> Arc<teraphim_obs::MetricsRegistry> {
        let registry = Arc::new(teraphim_obs::MetricsRegistry::new());
        if self.trace.is_enabled() {
            self.trace.tee_metrics(Arc::clone(&registry));
        } else {
            self.set_trace_sink(TraceSink::metrics_only(Arc::clone(&registry)));
        }
        registry
    }

    /// Polls every librarian over the admin `Stats` protocol and
    /// classifies the fleet with the default [`HealthPolicy`].
    pub fn fleet_health(&mut self) -> HealthReport {
        self.fleet_health_with(HealthPolicy::default())
    }

    /// [`Receptionist::fleet_health`] with an explicit policy. The
    /// server-reported rows are cross-checked against the client-side
    /// metrics registry when one is teed in, so a librarian the
    /// receptionist has watched time out or drop fan-outs is marked
    /// degraded even if it answers its own poll cleanly.
    pub fn fleet_health_with(&mut self, policy: HealthPolicy) -> HealthReport {
        let registry = self.trace.metrics();
        let mut report = health::poll_fleet(&mut self.transports, policy);
        if let Some(registry) = registry {
            report.apply_client_observations(&registry.snapshot().per_librarian, policy);
        }
        if let Some(cache) = self.cache.as_mut() {
            // Fold the poll into the cache's invalidation inputs: any
            // librarian whose index epoch moved, and any change in
            // which librarians are down, bumps the fleet generation.
            let mut failed = Vec::new();
            for row in &report.librarians {
                if row.state == HealthState::Down {
                    failed.push(row.librarian as usize);
                } else {
                    cache.observe_epoch(row.librarian as usize, row.epoch);
                }
            }
            cache.observe_failed(&failed);
        }
        report
    }

    /// The degradation policy applied by
    /// [`Receptionist::query_with_coverage`].
    pub fn degrade_policy(&self) -> DegradePolicy {
        self.degrade
    }

    /// Sets the degradation policy.
    pub fn set_degrade_policy(&mut self, policy: DegradePolicy) {
        self.degrade = policy;
    }

    /// Number of librarians.
    pub fn num_librarians(&self) -> usize {
        self.transports.len()
    }

    /// How subqueries are issued to the librarians.
    pub fn dispatch_mode(&self) -> DispatchMode {
        self.dispatch
    }

    /// Switches between concurrent and sequential fan-out. Rankings are
    /// identical in both modes; only elapsed time differs.
    pub fn set_dispatch_mode(&mut self, mode: DispatchMode) {
        self.dispatch = mode;
    }

    /// Fetches and merges every librarian's vocabulary and statistics —
    /// the Central Vocabulary preprocessing step.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn enable_cv(&mut self) -> Result<(), TeraphimError> {
        self.trace.record(EventKind::Begin {
            op: "enable_cv",
            methodology: None,
            query_id: 0,
            k: 0,
        });
        self.trace.record(EventKind::PhaseStart {
            phase: Phase::VocabExchange,
        });
        let result = self.enable_cv_inner();
        self.trace.record(EventKind::PhaseEnd {
            phase: Phase::VocabExchange,
        });
        self.trace.record(EventKind::End);
        if result.is_ok() {
            if let Some(cache) = self.cache.as_mut() {
                // Rebuilt global state changes CV query weights.
                cache.bump_generation();
            }
        }
        result
    }

    fn enable_cv_inner(&mut self) -> Result<(), TeraphimError> {
        let mut vocab = Vocabulary::new();
        let mut stats = CollectionStats::new();
        let mut selection = crate::selection::SelectionState::new();
        let mut total_docs = 0u64;
        // The exchanges overlap, but responses are *processed* in
        // librarian order: `intern` assigns term ids in first-seen
        // order, and the merged vocabulary must not depend on which
        // librarian answered fastest.
        let requests = vec![Some(Message::StatsRequest); self.transports.len()];
        let responses = dispatch_collect_traced::<_, TeraphimError>(
            self.dispatch,
            &mut self.transports,
            requests,
            &self.trace,
        )?;
        for response in responses.into_iter().flatten() {
            match response {
                Message::StatsResponse {
                    num_docs,
                    term_freqs,
                } => {
                    total_docs += num_docs;
                    let mut local = CollectionStats::new();
                    local.set_num_docs(num_docs);
                    for (term, f_t) in term_freqs {
                        let id = vocab.intern(&term);
                        stats.add_doc_freq(id, f_t);
                        local.add_doc_freq(id, f_t);
                    }
                    selection.push_librarian(local);
                }
                other => return Err(unexpected("StatsRequest", &other)),
            }
        }
        stats.set_num_docs(total_docs);
        self.cv = Some(Arc::new(CvState {
            vocab,
            stats,
            selection,
        }));
        Ok(())
    }

    /// Fetches every librarian's index and builds the grouped central
    /// index — the Central Index preprocessing step.
    ///
    /// # Errors
    ///
    /// Propagates transport and index-decoding failures.
    pub fn enable_ci(&mut self, params: CiParams) -> Result<(), TeraphimError> {
        self.trace.record(EventKind::Begin {
            op: "enable_ci",
            methodology: None,
            query_id: 0,
            k: 0,
        });
        self.trace.record(EventKind::PhaseStart {
            phase: Phase::IndexExchange,
        });
        let result = self.enable_ci_inner(params);
        self.trace.record(EventKind::PhaseEnd {
            phase: Phase::IndexExchange,
        });
        self.trace.record(EventKind::End);
        if result.is_ok() {
            if let Some(cache) = self.cache.as_mut() {
                // Rebuilt grouped index changes CI candidate expansion.
                cache.bump_generation();
            }
        }
        result
    }

    fn enable_ci_inner(&mut self, params: CiParams) -> Result<(), TeraphimError> {
        let mut indexes = Vec::with_capacity(self.transports.len());
        // As with CV setup, decode in librarian order: the grouped
        // index's layout depends on subcollection order.
        let requests = vec![Some(Message::IndexRequest); self.transports.len()];
        let responses = dispatch_collect_traced::<_, TeraphimError>(
            self.dispatch,
            &mut self.transports,
            requests,
            &self.trace,
        )?;
        for response in responses.into_iter().flatten() {
            match response {
                Message::IndexResponse { index_bytes } => {
                    indexes.push(InvertedIndex::from_bytes(&index_bytes)?);
                }
                other => return Err(unexpected("IndexRequest", &other)),
            }
        }
        let refs: Vec<&InvertedIndex> = indexes.iter().collect();
        let grouped = GroupedIndex::build(&refs, params.group_size)?;
        self.ci = Some(Arc::new(CiState { grouped, params }));
        Ok(())
    }

    /// True if Central Vocabulary state is present.
    pub fn has_cv(&self) -> bool {
        self.cv.is_some()
    }

    /// True if Central Index state is present.
    pub fn has_ci(&self) -> bool {
        self.ci.is_some()
    }

    /// Size of the merged central vocabulary in bytes (the paper's
    /// "less than 10 Mb" figure), if CV is enabled.
    pub fn cv_vocabulary_bytes(&self) -> Option<usize> {
        self.cv
            .as_ref()
            .map(|cv| cv.vocab.serialized_len() + cv.stats.to_bytes().len())
    }

    /// Size of the grouped central index in bytes (the paper's "around
    /// 40 Mb" figure), if CI is enabled.
    pub fn ci_index_bytes(&self) -> Option<usize> {
        self.ci.as_ref().map(|ci| ci.grouped.index_bytes())
    }

    /// The grouped central index, if CI is enabled.
    pub fn ci_grouped_index(&self) -> Option<&GroupedIndex> {
        self.ci.as_ref().map(|ci| &ci.grouped)
    }

    /// Aggregate traffic across all librarian transports.
    /// Per-librarian transport counters, in librarian index order — the
    /// ground truth a trace's per-librarian `sent`/`reply` sums are
    /// checked against.
    pub fn per_librarian_traffic(&self) -> Vec<TrafficStats> {
        self.transports.iter().map(Transport::stats).collect()
    }

    pub fn traffic(&self) -> TrafficStats {
        let mut total = TrafficStats::default();
        for t in &self.transports {
            total.absorb(&t.stats());
        }
        total
    }

    /// Analyzes query text into `(term, f_qt)` string pairs.
    pub fn analyze_query(&self, query: &str) -> Vec<(String, u32)> {
        let mut counts: HashMap<String, u32> = HashMap::new();
        for term in self.analyzer.analyze(query) {
            *counts.entry(term).or_insert(0) += 1;
        }
        let mut entries: Vec<(String, u32)> = counts.into_iter().collect();
        entries.sort_unstable();
        entries
    }

    /// Evaluates a ranked query under `methodology`, returning the
    /// merged global top `k` (steps 1–3 of the paper's model).
    ///
    /// # Errors
    ///
    /// Returns [`TeraphimError::MissingGlobalState`] if the methodology's
    /// preprocessing step has not run, [`TeraphimError::BadParameters`]
    /// for invalid `k`/`k'` combinations, and transport failures
    /// otherwise.
    pub fn query(
        &mut self,
        methodology: Methodology,
        query: &str,
        k: usize,
    ) -> Result<Vec<GlobalHit>, TeraphimError> {
        self.observe_routing();
        let query_id = self.next_query_id;
        self.next_query_id += 1;
        let terms = self.analyze_query(query);
        self.trace.record(EventKind::Begin {
            op: "query",
            methodology: Some(methodology.code()),
            query_id,
            k: k as u32,
        });
        // Plain queries have no degradation policy, recorded as
        // `min_answered: 0` in the key so they never collide with
        // `query_with_coverage` entries under a different policy.
        let key = self.cache.as_ref().map(|_| ResultKey {
            terms: terms.clone(),
            code: methodology.code(),
            k,
            min_answered: 0,
        });
        if let (Some(cache), Some(key)) = (self.cache.as_mut(), key.as_ref()) {
            let lookup = cache.lookup_result(key, false);
            note_lookup(&self.trace, "results", &lookup);
            if let Lookup::Hit(entry) = lookup {
                self.trace.record(EventKind::End);
                return Ok(entry.hits);
            }
        }
        let result = match methodology {
            Methodology::CentralNothing => self.query_cn(query_id, &terms, k),
            Methodology::CentralVocabulary => self.query_cv(query_id, &terms, k),
            Methodology::CentralIndex => self.query_ci(query_id, &terms, k),
        };
        if let (Ok(hits), Some(key)) = (&result, key) {
            let hits = hits.clone();
            if let Some(cache) = self.cache.as_mut() {
                // A plain query only succeeds when every contacted
                // librarian answered; observing that may bump the
                // generation (fleet recovery), so do it before the
                // insert stamps the entry's generation.
                cache.observe_failed(&[]);
                let evicted = cache.insert_result(
                    key,
                    CachedAnswer {
                        hits,
                        coverage: None,
                        degraded: false,
                    },
                );
                note_evicted(&self.trace, "results", evicted);
            }
        }
        self.trace.record(EventKind::End);
        result
    }

    fn query_cn(
        &mut self,
        query_id: u32,
        terms: &[(String, u32)],
        k: usize,
    ) -> Result<Vec<GlobalHit>, TeraphimError> {
        let request = Message::RankRequest {
            query_id,
            k: k as u32,
            terms: terms.to_vec(),
        };
        let requests = vec![Some(request); self.transports.len()];
        self.rank_fanout(query_id, requests, k, ranking_entries)
    }

    fn query_cv(
        &mut self,
        query_id: u32,
        terms: &[(String, u32)],
        k: usize,
    ) -> Result<Vec<GlobalHit>, TeraphimError> {
        let weighted = self.cv_weights(terms)?;
        let request = Message::RankWeightedRequest {
            query_id,
            k: k as u32,
            terms: weighted,
        };
        let requests = vec![Some(request); self.transports.len()];
        self.rank_fanout(query_id, requests, k, ranking_entries)
    }

    /// CV global query weights, consulting the term-statistics cache
    /// when one is enabled. The cache stores each term's *global
    /// document frequency* (or its absence from the merged
    /// vocabulary) and the weight itself is recomputed with
    /// [`similarity::w_qt`] on every use — the same call the uncached
    /// path makes, so cached weights are bit-identical.
    fn cv_weights(&mut self, terms: &[(String, u32)]) -> Result<Vec<(String, f64)>, TeraphimError> {
        let cv = self
            .cv
            .as_ref()
            .ok_or(TeraphimError::MissingGlobalState("central vocabulary"))?;
        let Some(cache) = self.cache.as_mut() else {
            return Ok(global_weights(&cv.vocab, &cv.stats, terms));
        };
        let mut weighted = Vec::new();
        for (term, f_qt) in terms {
            let lookup = cache.lookup_term(term);
            note_lookup(&self.trace, "stats", &lookup);
            let doc_freq = match lookup {
                Lookup::Hit(doc_freq) => doc_freq,
                Lookup::Miss | Lookup::Stale => {
                    let doc_freq = cv.vocab.term_id(term).map(|id| cv.stats.doc_freq(id));
                    let evicted = cache.insert_term(term.clone(), doc_freq);
                    note_evicted(&self.trace, "stats", evicted);
                    doc_freq
                }
            };
            if let Some(doc_freq) = doc_freq {
                let w = similarity::w_qt(u64::from(*f_qt), cv.stats.num_docs(), doc_freq);
                if w > 0.0 {
                    weighted.push((term.clone(), w));
                }
            }
        }
        Ok(weighted)
    }

    /// Fans `requests` out to the librarians and folds each ranking
    /// reply into the running merged top `k` *as it arrives* — merging
    /// overlaps the slower librarians' work. `merge_rankings` is a total
    /// order (score, doc, librarian), so the result is identical no
    /// matter which librarian answers first.
    fn rank_fanout(
        &mut self,
        query_id: u32,
        requests: Vec<Option<Message>>,
        k: usize,
        extract: ExtractEntries,
    ) -> Result<Vec<GlobalHit>, TeraphimError> {
        let trace = self.trace.clone();
        trace.record(EventKind::PhaseStart {
            phase: Phase::RankFanout,
        });
        let caching = self.cache.is_some();
        let mut epochs: Vec<(usize, u64)> = Vec::new();
        let mut merged: Vec<(ScoredDoc, usize)> = Vec::new();
        let mut folded = 0u64;
        let result = dispatch_traced::<_, TeraphimError>(
            self.dispatch,
            &mut self.transports,
            requests,
            &trace,
            &mut |lib, response| {
                record_scored(&trace, lib, &response);
                if caching {
                    if let Message::RankResponse { epoch, .. }
                    | Message::ScoreResponse { epoch, .. } = &response
                    {
                        epochs.push((lib, *epoch));
                    }
                }
                let entries = extract(response, query_id, lib)?;
                folded += entries.len() as u64;
                fold_ranking(&mut merged, entries, k);
                Ok(())
            },
        );
        trace.record(EventKind::Merge {
            entries: folded,
            k: k as u32,
        });
        trace.record(EventKind::PhaseEnd {
            phase: Phase::RankFanout,
        });
        self.observe_epochs(epochs);
        result?;
        Ok(into_global_hits(merged))
    }

    /// Folds librarian-reported index epochs gathered during a fan-out
    /// into the cache's invalidation state.
    fn observe_epochs(&mut self, epochs: Vec<(usize, u64)>) {
        if let Some(cache) = self.cache.as_mut() {
            for (lib, epoch) in epochs {
                cache.observe_epoch(lib, epoch);
            }
        }
    }

    /// Like [`Receptionist::query`], but a failed librarian degrades the
    /// answer instead of sinking it: surviving rankings are merged and
    /// the result carries explicit [`Coverage`] metadata. CN and CV
    /// merge whatever arrives; CI re-ranks with the reachable candidate
    /// owners. Only when fewer than [`DegradePolicy::min_answered`]
    /// librarians answer does the query fail, with the typed
    /// [`TeraphimError::InsufficientCoverage`].
    ///
    /// The merged ranking over the survivors is *byte-identical* to the
    /// ranking the same receptionist would compute if only those
    /// librarians were queried: global weights (CV/CI) come from the
    /// receptionist's preprocessing state, which is unaffected by a
    /// query-time outage.
    ///
    /// # Errors
    ///
    /// Returns [`TeraphimError::MissingGlobalState`] /
    /// [`TeraphimError::BadParameters`] exactly as [`Receptionist::query`]
    /// does, and [`TeraphimError::InsufficientCoverage`] when too few
    /// librarians survive. Individual librarian failures are *not*
    /// errors; they appear in [`Coverage::failed`].
    pub fn query_with_coverage(
        &mut self,
        methodology: Methodology,
        query: &str,
        k: usize,
    ) -> Result<RankedAnswer, TeraphimError> {
        self.observe_routing();
        let query_id = self.next_query_id;
        self.next_query_id += 1;
        let terms = self.analyze_query(query);
        self.trace.record(EventKind::Begin {
            op: "query_with_coverage",
            methodology: Some(methodology.code()),
            query_id,
            k: k as u32,
        });
        let result = self.query_with_coverage_inner(methodology, query_id, terms, k);
        self.trace.record(EventKind::End);
        result
    }

    fn query_with_coverage_inner(
        &mut self,
        methodology: Methodology,
        query_id: u32,
        terms: Vec<(String, u32)>,
        k: usize,
    ) -> Result<RankedAnswer, TeraphimError> {
        let key = self.cache.as_ref().map(|_| ResultKey {
            terms: terms.clone(),
            code: methodology.code(),
            k,
            min_answered: self.degrade.min_answered,
        });
        if let (Some(cache), Some(key)) = (self.cache.as_mut(), key.as_ref()) {
            let lookup = cache.lookup_result(key, true);
            note_lookup(&self.trace, "results", &lookup);
            if let Lookup::Hit(entry) = lookup {
                let coverage = entry
                    .coverage
                    .expect("coverage-gated hits always carry coverage");
                return Ok(RankedAnswer {
                    hits: entry.hits,
                    coverage,
                });
            }
        }
        let requests = match methodology {
            Methodology::CentralNothing => {
                let request = Message::RankRequest {
                    query_id,
                    k: k as u32,
                    terms,
                };
                vec![Some(request); self.transports.len()]
            }
            Methodology::CentralVocabulary => {
                let request = Message::RankWeightedRequest {
                    query_id,
                    k: k as u32,
                    terms: self.cv_weights(&terms)?,
                };
                vec![Some(request); self.transports.len()]
            }
            Methodology::CentralIndex => self.ci_requests(query_id, &terms, k)?,
        };
        let extract = match methodology {
            Methodology::CentralIndex => scoring_entries,
            _ => ranking_entries,
        };
        let (hits, answered, failed) = self.rank_fanout_partial(query_id, requests, k, extract);
        if let Some(cache) = self.cache.as_mut() {
            // Must precede the insert: a changed casualty set bumps
            // the generation the new entry is stamped with.
            cache.observe_failed(&failed);
        }
        let docs_fraction = self.docs_fraction_excluding(&failed);
        if self.trace.is_enabled() {
            self.trace.record(EventKind::Coverage {
                answered: answered.iter().map(|&lib| lib as u32).collect(),
                failed: failed.iter().map(|&lib| lib as u32).collect(),
                docs_permille: docs_fraction.map(|f| (f * 1000.0).round() as u32),
            });
        }
        // The policy counts surviving librarians, not merely contacted
        // ones. A CI expansion only contacts librarians holding
        // candidates; the central index answers *authoritatively* for
        // the rest ("no candidates here"), so an uncontacted librarian
        // is covered, not missing. `answered` in the coverage report
        // still lists only librarians that replied — this is purely the
        // degradation threshold.
        if self.transports.len() - failed.len() < self.degrade.min_answered {
            return Err(TeraphimError::InsufficientCoverage {
                answered: answered.len(),
                failed: failed.len(),
            });
        }
        let coverage = Coverage {
            answered,
            failed,
            docs_fraction,
        };
        if let (Some(key), Some(cache)) = (key, self.cache.as_mut()) {
            let evicted = cache.insert_result(
                key,
                CachedAnswer {
                    hits: hits.clone(),
                    coverage: Some(coverage.clone()),
                    degraded: coverage.is_degraded(),
                },
            );
            note_evicted(&self.trace, "results", evicted);
        }
        Ok(RankedAnswer { hits, coverage })
    }

    /// Fans out like [`Receptionist::rank_fanout`] but never aborts:
    /// failed librarians are dropped from the merge and reported.
    /// Returns `(hits, answered, failed)` with both index lists sorted.
    fn rank_fanout_partial(
        &mut self,
        query_id: u32,
        requests: Vec<Option<Message>>,
        k: usize,
        extract: ExtractEntries,
    ) -> (Vec<GlobalHit>, Vec<usize>, Vec<usize>) {
        let contacted: Vec<usize> = requests
            .iter()
            .enumerate()
            .filter_map(|(lib, r)| r.is_some().then_some(lib))
            .collect();
        let trace = self.trace.clone();
        trace.record(EventKind::PhaseStart {
            phase: Phase::RankFanout,
        });
        let caching = self.cache.is_some();
        let mut epochs: Vec<(usize, u64)> = Vec::new();
        let mut merged: Vec<(ScoredDoc, usize)> = Vec::new();
        let mut folded = 0u64;
        let failures = dispatch_partial_traced(
            self.dispatch,
            &mut self.transports,
            requests,
            &trace,
            &mut |lib, response| {
                record_scored(&trace, lib, &response);
                if caching {
                    if let Message::RankResponse { epoch, .. }
                    | Message::ScoreResponse { epoch, .. } = &response
                    {
                        epochs.push((lib, *epoch));
                    }
                }
                let entries = extract(response, query_id, lib)?;
                folded += entries.len() as u64;
                fold_ranking(&mut merged, entries, k);
                Ok(())
            },
        );
        trace.record(EventKind::Merge {
            entries: folded,
            k: k as u32,
        });
        trace.record(EventKind::PhaseEnd {
            phase: Phase::RankFanout,
        });
        self.observe_epochs(epochs);
        let failed: Vec<usize> = failures.into_iter().map(|(lib, _)| lib).collect();
        let answered: Vec<usize> = contacted
            .into_iter()
            .filter(|lib| !failed.contains(lib))
            .collect();
        (into_global_hits(merged), answered, failed)
    }

    /// Fraction of the global document count held by librarians *not*
    /// in `failed` — computable only once CV preprocessing has gathered
    /// per-librarian collection sizes.
    fn docs_fraction_excluding(&self, failed: &[usize]) -> Option<f64> {
        let cv = self.cv.as_ref()?;
        let sizes = cv.selection.librarian_num_docs();
        let total: u64 = sizes.iter().sum();
        if total == 0 {
            return Some(1.0);
        }
        let lost: u64 = failed
            .iter()
            .filter_map(|&lib| sizes.get(lib).copied())
            .sum();
        Some(1.0 - lost as f64 / total as f64)
    }

    /// Evaluates a CN or CV query against an explicit subset of
    /// librarians — the reference for what a degraded merge *should*
    /// produce: [`Receptionist::query_with_coverage`] with librarian `f`
    /// failed must return byte-identical hits to `query_subset` over all
    /// librarians except `f`. (Global weights still come from the full
    /// CV state; only the fan-out is restricted.)
    ///
    /// # Errors
    ///
    /// Returns [`TeraphimError::MissingGlobalState`] for CV without
    /// preprocessing, [`TeraphimError::BadParameters`] for CI (whose
    /// candidate expansion is not subset-definable), and transport
    /// failures otherwise.
    pub fn query_subset(
        &mut self,
        methodology: Methodology,
        query: &str,
        k: usize,
        libs: &[usize],
    ) -> Result<Vec<GlobalHit>, TeraphimError> {
        let query_id = self.next_query_id;
        self.next_query_id += 1;
        let terms = self.analyze_query(query);
        let request = match methodology {
            Methodology::CentralNothing => Message::RankRequest {
                query_id,
                k: k as u32,
                terms,
            },
            Methodology::CentralVocabulary => {
                let cv = self
                    .cv
                    .as_ref()
                    .ok_or(TeraphimError::MissingGlobalState("central vocabulary"))?;
                Message::RankWeightedRequest {
                    query_id,
                    k: k as u32,
                    terms: global_weights(&cv.vocab, &cv.stats, &terms),
                }
            }
            Methodology::CentralIndex => {
                return Err(TeraphimError::BadParameters(
                    "query_subset supports CentralNothing and CentralVocabulary only".into(),
                ))
            }
        };
        let mut requests: Vec<Option<Message>> = vec![None; self.transports.len()];
        for &lib in libs {
            requests[lib] = Some(request.clone());
        }
        self.rank_fanout(query_id, requests, k, ranking_entries)
    }

    /// Builds the per-librarian candidate-scoring requests for a CI
    /// query: ranks groups on the central grouped index, expands the top
    /// `k'` groups into per-librarian candidate lists, and attaches
    /// document-level global weights so librarian scores are globally
    /// comparable. Librarians owning no candidates get `None`.
    fn ci_requests(
        &self,
        query_id: u32,
        terms: &[(String, u32)],
        k: usize,
    ) -> Result<Vec<Option<Message>>, TeraphimError> {
        let ci = self
            .ci
            .as_ref()
            .ok_or(TeraphimError::MissingGlobalState("central index"))?;
        if !ci.params.valid_for(k) {
            return Err(TeraphimError::BadParameters(format!(
                "k' = {} with G = {} cannot produce k = {k} documents",
                ci.params.k_prime, ci.params.group_size
            )));
        }
        self.trace.record(EventKind::PhaseStart {
            phase: Phase::GroupRank,
        });
        // Rank groups on the central grouped index, treating groups as
        // documents (group-level statistics for the group ranking).
        let group_index = ci.grouped.group_index();
        let group_terms: Vec<(teraphim_index::TermId, u32)> = terms
            .iter()
            .filter_map(|(t, f)| ci.grouped.vocab().term_id(t).map(|id| (id, *f)))
            .collect();
        let group_weights = ranking::local_weights(group_index, &group_terms);
        let top_groups = ranking::rank(group_index, &group_weights, ci.params.k_prime);
        let group_ids: Vec<u32> = top_groups.iter().map(|g| g.doc).collect();

        // Expand groups into per-librarian candidate lists.
        let expanded = ci.grouped.expand_groups(&group_ids);
        if self.trace.is_enabled() {
            let mut candidates: Vec<LibCandidates> = expanded
                .iter()
                .map(|(part, docs)| LibCandidates {
                    librarian: *part,
                    docs: docs.clone(),
                })
                .collect();
            candidates.sort_by_key(|c| c.librarian);
            self.trace.record(EventKind::Expansion {
                k_prime: ci.params.k_prime as u32,
                group_size: ci.params.group_size,
                groups: group_ids.clone(),
                candidates,
            });
        }

        let doc_weights = global_weights_from_grouped(&ci.grouped, terms);

        let mut requests: Vec<Option<Message>> = Vec::new();
        requests.resize_with(self.transports.len(), || None);
        for (part, candidates) in expanded {
            requests[part as usize] = Some(Message::ScoreCandidatesRequest {
                query_id,
                terms: doc_weights.clone(),
                candidates,
            });
        }
        self.trace.record(EventKind::PhaseEnd {
            phase: Phase::GroupRank,
        });
        Ok(requests)
    }

    fn query_ci(
        &mut self,
        query_id: u32,
        terms: &[(String, u32)],
        k: usize,
    ) -> Result<Vec<GlobalHit>, TeraphimError> {
        let requests = self.ci_requests(query_id, terms, k)?;
        self.rank_fanout(query_id, requests, k, scoring_entries)
    }

    /// Ranks librarians by GlOSS-style goodness for a query (requires CV
    /// state). Best first.
    ///
    /// # Errors
    ///
    /// Returns [`TeraphimError::MissingGlobalState`] without CV state.
    pub fn rank_librarians(&self, query: &str) -> Result<Vec<(usize, f64)>, TeraphimError> {
        let cv = self
            .cv
            .as_ref()
            .ok_or(TeraphimError::MissingGlobalState("central vocabulary"))?;
        let terms = self.analyze_query(query);
        Ok(cv.selection.rank_librarians(&cv.vocab, &cv.stats, &terms))
    }

    /// Central Vocabulary evaluation restricted to the `n_libs` best
    /// librarians for this query — the collection-selection refinement
    /// the paper's conclusion calls for ("net savings are possible only
    /// if ... many of the subcollections can be neglected").
    ///
    /// Returns the merged ranking plus the librarian indices queried.
    ///
    /// # Errors
    ///
    /// Returns [`TeraphimError::MissingGlobalState`] without CV state,
    /// and transport failures otherwise.
    pub fn query_selected(
        &mut self,
        query: &str,
        k: usize,
        n_libs: usize,
    ) -> Result<(Vec<GlobalHit>, Vec<usize>), TeraphimError> {
        let query_id = self.next_query_id;
        self.next_query_id += 1;
        let terms = self.analyze_query(query);
        let (weighted, selected) = {
            let cv = self
                .cv
                .as_ref()
                .ok_or(TeraphimError::MissingGlobalState("central vocabulary"))?;
            (
                global_weights(&cv.vocab, &cv.stats, &terms),
                cv.selection.select(&cv.vocab, &cv.stats, &terms, n_libs),
            )
        };
        let request = Message::RankWeightedRequest {
            query_id,
            k: k as u32,
            terms: weighted,
        };
        let mut requests: Vec<Option<Message>> = vec![None; self.transports.len()];
        for &lib in &selected {
            requests[lib] = Some(request.clone());
        }
        let hits = self.rank_fanout(query_id, requests, k, ranking_entries)?;
        Ok((hits, selected))
    }

    /// Evaluates a Boolean query at every librarian; "the overall result
    /// set is simply the union of the individual result sets" (§1), so
    /// no global information or score merging is needed.
    ///
    /// Returns `(librarian, doc)` pairs in librarian-then-document
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and per-librarian syntax errors.
    pub fn boolean_query(&mut self, expr: &str) -> Result<Vec<(usize, DocId)>, TeraphimError> {
        let query_id = self.next_query_id;
        self.next_query_id += 1;
        self.trace.record(EventKind::Begin {
            op: "boolean",
            methodology: None,
            query_id,
            k: 0,
        });
        self.trace.record(EventKind::PhaseStart {
            phase: Phase::Boolean,
        });
        let result = self.boolean_inner(query_id, expr);
        self.trace.record(EventKind::PhaseEnd {
            phase: Phase::Boolean,
        });
        self.trace.record(EventKind::End);
        result
    }

    fn boolean_inner(
        &mut self,
        query_id: u32,
        expr: &str,
    ) -> Result<Vec<(usize, DocId)>, TeraphimError> {
        let request = Message::BooleanRequest {
            query_id,
            expr: expr.to_owned(),
        };
        // Collect into per-librarian slots so the documented
        // librarian-then-document order holds under concurrent arrival.
        let mut per_lib: Vec<Vec<DocId>> = vec![Vec::new(); self.transports.len()];
        let requests = vec![Some(request); self.transports.len()];
        dispatch_traced::<_, TeraphimError>(
            self.dispatch,
            &mut self.transports,
            requests,
            &self.trace,
            &mut |lib, response| match response {
                Message::BooleanResponse {
                    query_id: qid,
                    docs,
                } if qid == query_id => {
                    per_lib[lib] = docs;
                    Ok(())
                }
                other => Err(unexpected("BooleanRequest", &other)),
            },
        )?;
        let mut result = Vec::new();
        for (lib, docs) in per_lib.into_iter().enumerate() {
            result.extend(docs.into_iter().map(|d| (lib, d)));
        }
        Ok(result)
    }

    /// Fetches the documents of `hits` (step 4). Documents travel
    /// compressed unless `plain` is set.
    ///
    /// Results preserve the order of `hits`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn fetch(
        &mut self,
        hits: &[GlobalHit],
        plain: bool,
    ) -> Result<Vec<FetchedDoc>, TeraphimError> {
        self.observe_routing();
        let query_id = self.next_query_id;
        self.next_query_id += 1;
        self.trace.record(EventKind::Begin {
            op: "fetch",
            methodology: None,
            query_id,
            k: hits.len() as u32,
        });
        self.trace.record(EventKind::PhaseStart {
            phase: Phase::DocFetch,
        });
        let result = self.fetch_inner(query_id, hits, plain);
        self.trace.record(EventKind::PhaseEnd {
            phase: Phase::DocFetch,
        });
        self.trace.record(EventKind::End);
        result
    }

    fn fetch_inner(
        &mut self,
        query_id: u32,
        hits: &[GlobalHit],
        plain: bool,
    ) -> Result<Vec<FetchedDoc>, TeraphimError> {
        // Probe the answer-document cache once per distinct hit, in
        // hit order (determinism: cache recency and eviction follow
        // the order the caller asked for the documents).
        let mut cached: HashMap<(usize, u32), (String, Vec<u8>)> = HashMap::new();
        if let Some(cache) = self.cache.as_mut() {
            let mut probed: HashSet<(usize, u32)> = HashSet::new();
            for hit in hits {
                if !probed.insert((hit.librarian, hit.doc)) {
                    continue;
                }
                let lookup = cache.lookup_doc(&(hit.librarian, hit.doc, plain));
                note_lookup(&self.trace, "docs", &lookup);
                if let Lookup::Hit(body) = lookup {
                    cached.insert((hit.librarian, hit.doc), body);
                }
            }
        }
        // Group the cache misses per librarian, preserving hit order
        // positions.
        let mut per_lib: HashMap<usize, Vec<u32>> = HashMap::new();
        for hit in hits {
            if !cached.contains_key(&(hit.librarian, hit.doc)) {
                per_lib.entry(hit.librarian).or_default().push(hit.doc);
            }
        }
        let mut requests: Vec<Option<Message>> = vec![None; self.transports.len()];
        for (lib, docs) in per_lib {
            requests[lib] = Some(Message::FetchDocsRequest {
                query_id,
                docs,
                plain,
            });
        }
        // Responses land in a map keyed by (librarian, doc), so arrival
        // order is irrelevant; output order is re-imposed from `hits`.
        let mut fetched: HashMap<(usize, u32), (String, Vec<u8>)> = HashMap::new();
        dispatch_traced::<_, TeraphimError>(
            self.dispatch,
            &mut self.transports,
            requests,
            &self.trace,
            &mut |lib, response| match response {
                Message::DocsResponse { docs, .. } => {
                    for (doc, docno, bytes) in docs {
                        fetched.insert((lib, doc), (docno, bytes));
                    }
                    Ok(())
                }
                other => Err(unexpected("FetchDocsRequest", &other)),
            },
        )?;
        if let Some(cache) = self.cache.as_mut() {
            // Insert newly fetched bodies in hit order, again for
            // deterministic recency.
            let mut inserted: HashSet<(usize, u32)> = HashSet::new();
            for hit in hits {
                if !inserted.insert((hit.librarian, hit.doc)) {
                    continue;
                }
                if let Some((docno, bytes)) = fetched.get(&(hit.librarian, hit.doc)) {
                    let evicted = cache.insert_doc(
                        (hit.librarian, hit.doc, plain),
                        docno.clone(),
                        bytes.clone(),
                    );
                    note_evicted(&self.trace, "docs", evicted);
                }
            }
        }
        fetched.extend(cached);
        hits.iter()
            .map(|hit| {
                let (docno, bytes) = fetched
                    .get(&(hit.librarian, hit.doc))
                    .cloned()
                    .ok_or(TeraphimError::MissingGlobalState("document not returned"))?;
                let body_bytes = bytes.len();
                let text = if plain {
                    Some(String::from_utf8(bytes).map_err(|_| {
                        TeraphimError::Net(teraphim_net::NetError::Corrupt("document not UTF-8"))
                    })?)
                } else {
                    None
                };
                Ok(FetchedDoc {
                    librarian: hit.librarian,
                    doc: hit.doc,
                    docno,
                    text,
                    body_bytes,
                })
            })
            .collect()
    }

    /// Resolves the external identifiers of `hits` via header requests
    /// (what an answer screen of 20 title lines needs, and what
    /// effectiveness evaluation uses).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn headers(&mut self, hits: &[GlobalHit]) -> Result<Vec<String>, TeraphimError> {
        let query_id = self.next_query_id;
        self.next_query_id += 1;
        self.trace.record(EventKind::Begin {
            op: "headers",
            methodology: None,
            query_id,
            k: hits.len() as u32,
        });
        self.trace.record(EventKind::PhaseStart {
            phase: Phase::HeaderFetch,
        });
        let result = self.headers_inner(query_id, hits);
        self.trace.record(EventKind::PhaseEnd {
            phase: Phase::HeaderFetch,
        });
        self.trace.record(EventKind::End);
        result
    }

    fn headers_inner(
        &mut self,
        query_id: u32,
        hits: &[GlobalHit],
    ) -> Result<Vec<String>, TeraphimError> {
        let mut per_lib: HashMap<usize, Vec<u32>> = HashMap::new();
        for hit in hits {
            per_lib.entry(hit.librarian).or_default().push(hit.doc);
        }
        let mut requests: Vec<Option<Message>> = vec![None; self.transports.len()];
        for (lib, docs) in per_lib {
            requests[lib] = Some(Message::FetchHeadersRequest { query_id, docs });
        }
        let mut resolved: HashMap<(usize, u32), String> = HashMap::new();
        dispatch_traced::<_, TeraphimError>(
            self.dispatch,
            &mut self.transports,
            requests,
            &self.trace,
            &mut |lib, response| match response {
                Message::HeadersResponse { headers, .. } => {
                    for (doc, docno) in headers {
                        resolved.insert((lib, doc), docno);
                    }
                    Ok(())
                }
                other => Err(unexpected("FetchHeadersRequest", &other)),
            },
        )?;
        hits.iter()
            .map(|hit| {
                resolved
                    .get(&(hit.librarian, hit.doc))
                    .cloned()
                    .ok_or(TeraphimError::MissingGlobalState("header not returned"))
            })
            .collect()
    }

    /// Convenience for evaluation: query then resolve docnos.
    ///
    /// # Errors
    ///
    /// Propagates failures from [`Receptionist::query`] and
    /// [`Receptionist::headers`].
    pub fn ranked_docnos(
        &mut self,
        methodology: Methodology,
        query: &str,
        k: usize,
    ) -> Result<Vec<String>, TeraphimError> {
        let hits = self.query(methodology, query, k)?;
        self.headers(&hits)
    }
}

/// Computes global query weights from a merged vocabulary/statistics
/// pair, dropping terms with global `f_t == 0`.
pub(crate) fn global_weights(
    vocab: &Vocabulary,
    stats: &CollectionStats,
    terms: &[(String, u32)],
) -> Vec<(String, f64)> {
    terms
        .iter()
        .filter_map(|(term, f_qt)| {
            let id = vocab.term_id(term)?;
            let w = similarity::w_qt(u64::from(*f_qt), stats.num_docs(), stats.doc_freq(id));
            (w > 0.0).then(|| (term.clone(), w))
        })
        .collect()
}

/// Same, from a grouped index's document-level statistics.
pub(crate) fn global_weights_from_grouped(
    grouped: &GroupedIndex,
    terms: &[(String, u32)],
) -> Vec<(String, f64)> {
    terms
        .iter()
        .filter_map(|(term, f_qt)| {
            let id = grouped.vocab().term_id(term)?;
            let w = similarity::w_qt(
                u64::from(*f_qt),
                grouped.total_docs(),
                grouped.doc_stats().doc_freq(id),
            );
            (w > 0.0).then(|| (term.clone(), w))
        })
        .collect()
}

/// Pulls `(scored doc, librarian)` entries out of one ranking reply —
/// the per-methodology hook [`Receptionist::rank_fanout_partial`] folds
/// over.
type ExtractEntries = fn(Message, u32, usize) -> Result<Vec<(ScoredDoc, usize)>, NetError>;

/// Extracts ranking entries from a response, tagging each with the
/// librarian. A wrong variant or a mismatched query id — a garbled or
/// misdirected reply — is a *permanent* failure of that librarian for
/// this query: the data cannot be trusted, so it must not be merged.
/// Records a `scored` event for CI candidate-scoring replies: how many
/// candidates the librarian scored and how many postings it decoded doing
/// so. Other reply kinds record nothing.
/// Records the trace event for a cache probe's outcome.
fn note_lookup<V>(trace: &TraceSink, cache: &'static str, outcome: &Lookup<V>) {
    if trace.is_enabled() {
        trace.record(match outcome {
            Lookup::Hit(_) => EventKind::CacheHit { cache },
            Lookup::Miss => EventKind::CacheMiss {
                cache,
                stale: false,
            },
            Lookup::Stale => EventKind::CacheMiss { cache, stale: true },
        });
    }
}

/// Records the trace event for entries evicted by a cache insert.
fn note_evicted(trace: &TraceSink, cache: &'static str, evicted: u64) {
    if evicted > 0 && trace.is_enabled() {
        trace.record(EventKind::CacheEvict {
            cache,
            entries: evicted as u32,
        });
    }
}

fn record_scored(trace: &TraceSink, lib: usize, response: &Message) {
    if trace.is_enabled() {
        if let Message::ScoreResponse {
            entries,
            postings_decoded,
            ..
        } = response
        {
            trace.record(EventKind::Scored {
                librarian: lib as u32,
                candidates: entries.len() as u32,
                postings: *postings_decoded,
            });
        }
    }
}

fn ranking_entries(
    response: Message,
    query_id: u32,
    lib: usize,
) -> Result<Vec<(ScoredDoc, usize)>, NetError> {
    match response {
        Message::RankResponse {
            query_id: qid,
            entries,
            ..
        } if qid == query_id => Ok(entries
            .into_iter()
            .map(|(doc, score)| (ScoredDoc { doc, score }, lib))
            .collect()),
        other => Err(NetError::Remote(format!(
            "unexpected ranking response: {other:?}"
        ))),
    }
}

/// [`ranking_entries`] for the CI candidate-scoring exchange.
fn scoring_entries(
    response: Message,
    query_id: u32,
    lib: usize,
) -> Result<Vec<(ScoredDoc, usize)>, NetError> {
    match response {
        Message::ScoreResponse {
            query_id: qid,
            entries,
            ..
        } if qid == query_id => Ok(entries
            .into_iter()
            .map(|(doc, score)| (ScoredDoc { doc, score }, lib))
            .collect()),
        other => Err(NetError::Remote(format!(
            "unexpected response to ScoreCandidatesRequest: {other:?}"
        ))),
    }
}

/// Folds one librarian's ranking into the running merged top `k`,
/// "accepting at face value all supplied similarity values". Because
/// `merge_rankings` imposes a total order, folding lists one at a time —
/// in whatever order they arrive — produces the same top `k` as merging
/// them all at once.
fn fold_ranking(merged: &mut Vec<(ScoredDoc, usize)>, entries: Vec<(ScoredDoc, usize)>, k: usize) {
    let prev = std::mem::take(merged);
    *merged = ranking::merge_rankings(&[prev, entries], k);
}

/// Converts a merged `(score, librarian)` list into public hits.
fn into_global_hits(merged: Vec<(ScoredDoc, usize)>) -> Vec<GlobalHit> {
    merged
        .into_iter()
        .map(|(scored, lib)| GlobalHit {
            librarian: lib,
            doc: scored.doc,
            score: scored.score,
        })
        .collect()
}

/// A response of the wrong variant for the request that was sent.
fn unexpected(request_kind: &str, other: &Message) -> TeraphimError {
    TeraphimError::Net(teraphim_net::NetError::Remote(format!(
        "unexpected response to {request_kind}: {other:?}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::librarian::Librarian;
    use teraphim_net::InProcTransport;

    fn receptionist() -> Receptionist<InProcTransport<Librarian>> {
        let libs = vec![
            Librarian::from_texts(
                "A",
                &[
                    ("A-1", "the cat sat on the mat"),
                    ("A-2", "cats and dogs in the rain"),
                    ("A-3", "compression of inverted files and indexes"),
                ],
            ),
            Librarian::from_texts(
                "B",
                &[
                    ("B-1", "dogs chase cats up trees"),
                    ("B-2", "distributed information retrieval systems"),
                    ("B-3", "the dog slept"),
                ],
            ),
        ];
        let transports = libs.into_iter().map(InProcTransport::new).collect();
        Receptionist::new(transports, Analyzer::default())
    }

    #[test]
    fn cn_queries_need_no_setup() {
        let mut r = receptionist();
        let hits = r.query(Methodology::CentralNothing, "cat dog", 4).unwrap();
        assert!(!hits.is_empty());
        assert!(hits.len() <= 4);
        // Scores non-increasing.
        for pair in hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn cv_requires_enable() {
        let mut r = receptionist();
        let err = r
            .query(Methodology::CentralVocabulary, "cat", 3)
            .unwrap_err();
        assert!(matches!(err, TeraphimError::MissingGlobalState(_)));
        r.enable_cv().unwrap();
        let hits = r.query(Methodology::CentralVocabulary, "cat", 3).unwrap();
        assert!(!hits.is_empty());
        assert!(r.cv_vocabulary_bytes().unwrap() > 0);
    }

    #[test]
    fn ci_requires_enable_and_valid_params() {
        let mut r = receptionist();
        let err = r.query(Methodology::CentralIndex, "cat", 3).unwrap_err();
        assert!(matches!(err, TeraphimError::MissingGlobalState(_)));
        r.enable_ci(CiParams {
            group_size: 2,
            k_prime: 1,
        })
        .unwrap();
        // k=3 > k'*G=2 is invalid.
        let err = r.query(Methodology::CentralIndex, "cat", 3).unwrap_err();
        assert!(matches!(err, TeraphimError::BadParameters(_)));
        let hits = r.query(Methodology::CentralIndex, "cat", 2).unwrap();
        assert!(hits.len() <= 2);
    }

    #[test]
    fn ci_with_ample_k_prime_finds_matches() {
        let mut r = receptionist();
        r.enable_ci(CiParams {
            group_size: 2,
            k_prime: 10,
        })
        .unwrap();
        let hits = r.query(Methodology::CentralIndex, "cat", 6).unwrap();
        assert!(!hits.is_empty());
        assert!(hits[0].score > 0.0);
        assert!(r.ci_index_bytes().unwrap() > 0);
    }

    #[test]
    fn headers_resolve_docnos() {
        let mut r = receptionist();
        let hits = r
            .query(Methodology::CentralNothing, "compression", 2)
            .unwrap();
        let docnos = r.headers(&hits).unwrap();
        assert_eq!(docnos.len(), hits.len());
        assert_eq!(docnos[0], "A-3");
    }

    #[test]
    fn fetch_plain_returns_text() {
        let mut r = receptionist();
        let hits = r
            .query(Methodology::CentralNothing, "retrieval", 1)
            .unwrap();
        let docs = r.fetch(&hits, true).unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].docno, "B-2");
        assert_eq!(
            docs[0].text.as_deref(),
            Some("distributed information retrieval systems")
        );
    }

    #[test]
    fn fetch_compressed_is_smaller() {
        let mut r = receptionist();
        let hits = r.query(Methodology::CentralNothing, "cat mat", 1).unwrap();
        let plain = r.fetch(&hits, true).unwrap();
        let compressed = r.fetch(&hits, false).unwrap();
        assert!(compressed[0].text.is_none());
        assert!(compressed[0].body_bytes < plain[0].body_bytes);
    }

    #[test]
    fn traffic_accumulates() {
        let mut r = receptionist();
        assert_eq!(r.traffic().round_trips, 0);
        r.query(Methodology::CentralNothing, "cat", 2).unwrap();
        // One round trip per librarian.
        assert_eq!(r.traffic().round_trips, 2);
        assert!(r.traffic().total_bytes() > 0);
    }

    #[test]
    fn unknown_query_terms_give_empty_ranking() {
        let mut r = receptionist();
        let hits = r.query(Methodology::CentralNothing, "zyzzyva", 5).unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn selection_requires_cv_and_restricts_librarians() {
        let mut r = receptionist();
        assert!(r.rank_librarians("compression").is_err());
        r.enable_cv().unwrap();
        // "compression inverted" lives only at librarian 0 (A-3).
        let ranked = r.rank_librarians("compression inverted").unwrap();
        assert_eq!(ranked[0].0, 0);
        assert!(ranked[0].1 > ranked[1].1);

        let (hits, used) = r.query_selected("compression inverted", 5, 1).unwrap();
        assert_eq!(used, vec![0]);
        assert!(hits.iter().all(|h| h.librarian == 0));
        // Selecting all librarians reproduces full CV.
        let (all_hits, used) = r.query_selected("compression inverted", 5, 2).unwrap();
        let full = r
            .query(Methodology::CentralVocabulary, "compression inverted", 5)
            .unwrap();
        assert_eq!(used.len(), 2);
        assert_eq!(all_hits.len(), full.len());
        for (a, b) in all_hits.iter().zip(&full) {
            assert_eq!((a.librarian, a.doc), (b.librarian, b.doc));
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }

    #[test]
    fn boolean_queries_union_across_librarians() {
        let mut r = receptionist();
        let hits = r.boolean_query("cat AND dog").unwrap();
        // A-2 ("cats and dogs...") and B-1 ("dogs chase cats...").
        assert_eq!(hits, vec![(0, 1), (1, 0)]);
        let none = r.boolean_query("cat AND compress AND retriev").unwrap();
        assert!(none.is_empty());
        assert!(r.boolean_query("cat AND (dog").is_err());
    }

    #[test]
    fn ranked_docnos_convenience() {
        let mut r = receptionist();
        r.enable_cv().unwrap();
        let docnos = r
            .ranked_docnos(Methodology::CentralVocabulary, "dog", 3)
            .unwrap();
        assert!(!docnos.is_empty());
        assert!(docnos
            .iter()
            .all(|d| d.starts_with('A') || d.starts_with('B')));
    }

    fn librarians() -> Vec<Librarian> {
        vec![
            Librarian::from_texts(
                "A",
                &[
                    ("A-1", "the cat sat on the mat"),
                    ("A-2", "cats and dogs in the rain"),
                    ("A-3", "compression of inverted files and indexes"),
                ],
            ),
            Librarian::from_texts(
                "B",
                &[
                    ("B-1", "dogs chase cats up trees"),
                    ("B-2", "distributed information retrieval systems"),
                    ("B-3", "the dog slept"),
                ],
            ),
        ]
    }

    /// The two-librarian fixture with a fault plan wrapped around each
    /// librarian's transport.
    fn faulty_receptionist(
        plans: Vec<teraphim_net::FaultPlan>,
    ) -> Receptionist<teraphim_net::FaultyTransport<InProcTransport<Librarian>>> {
        let transports = librarians()
            .into_iter()
            .zip(plans)
            .map(|(lib, plan)| teraphim_net::FaultyTransport::new(InProcTransport::new(lib), plan))
            .collect();
        Receptionist::new(transports, Analyzer::default())
    }

    #[test]
    fn coverage_is_complete_when_everyone_answers() {
        let mut r = receptionist();
        r.enable_cv().unwrap();
        let strict = r
            .query(Methodology::CentralVocabulary, "cat dog", 4)
            .unwrap();
        let answer = r
            .query_with_coverage(Methodology::CentralVocabulary, "cat dog", 4)
            .unwrap();
        assert!(answer.coverage.is_complete());
        assert_eq!(answer.coverage.answered, vec![0, 1]);
        assert!(answer.coverage.failed.is_empty());
        assert_eq!(answer.coverage.docs_fraction, Some(1.0));
        assert_eq!(answer.hits.len(), strict.len());
        for (a, b) in answer.hits.iter().zip(&strict) {
            assert_eq!((a.librarian, a.doc), (b.librarian, b.doc));
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn dead_librarian_degrades_cn_and_cv_instead_of_erroring() {
        use teraphim_net::FaultPlan;
        for methodology in [Methodology::CentralNothing, Methodology::CentralVocabulary] {
            // Librarian 0 dies after CV setup traffic (request 0 is the
            // StatsRequest).
            let mut r = faulty_receptionist(vec![FaultPlan::new().fail_from(1), FaultPlan::new()]);
            r.enable_cv().unwrap();
            // Strict query fails...
            assert!(r.query(methodology, "cat dog", 4).is_err());
            // ...degraded query answers from librarian 1 alone.
            let answer = r.query_with_coverage(methodology, "cat dog", 4).unwrap();
            assert!(answer.coverage.is_degraded());
            assert_eq!(answer.coverage.answered, vec![1]);
            assert_eq!(answer.coverage.failed, vec![0]);
            assert_eq!(answer.coverage.docs_fraction, Some(0.5));
            assert!(!answer.hits.is_empty());
            assert!(answer.hits.iter().all(|h| h.librarian == 1));
        }
    }

    #[test]
    fn degraded_merge_equals_subset_query() {
        use teraphim_net::FaultPlan;
        let mut degraded =
            faulty_receptionist(vec![FaultPlan::new().fail_from(1), FaultPlan::new()]);
        degraded.enable_cv().unwrap();
        let answer = degraded
            .query_with_coverage(Methodology::CentralVocabulary, "cat dog compression", 6)
            .unwrap();

        let mut oracle = receptionist();
        oracle.enable_cv().unwrap();
        let subset = oracle
            .query_subset(
                Methodology::CentralVocabulary,
                "cat dog compression",
                6,
                &[1],
            )
            .unwrap();
        assert_eq!(answer.hits.len(), subset.len());
        for (a, b) in answer.hits.iter().zip(&subset) {
            assert_eq!((a.librarian, a.doc), (b.librarian, b.doc));
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn all_librarians_dead_is_insufficient_coverage() {
        use teraphim_net::FaultPlan;
        let mut r = faulty_receptionist(vec![
            FaultPlan::new().fail_from(0),
            FaultPlan::new().fail_from(0),
        ]);
        let err = r
            .query_with_coverage(Methodology::CentralNothing, "cat", 3)
            .unwrap_err();
        assert!(matches!(
            err,
            TeraphimError::InsufficientCoverage {
                answered: 0,
                failed: 2
            }
        ));
    }

    #[test]
    fn degrade_policy_can_require_full_coverage() {
        use teraphim_net::FaultPlan;
        let mut r = faulty_receptionist(vec![FaultPlan::new().fail_from(0), FaultPlan::new()]);
        r.set_degrade_policy(DegradePolicy { min_answered: 2 });
        assert_eq!(r.degrade_policy().min_answered, 2);
        let err = r
            .query_with_coverage(Methodology::CentralNothing, "cat", 3)
            .unwrap_err();
        assert!(matches!(
            err,
            TeraphimError::InsufficientCoverage {
                answered: 1,
                failed: 1
            }
        ));
    }

    #[test]
    fn ci_degrades_to_reachable_candidate_owners() {
        use teraphim_net::FaultPlan;
        // Librarian 0 dies after the IndexRequest (its request 0).
        let mut r = faulty_receptionist(vec![FaultPlan::new().fail_from(1), FaultPlan::new()]);
        r.enable_ci(CiParams {
            group_size: 2,
            k_prime: 10,
        })
        .unwrap();
        let answer = r
            .query_with_coverage(Methodology::CentralIndex, "cat dog", 6)
            .unwrap();
        assert!(answer.coverage.is_degraded());
        assert_eq!(answer.coverage.failed, vec![0]);
        assert!(answer.hits.iter().all(|h| h.librarian == 1));
        // No CV state: the docs fraction is unknown.
        assert_eq!(answer.coverage.docs_fraction, None);
    }

    #[test]
    fn garbled_response_counts_as_failed_librarian() {
        use teraphim_net::FaultPlan;
        let mut r = faulty_receptionist(vec![FaultPlan::new().garble_nth(0), FaultPlan::new()]);
        let answer = r
            .query_with_coverage(Methodology::CentralNothing, "cat dog", 4)
            .unwrap();
        assert_eq!(answer.coverage.failed, vec![0]);
        assert!(answer.hits.iter().all(|h| h.librarian == 1));
    }

    /// Runs a full tour of the API on one receptionist and returns every
    /// observable output, for cross-mode comparison.
    #[allow(clippy::type_complexity)]
    fn tour(
        r: &mut Receptionist<InProcTransport<Librarian>>,
    ) -> (
        Vec<Vec<GlobalHit>>,
        Vec<(usize, DocId)>,
        Vec<String>,
        Vec<FetchedDoc>,
    ) {
        r.enable_cv().unwrap();
        r.enable_ci(CiParams {
            group_size: 2,
            k_prime: 10,
        })
        .unwrap();
        let mut rankings = Vec::new();
        for methodology in [
            Methodology::CentralNothing,
            Methodology::CentralVocabulary,
            Methodology::CentralIndex,
        ] {
            rankings.push(r.query(methodology, "cat dog compression", 6).unwrap());
        }
        rankings.push(r.query_selected("compression inverted", 5, 1).unwrap().0);
        let boolean = r.boolean_query("cat AND dog").unwrap();
        let cn = rankings[0].clone();
        let headers = r.headers(&cn).unwrap();
        let fetched = r.fetch(&cn, true).unwrap();
        (rankings, boolean, headers, fetched)
    }

    #[test]
    fn concurrent_dispatch_matches_sequential_everywhere() {
        let mut seq = receptionist();
        seq.set_dispatch_mode(DispatchMode::Sequential);
        let mut conc = receptionist();
        assert_eq!(conc.dispatch_mode(), DispatchMode::Concurrent);

        let (rank_s, bool_s, head_s, fetch_s) = tour(&mut seq);
        let (rank_c, bool_c, head_c, fetch_c) = tour(&mut conc);

        assert_eq!(rank_s.len(), rank_c.len());
        for (s, c) in rank_s.iter().zip(&rank_c) {
            assert_eq!(s.len(), c.len());
            for (a, b) in s.iter().zip(c) {
                assert_eq!((a.librarian, a.doc), (b.librarian, b.doc));
                // Identical arithmetic on both paths: bitwise equality.
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
        assert_eq!(bool_s, bool_c);
        assert_eq!(head_s, head_c);
        assert_eq!(fetch_s, fetch_c);
    }

    #[test]
    fn traffic_totals_match_across_dispatch_modes() {
        let mut seq = receptionist();
        seq.set_dispatch_mode(DispatchMode::Sequential);
        let mut conc = receptionist();
        tour(&mut seq);
        tour(&mut conc);
        assert_eq!(seq.traffic(), conc.traffic());
        assert!(conc.traffic().round_trips > 0);
    }

    #[test]
    fn shared_librarians_serve_concurrent_receptionists() {
        // One set of librarians, three receptionists hammering them from
        // separate threads with concurrent fan-out — every receptionist
        // must see the reference ranking, and per-receptionist traffic
        // must equal a lone sequential run's.
        let base = receptionist();
        let mut reference = receptionist();
        reference.set_dispatch_mode(DispatchMode::Sequential);
        let expected = reference
            .query(Methodology::CentralNothing, "cat dog", 4)
            .unwrap();
        let expected_traffic = reference.traffic();

        let services: Vec<_> = (0..base.num_librarians())
            .map(|lib| base.transports[lib].service())
            .collect();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let services = services.clone();
                let expected = &expected;
                s.spawn(move || {
                    let transports = services.into_iter().map(InProcTransport::from_shared);
                    let mut r = Receptionist::new(transports.collect(), Analyzer::default());
                    let hits = r.query(Methodology::CentralNothing, "cat dog", 4).unwrap();
                    assert_eq!(hits.len(), expected.len());
                    for (a, b) in hits.iter().zip(expected.iter()) {
                        assert_eq!((a.librarian, a.doc), (b.librarian, b.doc));
                        assert_eq!(a.score.to_bits(), b.score.to_bits());
                    }
                    assert_eq!(r.traffic(), expected_traffic);
                });
            }
        });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::librarian::Librarian;
    use proptest::prelude::*;
    use teraphim_net::InProcTransport;

    fn build(
        docs: &[Vec<String>],
        num_libs: usize,
        mode: DispatchMode,
    ) -> Receptionist<InProcTransport<Librarian>> {
        // Round-robin the documents over the librarians.
        let mut parts: Vec<Vec<(String, String)>> = vec![Vec::new(); num_libs];
        for (i, words) in docs.iter().enumerate() {
            parts[i % num_libs].push((format!("D-{i}"), words.join(" ")));
        }
        let transports = parts
            .into_iter()
            .enumerate()
            .map(|(lib, part)| {
                let pairs: Vec<(&str, &str)> = part
                    .iter()
                    .map(|(docno, text)| (docno.as_str(), text.as_str()))
                    .collect();
                InProcTransport::new(Librarian::from_texts(&format!("L{lib}"), &pairs))
            })
            .collect();
        let mut r = Receptionist::new(transports, Analyzer::default());
        r.set_dispatch_mode(mode);
        r
    }

    proptest! {
        /// The tentpole's correctness property: for any corpus split and
        /// any query, the concurrent CV merge is byte-identical to the
        /// sequential one.
        #[test]
        fn concurrent_cv_merge_is_byte_identical_to_sequential(
            docs in proptest::collection::vec(
                proptest::collection::vec("[a-f]{2,8}", 1..8),
                2..24,
            ),
            num_libs in 1usize..5,
            query_words in proptest::collection::vec("[a-f]{2,8}", 1..6),
            k in 1usize..12,
        ) {
            let query = query_words.join(" ");
            let mut seq = build(&docs, num_libs, DispatchMode::Sequential);
            let mut conc = build(&docs, num_libs, DispatchMode::Concurrent);
            seq.enable_cv().unwrap();
            conc.enable_cv().unwrap();
            let a = seq.query(Methodology::CentralVocabulary, &query, k).unwrap();
            let b = conc.query(Methodology::CentralVocabulary, &query, k).unwrap();
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!((x.librarian, x.doc), (y.librarian, y.doc));
                prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
            prop_assert_eq!(seq.traffic(), conc.traffic());
        }
    }
}
