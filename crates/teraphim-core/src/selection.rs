//! Collection selection (server ranking).
//!
//! The paper's conclusion: "Net savings are possible only if, given a
//! query, it can be reliably determined that many of the subcollections
//! can be neglected" — and §3 notes "there is evidence that the
//! vocabularies of the subcollections can be used to guide the search"
//! (GlOSS, Yuwono & Lee, Zobel's lexicon inspection).
//!
//! This module implements a GlOSS-style *goodness* score from exactly
//! the state a Central Vocabulary receptionist already holds — the
//! per-librarian document frequencies gathered during CV preprocessing:
//!
//! ```text
//! goodness(L, q) = Σ_{t ∈ q} w_qt(global) · ln(1 + f_t,L · N̄ / N_L)
//! ```
//!
//! where `f_t,L` is term `t`'s document frequency at librarian `L`,
//! `N_L` its collection size and `N̄` the mean collection size (the
//! ratio normalizes away raw collection size, so a big librarian is not
//! selected merely for being big). Librarians are ranked by goodness and
//! only the top `n` receive the query.

use teraphim_index::similarity;
use teraphim_index::{CollectionStats, TermId, Vocabulary};

/// Per-librarian statistics the selector consults: collected once during
/// CV preprocessing.
#[derive(Debug, Clone, Default)]
pub struct SelectionState {
    /// Per-librarian document frequencies, indexed by *global* term id.
    per_librarian: Vec<CollectionStats>,
}

impl SelectionState {
    /// Creates an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one librarian's statistics (aligned to the global
    /// vocabulary) in registration order.
    pub fn push_librarian(&mut self, stats: CollectionStats) {
        self.per_librarian.push(stats);
    }

    /// Number of librarians registered.
    pub fn len(&self) -> usize {
        self.per_librarian.len()
    }

    /// True if no librarians are registered.
    pub fn is_empty(&self) -> bool {
        self.per_librarian.is_empty()
    }

    /// Per-librarian collection sizes in registration order — what the
    /// degradation path needs to report the fraction of the global
    /// collection a partial answer covers.
    pub fn librarian_num_docs(&self) -> Vec<u64> {
        self.per_librarian.iter().map(|s| s.num_docs()).collect()
    }

    /// Ranks librarians by goodness for a query given the global
    /// vocabulary and statistics; best first, ties broken by index.
    ///
    /// Query terms are `(term string, f_qt)` pairs as produced by
    /// `Receptionist::analyze_query`.
    pub fn rank_librarians(
        &self,
        global_vocab: &Vocabulary,
        global_stats: &CollectionStats,
        terms: &[(String, u32)],
    ) -> Vec<(usize, f64)> {
        let mean_docs = if self.per_librarian.is_empty() {
            0.0
        } else {
            self.per_librarian
                .iter()
                .map(|s| s.num_docs() as f64)
                .sum::<f64>()
                / self.per_librarian.len() as f64
        };
        let resolved: Vec<(TermId, f64)> = terms
            .iter()
            .filter_map(|(term, f_qt)| {
                let id = global_vocab.term_id(term)?;
                let w = similarity::w_qt(
                    u64::from(*f_qt),
                    global_stats.num_docs(),
                    global_stats.doc_freq(id),
                );
                (w > 0.0).then_some((id, w))
            })
            .collect();
        let mut ranked: Vec<(usize, f64)> = self
            .per_librarian
            .iter()
            .enumerate()
            .map(|(lib, stats)| {
                let n_l = stats.num_docs() as f64;
                let goodness = if n_l == 0.0 {
                    0.0
                } else {
                    resolved
                        .iter()
                        .map(|&(id, w)| {
                            let f_tl = stats.doc_freq(id) as f64;
                            w * (1.0 + f_tl * mean_docs / n_l).ln()
                        })
                        .sum()
                };
                (lib, goodness)
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked
    }

    /// The `n` best librarians for a query (indices, best first).
    pub fn select(
        &self,
        global_vocab: &Vocabulary,
        global_stats: &CollectionStats,
        terms: &[(String, u32)],
        n: usize,
    ) -> Vec<usize> {
        self.rank_librarians(global_vocab, global_stats, terms)
            .into_iter()
            .take(n)
            .map(|(lib, _)| lib)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a global vocabulary over `terms` and a selection state with
    /// given per-librarian (num_docs, [(term, f_t)]) data.
    fn setup(
        terms: &[&str],
        libs: &[(u64, &[(&str, u64)])],
    ) -> (Vocabulary, CollectionStats, SelectionState) {
        let mut vocab = Vocabulary::new();
        for t in terms {
            vocab.intern(t);
        }
        let mut global = CollectionStats::new();
        let mut state = SelectionState::new();
        let mut total = 0;
        for (num_docs, freqs) in libs {
            total += num_docs;
            let mut stats = CollectionStats::new();
            stats.set_num_docs(*num_docs);
            for (term, f) in *freqs {
                let id = vocab.term_id(term).expect("term interned");
                stats.add_doc_freq(id, *f);
                global.add_doc_freq(id, *f);
            }
            state.push_librarian(stats);
        }
        global.set_num_docs(total);
        (vocab, global, state)
    }

    fn q(terms: &[(&str, u32)]) -> Vec<(String, u32)> {
        terms.iter().map(|(t, f)| ((*t).to_owned(), *f)).collect()
    }

    #[test]
    fn librarian_with_the_term_density_wins() {
        let (vocab, global, state) = setup(
            &["alpha", "beta"],
            &[
                (100, &[("alpha", 40), ("beta", 1)]),
                (100, &[("alpha", 2), ("beta", 30)]),
            ],
        );
        let ranked = state.rank_librarians(&vocab, &global, &q(&[("alpha", 1)]));
        assert_eq!(ranked[0].0, 0);
        assert!(ranked[0].1 > ranked[1].1);
        let ranked = state.rank_librarians(&vocab, &global, &q(&[("beta", 1)]));
        assert_eq!(ranked[0].0, 1);
    }

    #[test]
    fn size_normalization_prefers_density_over_bulk() {
        // Librarian 0 is huge with a trace of the term; librarian 1 is
        // small but dense in it.
        let (vocab, global, state) = setup(
            &["alpha"],
            &[(10_000, &[("alpha", 20)]), (100, &[("alpha", 15)])],
        );
        let ranked = state.rank_librarians(&vocab, &global, &q(&[("alpha", 1)]));
        assert_eq!(ranked[0].0, 1, "dense small collection should win");
    }

    #[test]
    fn unknown_terms_rank_everyone_zero() {
        let (vocab, global, state) = setup(&["alpha"], &[(10, &[("alpha", 5)]), (10, &[])]);
        let ranked = state.rank_librarians(&vocab, &global, &q(&[("missing", 1)]));
        assert!(ranked.iter().all(|&(_, g)| g == 0.0));
        // Deterministic tie-break by index.
        assert_eq!(ranked[0].0, 0);
        assert_eq!(ranked[1].0, 1);
    }

    #[test]
    fn select_takes_the_top_n() {
        let (vocab, global, state) = setup(
            &["alpha"],
            &[
                (100, &[("alpha", 1)]),
                (100, &[("alpha", 50)]),
                (100, &[("alpha", 10)]),
            ],
        );
        let picked = state.select(&vocab, &global, &q(&[("alpha", 1)]), 2);
        assert_eq!(picked, vec![1, 2]);
        let all = state.select(&vocab, &global, &q(&[("alpha", 1)]), 10);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn empty_librarian_scores_zero() {
        let (vocab, global, state) = setup(&["alpha"], &[(0, &[]), (10, &[("alpha", 3)])]);
        let ranked = state.rank_librarians(&vocab, &global, &q(&[("alpha", 2)]));
        assert_eq!(ranked[0].0, 1);
        assert_eq!(ranked[1].1, 0.0);
    }

    #[test]
    fn multi_term_goodness_accumulates() {
        let (vocab, global, state) = setup(
            &["alpha", "beta"],
            &[
                (100, &[("alpha", 20)]),
                (100, &[("beta", 20)]),
                (100, &[("alpha", 12), ("beta", 12)]),
            ],
        );
        // A query about both terms should prefer the librarian covering
        // both.
        let ranked = state.rank_librarians(&vocab, &global, &q(&[("alpha", 1), ("beta", 1)]));
        assert_eq!(ranked[0].0, 2);
    }
}
