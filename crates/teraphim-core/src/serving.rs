//! The concurrent serving front-end: a pool of receptionist sessions
//! with admission control.
//!
//! A single [`Receptionist`] evaluates one query at a time — its query
//! pipeline holds `&mut self` from lodgement to merge. To serve many
//! users concurrently the receptionist is *forked*
//! ([`Receptionist::fork`]): each session carries its own transports
//! and per-query state while the expensive global products (CV
//! vocabulary, CI grouped index) are shared behind `Arc`s. Over
//! multiplexed transports ([`teraphim_net::mux`]) every session's
//! exchanges pipeline onto the same few TCP connections, so hundreds of
//! in-flight queries cost a handful of sockets rather than a socket
//! (or a thread) per query.
//!
//! [`ServePool`] owns the sessions and gates admission: at most
//! `capacity` queries are in flight at once. [`ServePool::session`]
//! blocks until a session is free (closed-loop callers), while
//! [`ServePool::try_session`] returns `None` instead of queueing
//! (open-loop callers shed load — backpressure surfaces to the client
//! rather than growing an unbounded internal queue). A checked-out
//! [`QuerySession`] dereferences to the receptionist and returns itself
//! to the pool on drop, even if the query panicked.
//!
//! # Examples
//!
//! ```
//! use teraphim_core::{Librarian, Methodology, Receptionist, ServePool};
//! use teraphim_net::InProcTransport;
//! use teraphim_text::Analyzer;
//!
//! # fn main() -> Result<(), teraphim_core::TeraphimError> {
//! let make_fleet = || {
//!     vec![
//!         Librarian::from_texts("A", &[("A-1", "cats sleep all day")]),
//!         Librarian::from_texts("B", &[("B-1", "dogs fetch sticks")]),
//!     ]
//!     .into_iter()
//!     .map(InProcTransport::new)
//!     .collect::<Vec<_>>()
//! };
//! let mut prototype = Receptionist::new(make_fleet(), Analyzer::default());
//! prototype.enable_cv()?;
//! // Two concurrent sessions sharing the prototype's CV state.
//! let pool = ServePool::new(vec![prototype.fork(make_fleet()), prototype.fork(make_fleet())]);
//! let mut session = pool.session();
//! let hits = session.query(Methodology::CentralVocabulary, "cats", 5)?;
//! assert_eq!(hits.len(), 1);
//! # Ok(())
//! # }
//! ```

use crate::receptionist::Receptionist;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Condvar, Mutex};
use teraphim_net::Transport;

struct PoolInner<T: Transport> {
    idle: Mutex<Vec<Receptionist<T>>>,
    freed: Condvar,
    capacity: usize,
}

/// A fixed-capacity pool of receptionist sessions with admission
/// control. See the [module docs](self) for the serving model.
///
/// The pool is cheaply cloneable (an `Arc` internally); clones check
/// sessions out of the same shared pool, so one `ServePool` can be
/// handed to many client threads.
pub struct ServePool<T: Transport> {
    inner: Arc<PoolInner<T>>,
}

impl<T: Transport> Clone for ServePool<T> {
    fn clone(&self) -> Self {
        ServePool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Transport> std::fmt::Debug for ServePool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServePool")
            .field("capacity", &self.capacity())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

impl<T: Transport> ServePool<T> {
    /// Builds a pool over pre-forked sessions. Capacity — the maximum
    /// number of concurrently admitted queries — is `sessions.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `sessions` is empty: a zero-capacity pool would
    /// deadlock every caller.
    pub fn new(sessions: Vec<Receptionist<T>>) -> Self {
        assert!(!sessions.is_empty(), "ServePool needs at least one session");
        let capacity = sessions.len();
        ServePool {
            inner: Arc::new(PoolInner {
                idle: Mutex::new(sessions),
                freed: Condvar::new(),
                capacity,
            }),
        }
    }

    /// Checks a session out, blocking until one is free. This is the
    /// closed-loop admission path: when all `capacity` sessions are in
    /// flight the caller waits, which propagates backpressure up to
    /// whatever is driving it.
    pub fn session(&self) -> QuerySession<T> {
        let mut idle = self.inner.idle.lock().unwrap();
        loop {
            if let Some(r) = idle.pop() {
                return QuerySession {
                    pool: Arc::clone(&self.inner),
                    receptionist: Some(r),
                };
            }
            idle = self.inner.freed.wait(idle).unwrap();
        }
    }

    /// Checks a session out only if one is free *right now* — the
    /// open-loop admission path. `None` means the pool is saturated and
    /// the caller should shed the query (count it as rejected, tell the
    /// user to retry) rather than queue it.
    pub fn try_session(&self) -> Option<QuerySession<T>> {
        let mut idle = self.inner.idle.lock().unwrap();
        idle.pop().map(|r| QuerySession {
            pool: Arc::clone(&self.inner),
            receptionist: Some(r),
        })
    }

    /// The maximum number of concurrently admitted queries.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Sessions currently checked out.
    pub fn in_flight(&self) -> usize {
        self.inner.capacity - self.inner.idle.lock().unwrap().len()
    }
}

/// An admitted query session: a receptionist checked out of a
/// [`ServePool`]. Dereferences to [`Receptionist`]; returns itself to
/// the pool (waking one blocked [`ServePool::session`] caller) when
/// dropped.
pub struct QuerySession<T: Transport> {
    pool: Arc<PoolInner<T>>,
    receptionist: Option<Receptionist<T>>,
}

impl<T: Transport> Deref for QuerySession<T> {
    type Target = Receptionist<T>;

    fn deref(&self) -> &Receptionist<T> {
        self.receptionist
            .as_ref()
            .expect("session present until drop")
    }
}

impl<T: Transport> DerefMut for QuerySession<T> {
    fn deref_mut(&mut self) -> &mut Receptionist<T> {
        self.receptionist
            .as_mut()
            .expect("session present until drop")
    }
}

impl<T: Transport> Drop for QuerySession<T> {
    fn drop(&mut self) {
        if let Some(r) = self.receptionist.take() {
            self.pool.idle.lock().unwrap().push(r);
            self.pool.freed.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::librarian::Librarian;
    use crate::methodology::Methodology;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;
    use teraphim_net::InProcTransport;
    use teraphim_text::Analyzer;

    fn fleet() -> Vec<InProcTransport<Librarian>> {
        vec![
            Librarian::from_texts(
                "A",
                &[("A-1", "cats sleep all day"), ("A-2", "big cats roam")],
            ),
            Librarian::from_texts("B", &[("B-1", "dogs fetch sticks")]),
        ]
        .into_iter()
        .map(InProcTransport::new)
        .collect()
    }

    fn pool_of(n: usize) -> ServePool<InProcTransport<Librarian>> {
        let prototype = Receptionist::new(fleet(), Analyzer::default());
        ServePool::new((0..n).map(|_| prototype.fork(fleet())).collect())
    }

    #[test]
    fn forked_sessions_share_cv_state_and_answer_identically() {
        let mut prototype = Receptionist::new(fleet(), Analyzer::default());
        prototype.enable_cv().unwrap();
        let baseline = prototype
            .query(Methodology::CentralVocabulary, "cats", 5)
            .unwrap();

        let mut fork = prototype.fork(fleet());
        assert!(fork.has_cv(), "fork inherits CV state without re-exchange");
        let forked = fork
            .query(Methodology::CentralVocabulary, "cats", 5)
            .unwrap();
        assert_eq!(forked, baseline);
    }

    #[test]
    fn admission_control_bounds_in_flight_sessions() {
        let pool = pool_of(2);
        assert_eq!(pool.capacity(), 2);
        assert_eq!(pool.in_flight(), 0);

        let a = pool.session();
        let b = pool.session();
        assert_eq!(pool.in_flight(), 2);
        assert!(pool.try_session().is_none(), "saturated pool sheds load");

        drop(a);
        assert_eq!(pool.in_flight(), 1);
        let c = pool.try_session();
        assert!(c.is_some(), "freed session is admissible again");
        drop(b);
        drop(c);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn blocked_callers_wake_when_a_session_frees() {
        let pool = pool_of(1);
        let held = pool.session();
        let woke = Arc::new(AtomicUsize::new(0));
        let handle = {
            let pool = pool.clone();
            let woke = Arc::clone(&woke);
            std::thread::spawn(move || {
                let mut s = pool.session(); // blocks until `held` drops
                woke.store(1, Ordering::SeqCst);
                s.query(Methodology::CentralNothing, "dogs", 5)
                    .unwrap()
                    .len()
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            woke.load(Ordering::SeqCst),
            0,
            "caller waits while saturated"
        );
        drop(held);
        assert_eq!(handle.join().unwrap(), 1);
    }

    #[test]
    fn sessions_run_queries_concurrently_and_agree_with_a_lone_receptionist() {
        let mut oracle = Receptionist::new(fleet(), Analyzer::default());
        let expected = oracle
            .query(Methodology::CentralNothing, "cats", 5)
            .unwrap();

        let pool = pool_of(4);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    let mut s = pool.session();
                    s.query(Methodology::CentralNothing, "cats", 5).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
        assert_eq!(pool.in_flight(), 0);
    }
}
