//! The simulation driver: replaying real query plans against the
//! virtual-time resource model.
//!
//! For Tables 3 and 4 the paper measures per-query elapsed time on four
//! hardware configurations. This driver executes the *actual* methodology
//! logic — real rankings, real message encodings, real compressed list
//! and document sizes — and charges every step to a
//! [`teraphim_simnet::SimNetwork`]:
//!
//! * each protocol message costs its true encoded size on the sending
//!   link;
//! * each librarian's index work costs one disk pass over the compressed
//!   inverted lists it touches (seek per list + transfer) plus CPU
//!   proportional to postings actually decoded;
//! * merging costs receptionist CPU proportional to entries merged;
//! * document fetches cost disk + wire transfer of the real compressed
//!   document bytes, per-document for CN/CV (as in the paper's
//!   implementation) and bundled per librarian for CI (whose candidates
//!   arrive as ranges — see DESIGN.md).
//!
//! Because the plan replay uses the same code paths as the real
//! receptionist, an integration test can assert that the simulated and
//! real drivers produce identical rankings.

use crate::methodology::{CiParams, Methodology};
use crate::receptionist::{global_weights, global_weights_from_grouped};
use crate::TeraphimError;
use std::collections::BTreeMap;

use teraphim_engine::ranking::{self, ScoredDoc, WeightedTerm};
use teraphim_engine::{candidates, Collection};
use teraphim_index::stats::merge_stats;
use teraphim_index::{CollectionStats, DocId, GroupedIndex, Vocabulary};
use teraphim_net::{FaultAction, FaultPlan, Message};
use teraphim_obs::{EventKind, LibCandidates, Phase, TraceSink};
use teraphim_simnet::{CostModel, SimNetwork, SimTime, Topology};
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

/// What system the simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// The mono-server baseline: one engine over the whole collection,
    /// no receptionist traffic.
    MonoServer,
    /// A distributed system under the given methodology.
    Distributed(Methodology),
}

impl std::fmt::Display for SimMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimMode::MonoServer => write!(f, "MS"),
            SimMode::Distributed(m) => write!(f, "{m}"),
        }
    }
}

/// The simulated cost of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCost {
    /// Elapsed seconds for steps 1–3 (index processing; Table 3).
    pub index_time: SimTime,
    /// Elapsed seconds for steps 1–4 (including document fetch;
    /// Table 4).
    pub total_time: SimTime,
    /// Total message payload bytes that crossed links.
    pub bytes_on_wire: u64,
    /// Postings decoded across all machines.
    pub postings_decoded: u64,
    /// Total CPU service seconds consumed across all machines — the
    /// paper's resource-use axis, distinct from response time.
    pub cpu_busy: f64,
    /// Total disk service seconds consumed across all disks.
    pub disk_busy: f64,
    /// Total link serialization seconds consumed.
    pub link_busy: f64,
    /// The final ranking `(librarian, doc)` (librarian 0 for MS), for
    /// cross-checking against the real driver.
    pub hits: Vec<(usize, DocId)>,
    /// Librarians whose subquery failed under an injected
    /// [`FaultPlan`], in index order — the virtual-time mirror of
    /// `Coverage::failed` on the real driver. Empty on healthy runs.
    pub failed: Vec<usize>,
}

/// How the simulated receptionist issues subqueries to the librarians —
/// the virtual-time mirror of `teraphim_net::DispatchMode` on the real
/// transports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SimDispatch {
    /// All librarians work concurrently: elapsed time is the *maximum*
    /// of their times (the paper's parallel-machines model).
    #[default]
    Parallel,
    /// One librarian at a time, each exchange completing before the next
    /// begins: elapsed time is the *sum* — the baseline the concurrent
    /// fan-out is measured against.
    Sequential,
}

/// Fetch strategies for step 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchPlan {
    /// One request/response round trip *per document* (the paper's
    /// implementation; its analysis notes documents "should be bundled").
    PerDocument,
    /// One round trip per librarian carrying all its documents.
    Bundled,
}

/// The simulation driver. Owns librarian-side collections plus the
/// receptionist's global state, mirroring a full deployment.
#[derive(Debug)]
pub struct SimDriver {
    analyzer: Analyzer,
    parts: Vec<Collection>,
    mono: Collection,
    global_vocab: Vocabulary,
    global_stats: CollectionStats,
    grouped: GroupedIndex,
    ci_params: CiParams,
    /// Use self-indexing skips for CI candidate scoring. The paper's
    /// experiments ran *without* skipping; the `skipping` bench flips
    /// this.
    pub skipping: bool,
    /// Bundle CN/CV document fetches too (ablation; default false).
    pub bundle_all_fetches: bool,
    /// How the librarian fan-out is scheduled (steps 1–3). Rankings are
    /// identical either way; only elapsed time differs.
    pub dispatch: SimDispatch,
    /// Per-librarian fault plans (same [`FaultPlan`] type the real
    /// transports use), consulted once per subquery a librarian
    /// receives.
    fault_plans: Vec<Option<FaultPlan>>,
    /// Subqueries sent to each librarian so far — the request sequence
    /// numbers the fault plans are evaluated at. Persists across
    /// queries, like a real transport's request counter.
    fault_requests: Vec<u64>,
    /// Master scenario seed ([`SimDriver::set_seed`]); every stochastic
    /// consumer derives its stream from this via [`derive_seed`].
    seed: u64,
    /// Structured trace sink (disabled by default). Simulated queries
    /// emit the same event schema as the real receptionist, stamped
    /// with *virtual* microseconds instead of wall-clock ones.
    trace: TraceSink,
}

/// Virtual seconds → whole trace microseconds.
fn micros(t: SimTime) -> u64 {
    (t * 1e6).round() as u64
}

/// Derives a decorrelated sub-seed from one master seed: the splitmix64
/// finalizer over `master + stream`, so a scenario stamps *one* seed
/// and every consumer — plan generation, per-librarian fault schedules,
/// churn document synthesis — draws an independent stream from it
/// instead of hand-rolling its own constants.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-exchange observability data captured while jobs are built,
/// recorded once the schedule assigns virtual times.
struct ExchangeTrace {
    lib: u32,
    req_bytes: u64,
    req_msg: &'static str,
    /// `(bytes, message)` when a reply crosses the wire back.
    reply: Option<(u64, &'static str)>,
    /// `(candidates, postings)` for CI scoring replies.
    scored: Option<(u32, u64)>,
    /// Injected fault that fired on this exchange.
    fault: Option<&'static str>,
    /// Error kind when the librarian drops out of the merge — the same
    /// kind the real transports surface for the same fault.
    failed: Option<&'static str>,
}

/// Records one fan-out's worth of exchange events at their scheduled
/// virtual times. Event order per librarian (`sent` → `reply` →
/// `scored` → `lib_failed`) mirrors the real dispatch path.
fn record_fanout(
    trace: &TraceSink,
    exchanges: &[ExchangeTrace],
    send_at: &[SimTime],
    back_at: &[SimTime],
) {
    if !trace.is_enabled() {
        return;
    }
    for (i, ex) in exchanges.iter().enumerate() {
        let send = micros(send_at[i]);
        let back = micros(back_at[i]);
        trace.record_at(
            send,
            EventKind::Sent {
                librarian: ex.lib,
                bytes: ex.req_bytes,
                message: ex.req_msg,
            },
        );
        if let Some(action) = ex.fault {
            trace.record_at(
                send,
                EventKind::Fault {
                    librarian: ex.lib,
                    action,
                },
            );
        }
        if let Some((bytes, message)) = ex.reply {
            trace.record_at(
                back,
                EventKind::Reply {
                    librarian: ex.lib,
                    bytes,
                    message,
                },
            );
            // Rule A: every reply is followed by the four server-phase
            // events. The simulator has no server-side clock, so the
            // durations are zero — the structure still matches the real
            // transports byte-for-byte after normalization.
            for (phase, _) in teraphim_obs::ServerTimings::default().as_pairs() {
                trace.record_at(
                    back,
                    EventKind::ServerPhase {
                        librarian: ex.lib,
                        phase,
                        micros: 0,
                    },
                );
            }
        }
        if let Some((candidates, postings)) = ex.scored {
            trace.record_at(
                back,
                EventKind::Scored {
                    librarian: ex.lib,
                    candidates,
                    postings,
                },
            );
        }
        if let Some(error) = ex.failed {
            trace.record_at(
                back,
                EventKind::LibFailed {
                    librarian: ex.lib,
                    error,
                },
            );
        }
    }
}

impl SimDriver {
    /// Builds the driver: one collection per part, the merged mono-server
    /// collection, the CV global statistics, and the CI grouped index.
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures.
    pub fn new(
        parts: &[(&str, &[TrecDoc])],
        analyzer: Analyzer,
        ci_params: CiParams,
    ) -> Result<Self, TeraphimError> {
        let collections: Vec<Collection> = parts
            .iter()
            .map(|(name, docs)| Collection::build(name, analyzer.clone(), docs))
            .collect();
        let all_docs: Vec<TrecDoc> = parts
            .iter()
            .flat_map(|(_, docs)| docs.iter().cloned())
            .collect();
        let mono = Collection::build("MS", analyzer.clone(), &all_docs);
        let stat_parts: Vec<(&Vocabulary, &CollectionStats)> = collections
            .iter()
            .map(|c| (c.index().vocab(), c.index().stats()))
            .collect();
        let (global_vocab, global_stats, _) = merge_stats(&stat_parts);
        let indexes: Vec<&teraphim_index::InvertedIndex> =
            collections.iter().map(Collection::index).collect();
        let grouped = GroupedIndex::build(&indexes, ci_params.group_size)?;
        let num_parts = collections.len();
        Ok(SimDriver {
            analyzer,
            parts: collections,
            mono,
            global_vocab,
            global_stats,
            grouped,
            ci_params,
            skipping: false,
            bundle_all_fetches: false,
            dispatch: SimDispatch::default(),
            fault_plans: vec![None; num_parts],
            fault_requests: vec![0; num_parts],
            seed: 0,
            trace: TraceSink::disabled(),
        })
    }

    /// Stamps the master seed all derived randomness flows from. The
    /// driver itself is deterministic; the seed exists so that plan
    /// generators and seeded fault schedules built *around* the driver
    /// share one root instead of each hand-rolling constants.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// The master seed last stamped with [`SimDriver::set_seed`]
    /// (0 until then).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A decorrelated sub-seed for `stream`, derived from the master
    /// seed — the handle plan generation and fault schedules draw from.
    pub fn stream_seed(&self, stream: u64) -> u64 {
        derive_seed(self.seed, stream)
    }

    /// Installs a seeded random-failure plan for `lib` whose seed is
    /// derived from the master seed (stream = librarian index), so
    /// "librarian `lib` fails ~`permille`/1000 of its subqueries" needs
    /// no per-call seed bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if `lib` is out of range.
    pub fn seeded_fault_plan(&mut self, lib: usize, permille: u16) {
        let seed = self.stream_seed(lib as u64);
        self.set_fault_plan(lib, FaultPlan::new().seeded_failures(seed, permille));
    }

    /// Attaches a trace sink; pass [`TraceSink::disabled`] to stop
    /// tracing.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// The sink simulated queries currently record into.
    pub fn trace_sink(&self) -> &TraceSink {
        &self.trace
    }

    /// Creates a fresh enabled sink labelled `"sim"`, attaches it, and
    /// returns it.
    pub fn enable_tracing(&mut self) -> TraceSink {
        let sink = TraceSink::for_driver("sim");
        self.trace = sink.clone();
        sink
    }

    /// Number of librarians.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Injects a fault plan for one simulated librarian — the *same*
    /// deterministic `FaultPlan` the real transports accept, so a
    /// scenario exercised against real librarians can be replayed in
    /// virtual time. Plans are evaluated per subquery (rank/score
    /// exchange); a failed librarian drops out of the merge and is
    /// reported in [`QueryCost::failed`], while [`FaultAction::Delay`]
    /// slows its reply without excluding it.
    ///
    /// # Panics
    ///
    /// Panics if `lib` is out of range.
    pub fn set_fault_plan(&mut self, lib: usize, plan: FaultPlan) {
        self.fault_plans[lib] = Some(plan);
    }

    /// Removes all fault plans and resets the per-librarian request
    /// counters, restoring a healthy fleet.
    pub fn clear_fault_plans(&mut self) {
        self.fault_plans = vec![None; self.parts.len()];
        self.fault_requests = vec![0; self.parts.len()];
    }

    /// The fault (if any) striking librarian `lib`'s next subquery, and
    /// advances its request counter.
    fn next_fault(&mut self, lib: usize) -> Option<FaultAction> {
        let n = self.fault_requests[lib];
        self.fault_requests[lib] += 1;
        self.fault_plans[lib]
            .as_ref()
            .and_then(|plan| plan.action_for(n))
            .copied()
    }

    /// Appends documents to one simulated librarian and rebuilds every
    /// derived product the same way a real deployment's reindexing
    /// cycle would: the librarian's own index (incremental merge, as
    /// `Librarian::collection_mut().append_documents` does), the
    /// mono-server baseline, the CV global vocabulary/statistics, and
    /// the CI grouped index. This is the plan-execution hook that lets
    /// a scenario's index-churn steps replay identically in virtual
    /// time and against live librarians.
    ///
    /// # Panics
    ///
    /// Panics if `lib` is out of range.
    ///
    /// # Errors
    ///
    /// Propagates index merge/rebuild failures.
    pub fn append_documents(&mut self, lib: usize, docs: &[TrecDoc]) -> Result<(), TeraphimError> {
        self.parts[lib].append_documents(docs)?;
        self.mono.append_documents(docs)?;
        let stat_parts: Vec<(&Vocabulary, &CollectionStats)> = self
            .parts
            .iter()
            .map(|c| (c.index().vocab(), c.index().stats()))
            .collect();
        let (global_vocab, global_stats, _) = merge_stats(&stat_parts);
        self.global_vocab = global_vocab;
        self.global_stats = global_stats;
        let indexes: Vec<&teraphim_index::InvertedIndex> =
            self.parts.iter().map(Collection::index).collect();
        self.grouped = GroupedIndex::build(&indexes, self.ci_params.group_size)?;
        Ok(())
    }

    /// The grouped central index (for size reports).
    pub fn grouped(&self) -> &GroupedIndex {
        &self.grouped
    }

    /// The merged mono-server collection.
    pub fn mono(&self) -> &Collection {
        &self.mono
    }

    /// Simulates one query on a fresh (idle) resource model, as the
    /// paper measured response time on idle machines.
    ///
    /// # Errors
    ///
    /// Returns [`TeraphimError::BadParameters`] for invalid CI
    /// configurations, and index failures otherwise.
    pub fn time_query(
        &mut self,
        topo: &Topology,
        cost: &CostModel,
        mode: SimMode,
        query: &str,
        k: usize,
    ) -> Result<QueryCost, TeraphimError> {
        let mut net = SimNetwork::new(topo, cost.clone());
        let methodology = match mode {
            SimMode::MonoServer => "MS",
            SimMode::Distributed(m) => m.code(),
        };
        self.trace.record_at(
            0,
            EventKind::Begin {
                op: "query",
                methodology: Some(methodology),
                query_id: 0,
                k: k as u32,
            },
        );
        let outcome = match mode {
            SimMode::MonoServer => self.run_mono(&mut net, query, k),
            SimMode::Distributed(Methodology::CentralNothing) => {
                self.run_cn_cv(&mut net, query, k, false)
            }
            SimMode::Distributed(Methodology::CentralVocabulary) => {
                self.run_cn_cv(&mut net, query, k, true)
            }
            SimMode::Distributed(Methodology::CentralIndex) => self.run_ci(&mut net, query, k),
        };
        let end_at = outcome.as_ref().map_or(0, |c| micros(c.total_time));
        self.trace.record_at(end_at, EventKind::End);
        let mut result = outcome?;
        result.cpu_busy = net.total_cpu_busy();
        result.disk_busy = net.total_disk_busy();
        result.link_busy = net.total_link_busy();
        Ok(result)
    }

    /// Averages [`SimDriver::time_query`] over a query set.
    ///
    /// # Errors
    ///
    /// Propagates the first query failure.
    pub fn time_query_set(
        &mut self,
        topo: &Topology,
        cost: &CostModel,
        mode: SimMode,
        queries: &[&str],
        k: usize,
    ) -> Result<(f64, f64), TeraphimError> {
        let mut index_sum = 0.0;
        let mut total_sum = 0.0;
        for q in queries {
            let c = self.time_query(topo, cost, mode, q, k)?;
            index_sum += c.index_time;
            total_sum += c.total_time;
        }
        let n = queries.len().max(1) as f64;
        Ok((index_sum / n, total_sum / n))
    }

    /// Reserves a batch of transfers in *ready-time order*, which is what
    /// keeps shared resources (the LAN's ethernet cable) causally
    /// consistent: a message that is ready earlier must be offered the
    /// medium earlier, regardless of the order the driver happens to
    /// enumerate librarians. Returns completion times in input order.
    fn transfer_batch(
        net: &mut SimNetwork,
        items: &[(usize, SimTime, usize)],
        to_librarian: bool,
    ) -> Vec<SimTime> {
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| {
            items[a]
                .1
                .partial_cmp(&items[b].1)
                .expect("finite times")
                .then(items[a].0.cmp(&items[b].0))
        });
        let mut out = vec![0.0; items.len()];
        for idx in order {
            let (lib, ready, bytes) = items[idx];
            out[idx] = if to_librarian {
                net.send_to_librarian(lib, ready, bytes)
            } else {
                net.send_to_receptionist(lib, ready, bytes)
            };
        }
        out
    }

    /// Charges the fan-out schedule for `jobs` — one `(librarian,
    /// request bytes, job)` per contacted librarian — under the current
    /// [`SimDispatch`]. Returns the time the last reply (or observed
    /// reset) is in, plus each job's request-departure time and
    /// reply-arrival (or reset-observed) time.
    fn schedule_fanout(
        &self,
        net: &mut SimNetwork,
        start: SimTime,
        jobs: &[(usize, usize, SimJob)],
    ) -> (SimTime, Vec<SimTime>, Vec<SimTime>) {
        match self.dispatch {
            SimDispatch::Parallel => {
                // All requests leave the receptionist together; the
                // fan-out completes with the slowest librarian.
                let req_items: Vec<(usize, SimTime, usize)> = jobs
                    .iter()
                    .map(|&(lib, req_len, _)| (lib, start, req_len))
                    .collect();
                let arrivals = Self::transfer_batch(net, &req_items, true);
                let send_at = vec![start; jobs.len()];
                let mut back_at = vec![start; jobs.len()];
                let mut done = start;
                let mut resp_items: Vec<(usize, SimTime, usize)> = Vec::with_capacity(jobs.len());
                let mut resp_idx: Vec<usize> = Vec::with_capacity(jobs.len());
                for (i, (lib, _, job)) in jobs.iter().enumerate() {
                    let t_done = charge_librarian(net, *lib, arrivals[i], job);
                    if job.resp_len > 0 {
                        resp_items.push((*lib, t_done, job.resp_len));
                        resp_idx.push(i);
                    } else {
                        // Dropped connection: the receptionist observes
                        // the reset when it happens, with no reply leg.
                        back_at[i] = t_done;
                        done = done.max(t_done);
                    }
                }
                let backs = Self::transfer_batch(net, &resp_items, false);
                for (j, &i) in resp_idx.iter().enumerate() {
                    back_at[i] = backs[j];
                }
                let ready = backs.iter().cloned().fold(done, f64::max);
                (ready, send_at, back_at)
            }
            SimDispatch::Sequential => {
                // Each exchange completes before the next begins.
                let mut t = start;
                let mut send_at = Vec::with_capacity(jobs.len());
                let mut back_at = Vec::with_capacity(jobs.len());
                for (lib, req_len, job) in jobs {
                    send_at.push(t);
                    let t_arrive = net.send_to_librarian(*lib, t, *req_len);
                    let t_done = charge_librarian(net, *lib, t_arrive, job);
                    t = if job.resp_len > 0 {
                        net.send_to_receptionist(*lib, t_done, job.resp_len)
                    } else {
                        t_done
                    };
                    back_at.push(t);
                }
                (t, send_at, back_at)
            }
        }
    }

    fn term_counts(&self, query: &str) -> Vec<(String, u32)> {
        let mut counts: BTreeMap<String, u32> = BTreeMap::new();
        for term in self.analyzer.analyze(query) {
            *counts.entry(term).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    // ------------------------------------------------------------------
    // Mono-server baseline
    // ------------------------------------------------------------------

    fn run_mono(
        &mut self,
        net: &mut SimNetwork,
        query: &str,
        k: usize,
    ) -> Result<QueryCost, TeraphimError> {
        let terms = self.term_counts(query);
        let pairs: Vec<(teraphim_index::TermId, u32)> = terms
            .iter()
            .filter_map(|(t, f)| self.mono.index().vocab().term_id(t).map(|id| (id, *f)))
            .collect();
        let weighted = ranking::local_weights(self.mono.index(), &pairs);
        let work = index_work(&self.mono, &weighted);
        let hits = ranking::rank(self.mono.index(), &weighted, k);

        // Disk pass over the touched lists, then CPU, on the single
        // machine (librarian slot 0 is co-located in the MS topology).
        let t_parse = net.receptionist_cpu(0.0, net.cost().cpu_query_overhead);
        self.trace.record_at(
            micros(t_parse),
            EventKind::PhaseStart {
                phase: Phase::RankFanout,
            },
        );
        let t_disk = net.receptionist_disk_read(t_parse, work.list_bytes, work.seeks);
        let cost = net.cost().clone();
        let t_cpu = net.receptionist_cpu(
            t_disk,
            work.postings as f64 * cost.cpu_per_posting + cost.merge_cpu(work.postings),
        );
        let index_time = t_cpu;
        self.trace.record_at(
            micros(index_time),
            EventKind::Merge {
                entries: hits.len() as u64,
                k: k as u32,
            },
        );
        self.trace.record_at(
            micros(index_time),
            EventKind::PhaseEnd {
                phase: Phase::RankFanout,
            },
        );
        self.trace.record_at(
            micros(index_time),
            EventKind::PhaseStart {
                phase: Phase::DocFetch,
            },
        );

        // Fetch: per-document disk reads, no network.
        let mut t_fetch = index_time;
        let mut plain_bytes = 0usize;
        for h in &hits {
            let body = self
                .mono
                .store()
                .compressed_bytes(h.doc)
                .map_err(TeraphimError::Engine)?
                .len();
            plain_bytes += self.mono.fetch(h.doc).map_err(TeraphimError::Engine)?.len();
            t_fetch = net.receptionist_disk_read(t_fetch, body, 1);
        }
        let total_time = net.receptionist_cpu(t_fetch, cost.decompress_cpu(plain_bytes));
        self.trace.record_at(
            micros(total_time),
            EventKind::PhaseEnd {
                phase: Phase::DocFetch,
            },
        );

        Ok(QueryCost {
            index_time,
            total_time,
            bytes_on_wire: 0,
            postings_decoded: work.postings,
            cpu_busy: 0.0,
            disk_busy: 0.0,
            link_busy: 0.0,
            hits: hits.into_iter().map(|h| (0usize, h.doc)).collect(),
            failed: Vec::new(),
        })
    }

    // ------------------------------------------------------------------
    // CN and CV (identical plan; weights differ)
    // ------------------------------------------------------------------

    fn run_cn_cv(
        &mut self,
        net: &mut SimNetwork,
        query: &str,
        k: usize,
        cv: bool,
    ) -> Result<QueryCost, TeraphimError> {
        let terms = self.term_counts(query);
        let cost = net.cost().clone();
        let mut bytes_on_wire = 0u64;
        let mut postings_total = 0u64;

        // Step 1: receptionist parses and transmits the query.
        let request = if cv {
            Message::RankWeightedRequest {
                query_id: 0,
                k: k as u32,
                terms: global_weights(&self.global_vocab, &self.global_stats, &terms),
            }
        } else {
            Message::RankRequest {
                query_id: 0,
                k: k as u32,
                terms: terms.clone(),
            }
        };
        let req_bytes = request.wire_len();
        let t_parse = net.receptionist_cpu(0.0, cost.cpu_query_overhead);

        // Step 2: each librarian ranks in parallel. Under CV the query
        // norm covers the full global weight list (terms a librarian
        // lacks still belong in its denominator).
        let global_w = cv.then(|| global_weights(&self.global_vocab, &self.global_stats, &terms));
        let global_norm = global_w.as_ref().map(|w| similarity_norm(w)).unwrap_or(0.0);

        // Consult fault plans — one subquery per librarian.
        let faults: Vec<Option<FaultAction>> = (0..self.parts.len())
            .map(|lib| self.next_fault(lib))
            .collect();
        let mut failed: Vec<usize> = Vec::new();

        // Evaluate every librarian's ranking first (pure computation —
        // virtual time is charged below, under the chosen schedule).
        // Faulted librarians drop out of the merge: `Fail` answers a
        // small Unavailable message without doing the work, `Drop`
        // resets the connection (request leg only), `Garble` does the
        // work but its reply cannot be trusted; `Delay` answers
        // normally, late.
        let mut lists: Vec<Vec<(ScoredDoc, usize)>> = Vec::with_capacity(self.parts.len());
        let mut jobs: Vec<(usize, usize, SimJob)> = Vec::with_capacity(self.parts.len());
        let mut exchanges: Vec<ExchangeTrace> = Vec::with_capacity(self.parts.len());
        for (lib, col) in self.parts.iter().enumerate() {
            let fault = faults[lib];
            if matches!(fault, Some(FaultAction::Fail)) {
                let response = Message::Unavailable {
                    message: "injected fault".into(),
                };
                jobs.push((
                    lib,
                    req_bytes,
                    SimJob {
                        work: NO_WORK,
                        cpu: 0.0,
                        resp_len: response.wire_len(),
                        delay: 0.0,
                    },
                ));
                exchanges.push(ExchangeTrace {
                    lib: lib as u32,
                    req_bytes: req_bytes as u64,
                    req_msg: request.variant_name(),
                    reply: None,
                    scored: None,
                    fault: Some("fail"),
                    failed: Some("unavailable"),
                });
                bytes_on_wire += (req_bytes + response.wire_len()) as u64;
                failed.push(lib);
                continue;
            }
            if matches!(fault, Some(FaultAction::Drop)) {
                jobs.push((
                    lib,
                    req_bytes,
                    SimJob {
                        work: NO_WORK,
                        cpu: 0.0,
                        resp_len: 0,
                        delay: 0.0,
                    },
                ));
                exchanges.push(ExchangeTrace {
                    lib: lib as u32,
                    req_bytes: req_bytes as u64,
                    req_msg: request.variant_name(),
                    reply: None,
                    scored: None,
                    fault: Some("drop"),
                    failed: Some("disconnected"),
                });
                bytes_on_wire += req_bytes as u64;
                failed.push(lib);
                continue;
            }
            let (weighted, qnorm) = match &global_w {
                Some(w) => (resolve_weights(col, w), global_norm),
                None => {
                    let pairs: Vec<(teraphim_index::TermId, u32)> = terms
                        .iter()
                        .filter_map(|(t, f)| col.index().vocab().term_id(t).map(|id| (id, *f)))
                        .collect();
                    let local = ranking::local_weights(col.index(), &pairs);
                    let norm = teraphim_index::similarity::query_norm(
                        &local.iter().map(|t| t.w_qt).collect::<Vec<_>>(),
                    );
                    (local, norm)
                }
            };
            let work = index_work(col, &weighted);
            postings_total += work.postings;
            let hits = ranking::rank_with_norm(col.index(), &weighted, qnorm, k);
            let response = Message::RankResponse {
                query_id: 0,
                epoch: 0,
                entries: hits.iter().map(|h| (h.doc, h.score)).collect(),
            };
            let delay = match fault {
                Some(FaultAction::Delay(d)) => d.as_secs_f64(),
                _ => 0.0,
            };
            jobs.push((
                lib,
                req_bytes,
                SimJob {
                    work,
                    cpu: cost.postings_cpu(work.postings) + cost.merge_cpu(work.postings),
                    resp_len: response.wire_len(),
                    delay,
                },
            ));
            let garbled = matches!(fault, Some(FaultAction::Garble));
            exchanges.push(ExchangeTrace {
                lib: lib as u32,
                req_bytes: req_bytes as u64,
                req_msg: request.variant_name(),
                reply: Some((response.wire_len() as u64, response.variant_name())),
                scored: None,
                fault: fault.map(|f| f.name()),
                failed: garbled.then_some("remote"),
            });
            bytes_on_wire += (req_bytes + response.wire_len()) as u64;
            if garbled {
                failed.push(lib);
            } else {
                lists.push(hits.into_iter().map(|h| (h, lib)).collect());
            }
        }

        // Charge the schedule. Per-librarian CPU covers decode +
        // accumulator/heap maintenance, as the MS baseline is charged —
        // the cost repeated at every librarian.
        self.trace.record_at(
            micros(t_parse),
            EventKind::PhaseStart {
                phase: Phase::RankFanout,
            },
        );
        let (ready, send_at, back_at) = self.schedule_fanout(net, t_parse, &jobs);
        record_fanout(&self.trace, &exchanges, &send_at, &back_at);

        // Step 3: the receptionist merges once every reply is in.
        let merged_entries: u64 = lists.iter().map(|l| l.len() as u64).sum();
        let index_time = net.receptionist_cpu(ready, cost.merge_cpu(merged_entries));
        self.trace.record_at(
            micros(index_time),
            EventKind::Merge {
                entries: merged_entries,
                k: k as u32,
            },
        );
        self.trace.record_at(
            micros(index_time),
            EventKind::PhaseEnd {
                phase: Phase::RankFanout,
            },
        );
        let merged = ranking::merge_rankings(&lists, k);
        let hits: Vec<(usize, DocId)> = merged.iter().map(|(s, lib)| (*lib, s.doc)).collect();

        // Step 4: fetch answer documents.
        let plan = if self.bundle_all_fetches {
            FetchPlan::Bundled
        } else {
            FetchPlan::PerDocument
        };
        self.trace.record_at(
            micros(index_time),
            EventKind::PhaseStart {
                phase: Phase::DocFetch,
            },
        );
        let (total_time, fetch_bytes) = self.fetch_phase(net, index_time, &hits, plan)?;
        self.trace.record_at(
            micros(total_time),
            EventKind::PhaseEnd {
                phase: Phase::DocFetch,
            },
        );
        bytes_on_wire += fetch_bytes;

        Ok(QueryCost {
            index_time,
            total_time,
            bytes_on_wire,
            postings_decoded: postings_total,
            cpu_busy: 0.0,
            disk_busy: 0.0,
            link_busy: 0.0,
            hits,
            failed,
        })
    }

    // ------------------------------------------------------------------
    // CI
    // ------------------------------------------------------------------

    fn run_ci(
        &mut self,
        net: &mut SimNetwork,
        query: &str,
        k: usize,
    ) -> Result<QueryCost, TeraphimError> {
        if !self.ci_params.valid_for(k) {
            return Err(TeraphimError::BadParameters(format!(
                "k' = {} with G = {} cannot produce k = {k} documents",
                self.ci_params.k_prime, self.ci_params.group_size
            )));
        }
        let terms = self.term_counts(query);
        let cost = net.cost().clone();
        let mut bytes_on_wire = 0u64;

        // Step 1-2 (receptionist side): rank groups on the central
        // grouped index — sequential disk + CPU on the receptionist's
        // machine (the paper: "elapsed times were greater because of the
        // sequential processing of the central index").
        let group_index = self.grouped.group_index();
        let group_pairs: Vec<(teraphim_index::TermId, u32)> = terms
            .iter()
            .filter_map(|(t, f)| self.grouped.vocab().term_id(t).map(|id| (id, *f)))
            .collect();
        let group_weighted = ranking::local_weights(group_index, &group_pairs);
        let group_work = index_work_on(group_index, &group_weighted);
        let top_groups = ranking::rank(group_index, &group_weighted, self.ci_params.k_prime);
        let group_ids: Vec<u32> = top_groups.iter().map(|g| g.doc).collect();
        let expanded = self.grouped.expand_groups(&group_ids);

        // Fault plans are consulted for the candidate owners only — the
        // group ranking happens locally at the receptionist.
        let owner_faults: Vec<Option<FaultAction>> = expanded
            .iter()
            .map(|(part, _)| self.next_fault(*part as usize))
            .collect();
        let mut failed: Vec<usize> = Vec::new();

        let t_parse = net.receptionist_cpu(0.0, cost.cpu_query_overhead);
        self.trace.record_at(
            micros(t_parse),
            EventKind::PhaseStart {
                phase: Phase::GroupRank,
            },
        );
        let t_gdisk = net.receptionist_disk_read(t_parse, group_work.list_bytes, group_work.seeks);
        let t_grank = net.receptionist_cpu(
            t_gdisk,
            cost.postings_cpu(group_work.postings) + cost.merge_cpu(self.ci_params.k_prime as u64),
        );
        if self.trace.is_enabled() {
            let mut candidates: Vec<LibCandidates> = expanded
                .iter()
                .map(|(part, docs)| LibCandidates {
                    librarian: *part,
                    docs: docs.clone(),
                })
                .collect();
            candidates.sort_by_key(|c| c.librarian);
            self.trace.record_at(
                micros(t_grank),
                EventKind::Expansion {
                    k_prime: self.ci_params.k_prime as u32,
                    group_size: self.ci_params.group_size,
                    groups: group_ids.clone(),
                    candidates,
                },
            );
        }
        self.trace.record_at(
            micros(t_grank),
            EventKind::PhaseEnd {
                phase: Phase::GroupRank,
            },
        );
        let mut postings_total = group_work.postings;

        // Candidate scoring at the owning librarians. Evaluate first
        // (pure computation), then charge the schedule below.
        let doc_weights = global_weights_from_grouped(&self.grouped, &terms);
        let mut lists: Vec<Vec<(ScoredDoc, usize)>> = Vec::new();
        // One (part, request bytes, job) per touched librarian. Faulted
        // owners drop out of the merge exactly as on the real driver.
        let mut jobs: Vec<(usize, usize, SimJob)> = Vec::new();
        let mut exchanges: Vec<ExchangeTrace> = Vec::new();
        for (i, (part, cands)) in expanded.iter().enumerate() {
            let part_idx = *part as usize;
            let fault = owner_faults[i];
            let request = Message::ScoreCandidatesRequest {
                query_id: 0,
                terms: doc_weights.clone(),
                candidates: cands.clone(),
            };
            if matches!(fault, Some(FaultAction::Fail)) {
                let response = Message::Unavailable {
                    message: "injected fault".into(),
                };
                jobs.push((
                    part_idx,
                    request.wire_len(),
                    SimJob {
                        work: NO_WORK,
                        cpu: 0.0,
                        resp_len: response.wire_len(),
                        delay: 0.0,
                    },
                ));
                exchanges.push(ExchangeTrace {
                    lib: *part,
                    req_bytes: request.wire_len() as u64,
                    req_msg: request.variant_name(),
                    reply: None,
                    scored: None,
                    fault: Some("fail"),
                    failed: Some("unavailable"),
                });
                bytes_on_wire += (request.wire_len() + response.wire_len()) as u64;
                failed.push(part_idx);
                continue;
            }
            if matches!(fault, Some(FaultAction::Drop)) {
                jobs.push((
                    part_idx,
                    request.wire_len(),
                    SimJob {
                        work: NO_WORK,
                        cpu: 0.0,
                        resp_len: 0,
                        delay: 0.0,
                    },
                ));
                exchanges.push(ExchangeTrace {
                    lib: *part,
                    req_bytes: request.wire_len() as u64,
                    req_msg: request.variant_name(),
                    reply: None,
                    scored: None,
                    fault: Some("drop"),
                    failed: Some("disconnected"),
                });
                bytes_on_wire += request.wire_len() as u64;
                failed.push(part_idx);
                continue;
            }
            let weighted = resolve_weights(&self.parts[part_idx], &doc_weights);
            let qnorm = similarity_norm(&doc_weights);
            let (scores, decoded) = if self.skipping {
                self.parts[part_idx]
                    .score_candidates(&doc_weights, cands)
                    .map_err(TeraphimError::Engine)?
            } else {
                candidates::score_candidates_full_scan_with_norm(
                    self.parts[part_idx].index(),
                    &weighted,
                    qnorm,
                    cands,
                )
                .map_err(TeraphimError::Engine)?
            };
            postings_total += decoded;
            let response = Message::ScoreResponse {
                query_id: 0,
                epoch: 0,
                entries: scores.iter().map(|s| (s.doc, s.score)).collect(),
                postings_decoded: decoded,
            };
            let work = index_work(&self.parts[part_idx], &weighted);
            let delay = match fault {
                Some(FaultAction::Delay(d)) => d.as_secs_f64(),
                _ => 0.0,
            };
            jobs.push((
                part_idx,
                request.wire_len(),
                SimJob {
                    work,
                    cpu: cost.postings_cpu(decoded) + cost.merge_cpu(cands.len() as u64),
                    resp_len: response.wire_len(),
                    delay,
                },
            ));
            let garbled = matches!(fault, Some(FaultAction::Garble));
            exchanges.push(ExchangeTrace {
                lib: *part,
                req_bytes: request.wire_len() as u64,
                req_msg: request.variant_name(),
                reply: Some((response.wire_len() as u64, response.variant_name())),
                scored: Some((scores.len() as u32, decoded)),
                fault: fault.map(|f| f.name()),
                failed: garbled.then_some("remote"),
            });
            bytes_on_wire += (request.wire_len() + response.wire_len()) as u64;
            if garbled {
                failed.push(part_idx);
            } else {
                lists.push(scores.into_iter().map(|s| (s, part_idx)).collect());
            }
        }

        // Disk: the librarian still reads the touched lists once;
        // skipping reduces decode CPU, not the sequential transfer.
        // CPU: candidate scoring maintains one accumulator per candidate.
        self.trace.record_at(
            micros(t_grank),
            EventKind::PhaseStart {
                phase: Phase::RankFanout,
            },
        );
        let (ready, send_at, back_at) = self.schedule_fanout(net, t_grank, &jobs);
        record_fanout(&self.trace, &exchanges, &send_at, &back_at);

        // Receptionist sorts the k'·G similarity values.
        let scored_count: u64 = lists.iter().map(|l| l.len() as u64).sum();
        let index_time = net.receptionist_cpu(ready, cost.merge_cpu(scored_count));
        self.trace.record_at(
            micros(index_time),
            EventKind::Merge {
                entries: scored_count,
                k: k as u32,
            },
        );
        self.trace.record_at(
            micros(index_time),
            EventKind::PhaseEnd {
                phase: Phase::RankFanout,
            },
        );
        let merged = ranking::merge_rankings(&lists, k);
        let hits: Vec<(usize, DocId)> = merged.iter().map(|(s, lib)| (*lib, s.doc)).collect();

        // Step 4: fetch — bundled, since CI candidates arrive as ranges.
        self.trace.record_at(
            micros(index_time),
            EventKind::PhaseStart {
                phase: Phase::DocFetch,
            },
        );
        let (total_time, fetch_bytes) =
            self.fetch_phase(net, index_time, &hits, FetchPlan::Bundled)?;
        self.trace.record_at(
            micros(total_time),
            EventKind::PhaseEnd {
                phase: Phase::DocFetch,
            },
        );
        bytes_on_wire += fetch_bytes;

        Ok(QueryCost {
            index_time,
            total_time,
            bytes_on_wire,
            postings_decoded: postings_total,
            cpu_busy: 0.0,
            disk_busy: 0.0,
            link_busy: 0.0,
            hits,
            failed,
        })
    }

    // ------------------------------------------------------------------
    // Step 4: document fetch
    // ------------------------------------------------------------------

    fn fetch_phase(
        &self,
        net: &mut SimNetwork,
        start: SimTime,
        hits: &[(usize, DocId)],
        plan: FetchPlan,
    ) -> Result<(SimTime, u64), TeraphimError> {
        let cost = net.cost().clone();
        let mut per_lib: BTreeMap<usize, Vec<DocId>> = BTreeMap::new();
        for &(lib, doc) in hits {
            per_lib.entry(lib).or_default().push(doc);
        }
        let libs: Vec<usize> = per_lib.keys().copied().collect();
        let mut bytes_on_wire = 0u64;
        let mut plain_bytes_total = 0usize;
        let ends: Vec<SimTime> = match plan {
            FetchPlan::Bundled => {
                // One round trip per librarian, all ready together.
                let mut req_items = Vec::with_capacity(libs.len());
                let mut disk_jobs = Vec::with_capacity(libs.len());
                for &lib in &libs {
                    let docs = &per_lib[&lib];
                    let col = &self.parts[lib];
                    let request = Message::FetchDocsRequest {
                        query_id: 0,
                        docs: docs.clone(),
                        plain: false,
                    };
                    let mut bundle = Vec::with_capacity(docs.len());
                    let mut disk_bytes = 0usize;
                    for &doc in docs {
                        let body = col
                            .store()
                            .compressed_bytes(doc)
                            .map_err(TeraphimError::Engine)?;
                        plain_bytes_total += col.fetch(doc).map_err(TeraphimError::Engine)?.len();
                        disk_bytes += body.len();
                        bundle.push((doc, col.docno(doc).to_owned(), body.to_vec()));
                    }
                    let response = Message::DocsResponse {
                        query_id: 0,
                        docs: bundle,
                    };
                    bytes_on_wire += (request.wire_len() + response.wire_len()) as u64;
                    req_items.push((lib, start, request.wire_len()));
                    disk_jobs.push((lib, disk_bytes, docs.len() as u32, response.wire_len()));
                }
                let arrivals = Self::transfer_batch(net, &req_items, true);
                let mut resp_items = Vec::with_capacity(libs.len());
                for (i, &(lib, disk_bytes, seeks, resp_len)) in disk_jobs.iter().enumerate() {
                    let t_disk = net.disk_read(lib, arrivals[i], disk_bytes, seeks);
                    resp_items.push((lib, t_disk, resp_len));
                }
                Self::transfer_batch(net, &resp_items, false)
            }
            FetchPlan::PerDocument => {
                // Each librarian serves its documents one round trip at a
                // time; rounds across librarians proceed in parallel, so
                // each round is a batch of causally ordered transfers.
                let mut ready: BTreeMap<usize, SimTime> =
                    libs.iter().map(|&lib| (lib, start)).collect();
                let max_rounds = per_lib.values().map(Vec::len).max().unwrap_or(0);
                for round in 0..max_rounds {
                    let mut participants = Vec::new();
                    let mut req_items = Vec::new();
                    for &lib in &libs {
                        let Some(&doc) = per_lib[&lib].get(round) else {
                            continue;
                        };
                        let request = Message::FetchDocsRequest {
                            query_id: 0,
                            docs: vec![doc],
                            plain: false,
                        };
                        req_items.push((lib, ready[&lib], request.wire_len()));
                        participants.push((lib, doc, request.wire_len()));
                    }
                    let arrivals = Self::transfer_batch(net, &req_items, true);
                    let mut resp_items = Vec::with_capacity(participants.len());
                    for (i, &(lib, doc, req_len)) in participants.iter().enumerate() {
                        let col = &self.parts[lib];
                        let body = col
                            .store()
                            .compressed_bytes(doc)
                            .map_err(TeraphimError::Engine)?;
                        plain_bytes_total += col.fetch(doc).map_err(TeraphimError::Engine)?.len();
                        let response = Message::DocsResponse {
                            query_id: 0,
                            docs: vec![(doc, col.docno(doc).to_owned(), body.to_vec())],
                        };
                        bytes_on_wire += (req_len + response.wire_len()) as u64;
                        let t_disk = net.disk_read(lib, arrivals[i], body.len(), 1);
                        resp_items.push((lib, t_disk, response.wire_len()));
                    }
                    let backs = Self::transfer_batch(net, &resp_items, false);
                    for (i, &(lib, _, _)) in participants.iter().enumerate() {
                        ready.insert(lib, backs[i]);
                    }
                }
                ready.into_values().collect()
            }
        };
        let arrived = ends.into_iter().fold(start, f64::max);
        let done = net.receptionist_cpu(arrived, cost.decompress_cpu(plain_bytes_total));
        Ok((done, bytes_on_wire))
    }
}

/// Disk/CPU work a ranking pass performs at one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IndexWork {
    list_bytes: usize,
    seeks: u32,
    postings: u64,
}

/// A librarian that does nothing (failed before touching its index).
const NO_WORK: IndexWork = IndexWork {
    list_bytes: 0,
    seeks: 0,
    postings: 0,
};

/// One librarian's share of a simulated fan-out after fault injection:
/// the disk pass, the CPU seconds, the reply size (0 = connection
/// dropped, no reply leg) and any injected extra latency.
#[derive(Debug, Clone, Copy)]
struct SimJob {
    work: IndexWork,
    cpu: f64,
    resp_len: usize,
    delay: SimTime,
}

/// Charges one librarian's disk and CPU for `job`, returning when its
/// reply is ready to leave (injected delay included).
fn charge_librarian(net: &mut SimNetwork, lib: usize, arrive: SimTime, job: &SimJob) -> SimTime {
    let mut t = arrive;
    if job.work.seeks > 0 {
        t = net.disk_read(lib, t, job.work.list_bytes, job.work.seeks);
    }
    if job.cpu > 0.0 {
        t = net.cpu(lib, t, job.cpu);
    }
    t + job.delay
}

fn index_work(col: &Collection, weighted: &[WeightedTerm]) -> IndexWork {
    index_work_on(col.index(), weighted)
}

fn index_work_on(index: &teraphim_index::InvertedIndex, weighted: &[WeightedTerm]) -> IndexWork {
    let mut list_bytes = 0usize;
    let mut seeks = 1u32; // vocabulary access
    let mut postings = 0u64;
    for wt in weighted {
        let list = index.postings(wt.term);
        if !list.is_empty() {
            list_bytes += list.byte_len();
            seeks += 1;
            postings += u64::from(list.len());
        }
    }
    IndexWork {
        list_bytes,
        seeks,
        postings,
    }
}

/// Query norm over a full (string, weight) list.
fn similarity_norm(weights: &[(String, f64)]) -> f64 {
    teraphim_index::similarity::query_norm(&weights.iter().map(|(_, w)| *w).collect::<Vec<_>>())
}

/// Maps globally weighted term strings onto one collection's term ids.
fn resolve_weights(col: &Collection, weights: &[(String, f64)]) -> Vec<WeightedTerm> {
    weights
        .iter()
        .filter_map(|(term, w_qt)| {
            col.index().vocab().term_id(term).map(|id| WeightedTerm {
                term: id,
                w_qt: *w_qt,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver() -> SimDriver {
        let a: Vec<TrecDoc> = (0..40)
            .map(|i| TrecDoc {
                docno: format!("A-{i}"),
                text: format!("alpha bravo document number {i} about cats and retrieval"),
            })
            .collect();
        let b: Vec<TrecDoc> = (0..30)
            .map(|i| TrecDoc {
                docno: format!("B-{i}"),
                text: format!("bravo charlie item {i} about dogs and compression"),
            })
            .collect();
        let c: Vec<TrecDoc> = (0..20)
            .map(|i| TrecDoc {
                docno: format!("C-{i}"),
                text: format!("delta echo piece {i} about birds"),
            })
            .collect();
        let d: Vec<TrecDoc> = (0..25)
            .map(|i| TrecDoc {
                docno: format!("D-{i}"),
                text: format!("foxtrot golf entry {i} about fish and networks"),
            })
            .collect();
        SimDriver::new(
            &[("A", &a), ("B", &b), ("C", &c), ("D", &d)],
            Analyzer::default(),
            CiParams {
                group_size: 5,
                k_prime: 8,
            },
        )
        .unwrap()
    }

    #[test]
    fn all_modes_produce_times() {
        let mut d = driver();
        let cost = CostModel::default();
        for mode in [
            SimMode::MonoServer,
            SimMode::Distributed(Methodology::CentralNothing),
            SimMode::Distributed(Methodology::CentralVocabulary),
            SimMode::Distributed(Methodology::CentralIndex),
        ] {
            let topo = Topology::multi_disk(4);
            let c = d
                .time_query(&topo, &cost, mode, "cats dogs retrieval", 5)
                .unwrap();
            assert!(c.index_time > 0.0, "{mode}");
            assert!(c.total_time >= c.index_time, "{mode}");
            assert!(!c.hits.is_empty(), "{mode}");
        }
    }

    #[test]
    fn sequential_dispatch_is_slower_than_parallel() {
        let cost = CostModel::default();
        let topo = Topology::multi_disk(4);
        let q = "cats dogs retrieval compression";
        for mode in [
            SimMode::Distributed(Methodology::CentralNothing),
            SimMode::Distributed(Methodology::CentralVocabulary),
            SimMode::Distributed(Methodology::CentralIndex),
        ] {
            let mut d = driver();
            let par = d.time_query(&topo, &cost, mode, q, 5).unwrap();
            d.dispatch = SimDispatch::Sequential;
            let seq = d.time_query(&topo, &cost, mode, q, 5).unwrap();
            assert!(
                seq.index_time > par.index_time,
                "{mode}: sequential {} should exceed parallel {}",
                seq.index_time,
                par.index_time
            );
            assert_eq!(
                seq.hits, par.hits,
                "{mode}: dispatch must not change results"
            );
            assert_eq!(seq.bytes_on_wire, par.bytes_on_wire, "{mode}");
            assert_eq!(seq.postings_decoded, par.postings_decoded, "{mode}");
        }
    }

    #[test]
    fn wan_is_slower_than_lan_is_not_faster_than_multidisk() {
        let mut d = driver();
        let cost = CostModel::default();
        let q = "cats compression networks";
        let mode = SimMode::Distributed(Methodology::CentralVocabulary);
        let multi = d
            .time_query(&Topology::multi_disk(4), &cost, mode, q, 5)
            .unwrap();
        let wan = d.time_query(&Topology::wan(), &cost, mode, q, 5).unwrap();
        assert!(
            wan.index_time > multi.index_time + 0.1,
            "wan {} vs multi {}",
            wan.index_time,
            multi.index_time
        );
        assert!(wan.total_time > multi.total_time);
    }

    #[test]
    fn wan_fetch_dominates_for_per_document_transfers() {
        let mut d = driver();
        let cost = CostModel::default();
        let cn = SimMode::Distributed(Methodology::CentralNothing);
        let c = d
            .time_query(&Topology::wan(), &cost, cn, "cats dogs birds fish", 20)
            .unwrap();
        // Per-document fetch over the WAN must add far more than the
        // index phase (the paper's Table 4 effect).
        assert!(
            c.total_time > 2.0 * c.index_time,
            "total {} vs index {}",
            c.total_time,
            c.index_time
        );
    }

    #[test]
    fn ci_bundling_beats_cn_fetch_on_wan() {
        let mut d = driver();
        let cost = CostModel::default();
        let q = "cats dogs birds fish";
        let cn = d
            .time_query(
                &Topology::wan(),
                &cost,
                SimMode::Distributed(Methodology::CentralNothing),
                q,
                20,
            )
            .unwrap();
        let ci = d
            .time_query(
                &Topology::wan(),
                &cost,
                SimMode::Distributed(Methodology::CentralIndex),
                q,
                20,
            )
            .unwrap();
        let cn_fetch = cn.total_time - cn.index_time;
        let ci_fetch = ci.total_time - ci.index_time;
        assert!(
            ci_fetch < cn_fetch,
            "CI fetch {ci_fetch} vs CN fetch {cn_fetch}"
        );
    }

    #[test]
    fn bundle_ablation_reduces_cn_fetch_cost() {
        let mut d = driver();
        let cost = CostModel::default();
        let cn = SimMode::Distributed(Methodology::CentralNothing);
        let q = "cats dogs birds fish";
        let per_doc = d.time_query(&Topology::wan(), &cost, cn, q, 20).unwrap();
        d.bundle_all_fetches = true;
        let bundled = d.time_query(&Topology::wan(), &cost, cn, q, 20).unwrap();
        assert!(bundled.total_time < per_doc.total_time);
        assert_eq!(bundled.hits, per_doc.hits);
    }

    #[test]
    fn skipping_reduces_ci_postings() {
        let mut d = driver();
        let cost = CostModel::default();
        let ci = SimMode::Distributed(Methodology::CentralIndex);
        let q = "cats dogs";
        let full = d
            .time_query(&Topology::multi_disk(4), &cost, ci, q, 5)
            .unwrap();
        d.skipping = true;
        let skipped = d
            .time_query(&Topology::multi_disk(4), &cost, ci, q, 5)
            .unwrap();
        assert!(skipped.postings_decoded <= full.postings_decoded);
        assert_eq!(skipped.hits, full.hits, "skipping must not change results");
    }

    #[test]
    fn failed_librarian_drops_out_of_the_simulated_merge() {
        let cost = CostModel::default();
        let topo = Topology::multi_disk(4);
        let q = "cats dogs retrieval compression";
        for mode in [
            SimMode::Distributed(Methodology::CentralNothing),
            SimMode::Distributed(Methodology::CentralVocabulary),
        ] {
            let mut healthy = driver();
            let base = healthy.time_query(&topo, &cost, mode, q, 10).unwrap();
            assert!(base.failed.is_empty(), "{mode}");

            let mut d = driver();
            d.set_fault_plan(1, FaultPlan::new().fail_from(0));
            let degraded = d.time_query(&topo, &cost, mode, q, 10).unwrap();
            assert_eq!(degraded.failed, vec![1], "{mode}");
            assert!(degraded.hits.iter().all(|&(lib, _)| lib != 1), "{mode}");
            // The surviving hits are exactly the healthy hits minus
            // librarian 1's contributions, topped up from below.
            for hit in &degraded.hits {
                assert!(
                    base.hits.contains(hit) || !base.hits.is_empty(),
                    "{mode}: unexpected hit {hit:?}"
                );
            }
        }
    }

    #[test]
    fn slow_librarian_stretches_parallel_elapsed_time() {
        let cost = CostModel::default();
        let topo = Topology::multi_disk(4);
        let q = "cats dogs retrieval";
        let mode = SimMode::Distributed(Methodology::CentralVocabulary);
        let mut healthy = driver();
        let base = healthy.time_query(&topo, &cost, mode, q, 5).unwrap();

        let mut d = driver();
        d.set_fault_plan(
            2,
            FaultPlan::new().delay_all(std::time::Duration::from_millis(250)),
        );
        let slow = d.time_query(&topo, &cost, mode, q, 5).unwrap();
        assert!(slow.failed.is_empty());
        assert_eq!(slow.hits, base.hits, "delay must not change the ranking");
        // The injected 250 ms dominates the healthy critical path (the
        // delayed librarian may not have been the slowest before).
        assert!(
            slow.index_time >= base.index_time + 0.2,
            "slow {} vs base {}",
            slow.index_time,
            base.index_time
        );
    }

    #[test]
    fn sim_fault_plans_replay_deterministically() {
        let cost = CostModel::default();
        let topo = Topology::multi_disk(4);
        let q = "cats dogs compression";
        let mode = SimMode::Distributed(Methodology::CentralNothing);
        // One master seed; the per-librarian schedule derives from it,
        // so the same seed reproduces the same virtual history.
        let run = || {
            let mut d = driver();
            d.set_seed(9);
            d.set_fault_plan(0, FaultPlan::new().drop_nth(0));
            d.seeded_fault_plan(3, 500);
            let first = d.time_query(&topo, &cost, mode, q, 8).unwrap();
            let second = d.time_query(&topo, &cost, mode, q, 8).unwrap();
            let lib3_seed = d.stream_seed(3);
            (first, second, lib3_seed)
        };
        let (a1, a2, lib3_seed) = run();
        let (b1, b2, _) = run();
        assert_eq!(a1, b1, "same seed, same virtual history");
        assert_eq!(a2, b2);
        assert_eq!(
            a1.failed,
            [0].iter()
                .chain(
                    // librarian 3 fails query 0 iff the seeded rule matches n=0
                    FaultPlan::new()
                        .seeded_failures(lib3_seed, 500)
                        .action_for(0)
                        .map(|_| &3usize)
                )
                .copied()
                .collect::<Vec<_>>()
        );
        // The drop plan only covers request 0: librarian 0 answers the
        // second query.
        assert!(!a2.failed.contains(&0));
    }

    #[test]
    fn derived_seeds_are_stable_and_decorrelated() {
        let mut d = driver();
        d.set_seed(42);
        assert_eq!(d.seed(), 42);
        assert_eq!(d.stream_seed(0), derive_seed(42, 0));
        assert_ne!(d.stream_seed(0), d.stream_seed(1));
        // A different master seed moves every stream.
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
    }

    #[test]
    fn appended_documents_reach_every_derived_product() {
        let cost = CostModel::default();
        let topo = Topology::multi_disk(4);
        let q = "walrus tusks";
        let mut d = driver();
        let before_docs = d.mono().num_docs();
        for mode in [
            SimMode::MonoServer,
            SimMode::Distributed(Methodology::CentralNothing),
            SimMode::Distributed(Methodology::CentralVocabulary),
            SimMode::Distributed(Methodology::CentralIndex),
        ] {
            let c = d.time_query(&topo, &cost, mode, q, 5).unwrap();
            assert!(c.hits.is_empty(), "{mode}: no walrus before churn");
        }
        let doc = TrecDoc {
            docno: "NEW-1".into(),
            text: "walrus tusks and walrus whiskers".into(),
        };
        d.append_documents(2, std::slice::from_ref(&doc)).unwrap();
        assert_eq!(d.mono().num_docs(), before_docs + 1);
        for mode in [
            SimMode::MonoServer,
            SimMode::Distributed(Methodology::CentralNothing),
            SimMode::Distributed(Methodology::CentralVocabulary),
            SimMode::Distributed(Methodology::CentralIndex),
        ] {
            let c = d.time_query(&topo, &cost, mode, q, 5).unwrap();
            assert_eq!(c.hits.len(), 1, "{mode}: churned doc must rank");
            if let SimMode::Distributed(_) = mode {
                assert_eq!(c.hits[0].0, 2, "{mode}: owned by librarian 2");
            }
        }
    }

    #[test]
    fn ci_owner_failure_is_reported() {
        let cost = CostModel::default();
        let topo = Topology::multi_disk(4);
        let mut d = driver();
        d.set_fault_plan(0, FaultPlan::new().fail_from(0));
        let c = d
            .time_query(
                &topo,
                &cost,
                SimMode::Distributed(Methodology::CentralIndex),
                "cats dogs retrieval compression",
                5,
            )
            .unwrap();
        assert_eq!(c.failed, vec![0]);
        assert!(c.hits.iter().all(|&(lib, _)| lib != 0));
        // Clearing restores full coverage.
        d.clear_fault_plans();
        let healthy = d
            .time_query(
                &topo,
                &cost,
                SimMode::Distributed(Methodology::CentralIndex),
                "cats dogs retrieval compression",
                5,
            )
            .unwrap();
        assert!(healthy.failed.is_empty());
    }

    #[test]
    fn ms_uses_no_network() {
        let mut d = driver();
        let cost = CostModel::default();
        let c = d
            .time_query(
                &Topology::mono_disk(4),
                &cost,
                SimMode::MonoServer,
                "cats",
                5,
            )
            .unwrap();
        assert_eq!(c.bytes_on_wire, 0);
    }

    #[test]
    fn invalid_ci_parameters_error() {
        let mut d = driver();
        let cost = CostModel::default();
        let err = d
            .time_query(
                &Topology::multi_disk(4),
                &cost,
                SimMode::Distributed(Methodology::CentralIndex),
                "cats",
                1000,
            )
            .unwrap_err();
        assert!(matches!(err, TeraphimError::BadParameters(_)));
    }

    #[test]
    fn query_set_averaging() {
        let mut d = driver();
        let cost = CostModel::default();
        let (index_avg, total_avg) = d
            .time_query_set(
                &Topology::multi_disk(4),
                &cost,
                SimMode::Distributed(Methodology::CentralVocabulary),
                &["cats", "dogs compression"],
                5,
            )
            .unwrap();
        assert!(index_avg > 0.0);
        assert!(total_avg >= index_avg);
    }
}
