//! Corpus generation: specs, presets, and the generator itself.

use crate::queries::{self, Query};
use crate::topics::TopicSet;
use crate::words::word_for;
use crate::zipf::Zipf;
use crate::Subcollection;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use teraphim_text::sgml::TrecDoc;

/// Specification of one subcollection.
#[derive(Debug, Clone)]
pub struct SubSpec {
    /// Collection name ("AP", "FR", ...).
    pub name: String,
    /// Number of documents to generate.
    pub num_docs: usize,
    /// Mean document length in tokens.
    pub mean_doc_len: usize,
    /// Probability that a document is topical (vs pure background).
    pub topical_fraction: f64,
    /// How uneven the collection's topic affinities are: 0.0 covers all
    /// topics uniformly; larger values concentrate on a few topics.
    pub topic_concentration: f64,
}

impl SubSpec {
    /// Convenience constructor.
    pub fn new(
        name: &str,
        num_docs: usize,
        mean_doc_len: usize,
        topical_fraction: f64,
        topic_concentration: f64,
    ) -> Self {
        SubSpec {
            name: name.to_owned(),
            num_docs,
            mean_doc_len,
            topical_fraction,
            topic_concentration,
        }
    }
}

/// Full corpus specification. Identical specs generate identical corpora.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Vocabulary size (distinct terms).
    pub vocab_size: usize,
    /// Number of topics (and therefore of distinct query subjects).
    pub num_topics: usize,
    /// Terms in each topic's core.
    pub terms_per_topic: usize,
    /// Within-topic Zipf exponent; lower = flatter topic signature =
    /// harder retrieval (see `TopicSet::generate_full`).
    pub topic_exponent: f64,
    /// Terms shared between consecutive topics (lexical confusability;
    /// zero would let topical queries separate relevant documents
    /// perfectly).
    pub topic_overlap: usize,
    /// Zipf exponent of topic *popularity*: how unevenly documents are
    /// spread over topics (0.0 = uniform). Real TREC topics vary from a
    /// handful to hundreds of relevant documents; popular topics are
    /// what exposes the Central Index method's recall cap at small k'.
    pub topic_popularity: f64,
    /// Probability that a topical document's token is drawn from a
    /// *neighbouring* topic instead of its own — real documents about one
    /// subject borrow the vocabulary of adjacent subjects, which is what
    /// keeps retrieval from being a perfect separator.
    pub neighbor_mix: f64,
    /// λ: expected fraction of a topical document's tokens drawn from its
    /// topic rather than the background.
    pub topic_mix: f64,
    /// A document is judged relevant to its topic's queries iff its
    /// *actual* topical token fraction reaches this threshold.
    pub relevance_threshold: f64,
    /// The subcollections, in canonical order.
    pub subcollections: Vec<SubSpec>,
    /// Long query set size (paper: TREC topics 51–200, avg 90.4 terms).
    pub num_long_queries: usize,
    /// Short query set size (paper: topics 202–250, avg 9.6 terms).
    pub num_short_queries: usize,
    /// Target long query length in terms.
    pub long_query_len: usize,
    /// Target short query length in terms.
    pub short_query_len: usize,
}

impl CorpusSpec {
    /// A small, fast corpus for tests and examples: four subcollections,
    /// a few hundred documents.
    pub fn small(seed: u64) -> CorpusSpec {
        CorpusSpec {
            seed,
            vocab_size: 3_000,
            num_topics: 12,
            terms_per_topic: 40,
            topic_exponent: 1.0,
            topic_overlap: 18,
            topic_popularity: 0.0,
            neighbor_mix: 0.18,
            topic_mix: 0.35,
            relevance_threshold: 0.12,
            subcollections: vec![
                SubSpec::new("AP", 120, 110, 0.75, 0.0),
                SubSpec::new("FR", 60, 160, 0.55, 3.0),
                SubSpec::new("WSJ", 100, 120, 0.75, 0.0),
                SubSpec::new("ZIFF", 80, 90, 0.55, 3.0),
            ],
            num_long_queries: 12,
            num_short_queries: 12,
            long_query_len: 90,
            short_query_len: 10,
        }
    }

    /// The TREC-disk-2-shaped corpus used by the table reproductions:
    /// AP and WSJ large and topically broad (the paper notes "most of the
    /// relevant documents were in AP and \[WSJ\]"), FR long-document and
    /// narrow, ZIFF mid-sized and narrow.
    pub fn trec_like(seed: u64) -> CorpusSpec {
        CorpusSpec {
            seed,
            vocab_size: 20_000,
            // 150 topics, mirroring TREC topics 51-200; topics 0..49 also
            // serve as the short query set (202-250 analogue). More
            // topics means fewer relevant documents per query, keeping
            // precision@20 away from saturation.
            num_topics: 150,
            terms_per_topic: 120,
            topic_exponent: 0.55,
            topic_overlap: 40,
            topic_popularity: 0.9,
            neighbor_mix: 0.25,
            topic_mix: 0.32,
            relevance_threshold: 0.15,
            subcollections: vec![
                SubSpec::new("AP", 2_400, 190, 0.80, 0.0),
                SubSpec::new("FR", 1_100, 360, 0.50, 3.5),
                SubSpec::new("WSJ", 2_000, 220, 0.80, 0.0),
                SubSpec::new("ZIFF", 1_500, 150, 0.50, 3.5),
            ],
            num_long_queries: 150,
            num_short_queries: 49,
            long_query_len: 90,
            short_query_len: 10,
        }
    }

    /// Total documents across all subcollections.
    pub fn total_docs(&self) -> usize {
        self.subcollections.iter().map(|s| s.num_docs).sum()
    }
}

/// Per-document generative ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct DocMeta {
    /// External identifier.
    pub docno: String,
    /// Index of the owning subcollection in the spec.
    pub sub: usize,
    /// The topic the document was drawn from, if topical.
    pub topic: Option<usize>,
    /// The realized fraction of tokens drawn from the topic.
    pub topical_fraction: f64,
}

/// A generated corpus: documents, queries and ground-truth judgments.
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    spec: CorpusSpec,
    subcollections: Vec<Subcollection>,
    metas: Vec<DocMeta>,
    long_queries: Vec<Query>,
    short_queries: Vec<Query>,
}

impl SyntheticCorpus {
    /// Generates the corpus described by `spec`. Deterministic in
    /// `spec.seed`.
    pub fn generate(spec: &CorpusSpec) -> SyntheticCorpus {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let background = Zipf::new(spec.vocab_size, 1.05);
        let topics = TopicSet::generate_full(
            spec.num_topics,
            spec.terms_per_topic,
            spec.topic_overlap,
            spec.topic_exponent,
            spec.vocab_size,
        );

        // Per-subcollection topic affinity weights, scaled by global
        // topic popularity (Zipfian over topic ids).
        let affinities: Vec<Vec<f64>> = spec
            .subcollections
            .iter()
            .map(|sub| {
                (0..spec.num_topics)
                    .map(|t| {
                        let popularity = 1.0 / ((t + 1) as f64).powf(spec.topic_popularity);
                        popularity * (sub.topic_concentration * rng.gen_range(-1.0..1.0f64)).exp()
                    })
                    .collect()
            })
            .collect();

        let mut subcollections = Vec::with_capacity(spec.subcollections.len());
        let mut metas = Vec::new();
        for (s, sub) in spec.subcollections.iter().enumerate() {
            let mut docs = Vec::with_capacity(sub.num_docs);
            for i in 0..sub.num_docs {
                let docno = format!("{}-{:06}", sub.name, i);
                let topic = if rng.gen_bool(sub.topical_fraction) {
                    Some(sample_weighted(&mut rng, &affinities[s]))
                } else {
                    None
                };
                // Topical documents borrow vocabulary from one adjacent
                // topic (the next one, cyclically).
                let neighbor = topic.map(|t| (t + 1) % spec.num_topics);
                let len = doc_length(&mut rng, sub.mean_doc_len);
                let (text, topical_tokens) = generate_text(
                    &mut rng,
                    len,
                    topic.map(|t| topics.topic(t)),
                    neighbor.map(|t| topics.topic(t)),
                    spec,
                    &background,
                );
                metas.push(DocMeta {
                    docno: docno.clone(),
                    sub: s,
                    topic,
                    topical_fraction: topical_tokens as f64 / len.max(1) as f64,
                });
                docs.push(TrecDoc { docno, text });
            }
            subcollections.push(Subcollection {
                name: sub.name.clone(),
                docs,
            });
        }

        let long_queries = queries::generate_queries(
            &mut rng,
            &topics,
            spec.num_long_queries,
            spec.long_query_len,
            queries::LONG_QUERY_BASE_ID,
        );
        let short_queries = queries::generate_queries(
            &mut rng,
            &topics,
            spec.num_short_queries,
            spec.short_query_len,
            queries::SHORT_QUERY_BASE_ID,
        );

        SyntheticCorpus {
            spec: spec.clone(),
            subcollections,
            metas,
            long_queries,
            short_queries,
        }
    }

    /// The generating specification.
    pub fn spec(&self) -> &CorpusSpec {
        &self.spec
    }

    /// The generated subcollections, in spec order.
    pub fn subcollections(&self) -> &[Subcollection] {
        &self.subcollections
    }

    /// Ground-truth metadata for every document, in global order
    /// (subcollection by subcollection).
    pub fn metas(&self) -> &[DocMeta] {
        &self.metas
    }

    /// The long query set (ids from
    /// [`queries::LONG_QUERY_BASE_ID`]).
    pub fn long_queries(&self) -> &[Query] {
        &self.long_queries
    }

    /// The short query set (ids from
    /// [`queries::SHORT_QUERY_BASE_ID`]).
    pub fn short_queries(&self) -> &[Query] {
        &self.short_queries
    }

    /// Documents relevant to `topic`: those drawn from it whose realized
    /// topical fraction reaches the spec threshold.
    pub fn relevant_docnos(&self, topic: usize) -> Vec<&str> {
        self.metas
            .iter()
            .filter(|m| {
                m.topic == Some(topic) && m.topical_fraction >= self.spec.relevance_threshold
            })
            .map(|m| m.docno.as_str())
            .collect()
    }

    /// Renders the full judgment set in TREC qrels format
    /// (`query-id 0 docno 1`), covering both query sets.
    pub fn qrels(&self) -> String {
        let mut out = String::new();
        for q in self.long_queries.iter().chain(&self.short_queries) {
            for docno in self.relevant_docnos(q.topic) {
                out.push_str(&format!("{} 0 {} 1\n", q.id, docno));
            }
        }
        out
    }

    /// Total uncompressed text bytes across all subcollections.
    pub fn text_bytes(&self) -> usize {
        self.subcollections
            .iter()
            .map(Subcollection::text_bytes)
            .sum()
    }
}

/// Samples an index proportional to `weights`.
fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// Document length: mean scaled by a uniform factor in [0.4, 1.6], with a
/// floor of 8 tokens.
fn doc_length<R: Rng + ?Sized>(rng: &mut R, mean: usize) -> usize {
    let factor = rng.gen_range(0.4..1.6);
    ((mean as f64 * factor) as usize).max(8)
}

/// Generates document text of `len` tokens; returns the text and how many
/// tokens came from the topic.
fn generate_text<R: Rng + ?Sized>(
    rng: &mut R,
    len: usize,
    topic: Option<&crate::topics::Topic>,
    neighbor: Option<&crate::topics::Topic>,
    spec: &CorpusSpec,
    background: &Zipf,
) -> (String, usize) {
    let mut text = String::with_capacity(len * 8);
    let mut topical = 0usize;
    let mut sentence_left = rng.gen_range(6..18);
    let mut sentence_start = true;
    for i in 0..len {
        let term = match (topic, neighbor) {
            (Some(t), _) if rng.gen_bool(spec.topic_mix) => {
                topical += 1;
                t.sample(rng)
            }
            (Some(_), Some(n)) if rng.gen_bool(spec.neighbor_mix) => n.sample(rng),
            _ => background.sample(rng),
        };
        let word = word_for(term);
        if sentence_start {
            // Capitalize sentence-initial words (exercises case folding).
            let mut chars = word.chars();
            if let Some(first) = chars.next() {
                text.extend(first.to_uppercase());
                text.push_str(chars.as_str());
            }
            sentence_start = false;
        } else {
            text.push(' ');
            text.push_str(&word);
        }
        sentence_left -= 1;
        if sentence_left == 0 && i + 1 < len {
            text.push('.');
            if rng.gen_bool(0.2) {
                text.push('\n');
            } else {
                text.push(' ');
            }
            sentence_left = rng.gen_range(6..18);
            sentence_start = true;
        }
    }
    text.push_str(".\n");
    (text, topical)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticCorpus {
        SyntheticCorpus::generate(&CorpusSpec::small(11))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(
            a.subcollections()[2].docs[5].text,
            b.subcollections()[2].docs[5].text
        );
        assert_eq!(a.qrels(), b.qrels());
        let c = SyntheticCorpus::generate(&CorpusSpec::small(12));
        assert_ne!(
            a.subcollections()[0].docs[0].text,
            c.subcollections()[0].docs[0].text
        );
    }

    #[test]
    fn spec_counts_are_honoured() {
        let corpus = small();
        let spec = CorpusSpec::small(11);
        assert_eq!(corpus.subcollections().len(), 4);
        for (sub, spec_sub) in corpus.subcollections().iter().zip(&spec.subcollections) {
            assert_eq!(sub.docs.len(), spec_sub.num_docs);
            assert_eq!(sub.name, spec_sub.name);
        }
        assert_eq!(corpus.metas().len(), spec.total_docs());
        assert_eq!(corpus.long_queries().len(), spec.num_long_queries);
        assert_eq!(corpus.short_queries().len(), spec.num_short_queries);
    }

    #[test]
    fn docnos_are_unique_and_prefixed() {
        let corpus = small();
        let mut seen = std::collections::HashSet::new();
        for sub in corpus.subcollections() {
            for d in &sub.docs {
                assert!(d.docno.starts_with(&sub.name));
                assert!(seen.insert(d.docno.clone()), "duplicate {}", d.docno);
            }
        }
    }

    #[test]
    fn every_topic_has_relevant_documents() {
        let corpus = small();
        let mut covered = 0;
        for t in 0..corpus.spec().num_topics {
            if !corpus.relevant_docnos(t).is_empty() {
                covered += 1;
            }
        }
        // With hundreds of topical docs over 12 topics, nearly all topics
        // should be covered.
        assert!(covered >= 10, "only {covered}/12 topics have relevant docs");
    }

    #[test]
    fn relevance_respects_the_threshold() {
        let corpus = small();
        let threshold = corpus.spec().relevance_threshold;
        for t in 0..corpus.spec().num_topics {
            for docno in corpus.relevant_docnos(t) {
                let meta = corpus.metas().iter().find(|m| m.docno == docno).unwrap();
                assert_eq!(meta.topic, Some(t));
                assert!(meta.topical_fraction >= threshold);
            }
        }
    }

    #[test]
    fn broad_collections_cover_more_topics_than_narrow_ones() {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::small(5));
        let topics_in = |sub: usize| -> std::collections::HashSet<usize> {
            corpus
                .metas()
                .iter()
                .filter(|m| m.sub == sub)
                .filter_map(|m| m.topic)
                .collect()
        };
        // AP (sub 0, concentration 0) vs FR (sub 1, concentration 3):
        // FR's topical mass concentrates, so its per-topic doc counts are
        // uneven; measure via max share.
        let share = |sub: usize| {
            let counts = corpus
                .metas()
                .iter()
                .filter(|m| m.sub == sub)
                .filter_map(|m| m.topic)
                .fold(vec![0usize; 12], |mut acc, t| {
                    acc[t] += 1;
                    acc
                });
            let total: usize = counts.iter().sum();
            counts.into_iter().max().unwrap() as f64 / total.max(1) as f64
        };
        assert!(topics_in(0).len() >= topics_in(1).len());
        assert!(
            share(1) > share(0),
            "FR {:.3} vs AP {:.3}",
            share(1),
            share(0)
        );
    }

    #[test]
    fn documents_look_like_text() {
        let corpus = small();
        let text = &corpus.subcollections()[0].docs[0].text;
        assert!(text.contains('.'));
        assert!(text.chars().next().unwrap().is_uppercase());
        assert!(text.split_whitespace().count() >= 8);
    }

    #[test]
    fn qrels_parse_back() {
        let corpus = small();
        let qrels = corpus.qrels();
        assert!(!qrels.is_empty());
        for line in qrels.lines().take(20) {
            let fields: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(fields.len(), 4);
            assert!(fields[0].parse::<u32>().is_ok());
            assert_eq!(fields[3], "1");
        }
    }

    #[test]
    fn text_bytes_is_sum_of_docs() {
        let corpus = small();
        let manual: usize = corpus
            .subcollections()
            .iter()
            .flat_map(|s| &s.docs)
            .map(|d| d.text.len())
            .sum();
        assert_eq!(corpus.text_bytes(), manual);
    }

    #[test]
    fn weighted_sampling_is_proportional() {
        let mut rng = StdRng::seed_from_u64(0);
        let weights = [1.0, 3.0];
        let hits = (0..10_000)
            .filter(|_| sample_weighted(&mut rng, &weights) == 1)
            .count();
        assert!((6_500..8_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn doc_length_has_floor() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(doc_length(&mut rng, 1) >= 8);
        }
    }
}
