//! Deterministic synthetic TREC-like corpus generation.
//!
//! The paper evaluates on TREC disk 2 — one gigabyte of AP, FR, WSJ and
//! ZIFF documents with NIST topics 51–200 (long) and 202–250 (short) and
//! human relevance judgments. That data is licensed and unavailable here,
//! so this crate substitutes a *generative* equivalent whose ground truth
//! is known by construction:
//!
//! * a Zipf-distributed background vocabulary ([`zipf`]);
//! * a set of **topics**, each a skewed distribution over a small term
//!   subset ([`topics`]);
//! * documents drawn from a topic/background mixture, assembled into
//!   TREC SGML with realistic sentence structure ([`generator`]);
//! * four named subcollections with different sizes and *different topic
//!   affinities* — the cross-collection statistics skew is exactly what
//!   separates Central Nothing from Central Vocabulary;
//! * long (~90-term) and short (~10-term) query sets derived from
//!   topics, and relevance judgments derived from each document's actual
//!   generative topic fraction ([`queries`]);
//! * the 43-way alternative split of §4 ([`splits`]).
//!
//! Everything is seeded: the same [`CorpusSpec`] always yields the same
//! corpus, queries and judgments.
//!
//! # Examples
//!
//! ```
//! use teraphim_corpus::{CorpusSpec, SyntheticCorpus};
//!
//! let corpus = SyntheticCorpus::generate(&CorpusSpec::small(7));
//! assert_eq!(corpus.subcollections().len(), 4);
//! assert!(!corpus.short_queries().is_empty());
//! // Same seed, same corpus.
//! let again = SyntheticCorpus::generate(&CorpusSpec::small(7));
//! assert_eq!(
//!     corpus.subcollections()[0].docs[0].text,
//!     again.subcollections()[0].docs[0].text
//! );
//! ```

pub mod generator;
pub mod queries;
pub mod splits;
pub mod topics;
pub mod words;
pub mod zipf;

pub use generator::{CorpusSpec, SubSpec, SyntheticCorpus};
pub use queries::Query;

use teraphim_text::sgml::TrecDoc;

/// One named subcollection (what a librarian manages).
#[derive(Debug, Clone)]
pub struct Subcollection {
    /// Collection name ("AP", "FR", ...).
    pub name: String,
    /// The documents, in indexing order.
    pub docs: Vec<TrecDoc>,
}

impl Subcollection {
    /// Documents as `(docno, text)` string-slice pairs (the form
    /// `teraphim_engine::Collection::from_texts` accepts).
    pub fn as_pairs(&self) -> Vec<(&str, &str)> {
        self.docs
            .iter()
            .map(|d| (d.docno.as_str(), d.text.as_str()))
            .collect()
    }

    /// Total uncompressed text bytes.
    pub fn text_bytes(&self) -> usize {
        self.docs.iter().map(|d| d.text.len()).sum()
    }
}
