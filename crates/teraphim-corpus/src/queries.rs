//! Query generation.
//!
//! The paper splits the TREC queries into a long set (topics 51–200,
//! average 90.4 terms after stopping) and a short set (topics 202–250,
//! average 9.6 terms), and runs its experiments "primarily with the
//! second group". The generator mirrors that: short queries are a topic's
//! most characteristic terms; long queries add the deeper topical
//! vocabulary with repetition, plus background noise words — the way real
//! TREC topic statements repeat and pad their key concepts.

use crate::topics::TopicSet;
use crate::words::word_for;
use crate::zipf::Zipf;
use rand::Rng;

/// First id of the long query set (mirrors TREC topics 51–200).
pub const LONG_QUERY_BASE_ID: u32 = 51;
/// First id of the short query set (mirrors TREC topics 202–250).
pub const SHORT_QUERY_BASE_ID: u32 = 202;

/// One generated query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Query identifier (TREC-style topic number).
    pub id: u32,
    /// The generating topic.
    pub topic: usize,
    /// Query text (space-separated terms).
    pub text: String,
}

/// Generates `count` queries of roughly `target_len` terms, one per topic
/// `0..count`, with ids starting at `base_id`.
///
/// # Panics
///
/// Panics if `count` exceeds the number of topics.
pub fn generate_queries<R: Rng + ?Sized>(
    rng: &mut R,
    topics: &TopicSet,
    count: usize,
    target_len: usize,
    base_id: u32,
) -> Vec<Query> {
    assert!(
        count <= topics.len(),
        "cannot generate {count} queries from {} topics",
        topics.len()
    );
    let noise = Zipf::new(topics.vocab_size(), 1.05);
    (0..count)
        .map(|t| {
            let topic = topics.topic(t);
            let mut terms: Vec<String> = Vec::with_capacity(target_len);
            // Query terms are *sampled* from the topic distribution (with
            // ~15% background noise), not taken from its most probable
            // terms: a real TREC topic asks about one aspect of a
            // subject, and most relevant documents do not contain the
            // topic statement's exact words. Sampling reproduces that —
            // short queries cover a narrow slice of the topic (modest
            // recall), long queries cover it broadly (better recall,
            // as the paper's long-query rows show).
            while terms.len() < target_len {
                let term = if rng.gen_bool(0.15) {
                    noise.sample(rng)
                } else {
                    topic.sample(rng)
                };
                terms.push(word_for(term));
            }
            Query {
                id: base_id + t as u32,
                topic: t,
                text: terms.join(" "),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topics() -> TopicSet {
        TopicSet::generate(8, 40, 2000)
    }

    #[test]
    fn ids_and_topics_are_sequential() {
        let mut rng = StdRng::seed_from_u64(0);
        let qs = generate_queries(&mut rng, &topics(), 8, 10, 202);
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(q.id, 202 + i as u32);
            assert_eq!(q.topic, i);
        }
    }

    #[test]
    fn short_queries_hit_target_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let qs = generate_queries(&mut rng, &topics(), 8, 10, 202);
        for q in &qs {
            let n = q.text.split_whitespace().count();
            assert_eq!(n, 10, "query {}: {n} terms", q.id);
        }
    }

    #[test]
    fn long_queries_are_long_and_topic_heavy() {
        let mut rng = StdRng::seed_from_u64(2);
        let set = topics();
        let qs = generate_queries(&mut rng, &set, 4, 90, 51);
        for q in &qs {
            assert_eq!(q.text.split_whitespace().count(), 90);
            // Most terms should come from the topic.
            let members: std::collections::HashSet<String> = set
                .topic(q.topic)
                .terms()
                .iter()
                .map(|&t| word_for(t))
                .collect();
            let topical = q
                .text
                .split_whitespace()
                .filter(|w| members.contains(*w))
                .count();
            assert!(topical >= 60, "query {} only {topical}/90 topical", q.id);
        }
    }

    #[test]
    fn different_topics_give_different_queries() {
        let mut rng = StdRng::seed_from_u64(3);
        let qs = generate_queries(&mut rng, &topics(), 8, 10, 202);
        for pair in qs.windows(2) {
            assert_ne!(pair[0].text, pair[1].text);
        }
    }

    #[test]
    #[should_panic(expected = "cannot generate")]
    fn too_many_queries_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        generate_queries(&mut rng, &topics(), 9, 10, 202);
    }
}
