//! Alternative subcollection splits.
//!
//! §4 of the paper re-runs the effectiveness experiment with TREC disk 2
//! "broken into 43 subcollections (using a standard division...)", whose
//! sizes ranged "from just over 1000 to just under 10,000 documents" —
//! roughly an order of magnitude of variation. [`split_into`] re-divides
//! a generated corpus the same way: contiguous runs of documents, chunk
//! sizes varying deterministically across the same ~10× range.

use crate::{Subcollection, SyntheticCorpus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Splits the corpus's documents (in global order) into `n` contiguous
/// subcollections with deterministically varying sizes (≈10× spread,
/// mirroring the paper's 43-way division).
///
/// # Panics
///
/// Panics if `n == 0` or the corpus has fewer than `n` documents.
pub fn split_into(corpus: &SyntheticCorpus, n: usize) -> Vec<Subcollection> {
    assert!(n > 0, "cannot split into zero subcollections");
    let all_docs: Vec<_> = corpus
        .subcollections()
        .iter()
        .flat_map(|s| s.docs.iter().cloned())
        .collect();
    assert!(
        all_docs.len() >= n,
        "cannot split {} documents into {n} subcollections",
        all_docs.len()
    );

    // Draw relative weights in [1, 10] (the paper's size spread), then
    // scale to the document count.
    let mut rng = StdRng::seed_from_u64(corpus.spec().seed ^ 0x53504C4954 ^ n as u64);
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..10.0)).collect();
    let total_weight: f64 = weights.iter().sum();

    let mut subs = Vec::with_capacity(n);
    let mut start = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let remaining_subs = n - i;
        let remaining_docs = all_docs.len() - start;
        // Leave at least one document for every later subcollection.
        let ideal = (w / total_weight * all_docs.len() as f64).round() as usize;
        let len = ideal.max(1).min(remaining_docs - (remaining_subs - 1));
        subs.push(Subcollection {
            name: format!("S{i:02}"),
            docs: all_docs[start..start + len].to_vec(),
        });
        start += len;
    }
    // Give any tail to the last subcollection.
    if start < all_docs.len() {
        subs.last_mut()
            .expect("n > 0")
            .docs
            .extend(all_docs[start..].iter().cloned());
    }
    subs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CorpusSpec, SyntheticCorpus};

    fn corpus() -> SyntheticCorpus {
        SyntheticCorpus::generate(&CorpusSpec::small(3))
    }

    #[test]
    fn split_preserves_every_document_in_order() {
        let c = corpus();
        let subs = split_into(&c, 7);
        let original: Vec<&str> = c
            .subcollections()
            .iter()
            .flat_map(|s| s.docs.iter().map(|d| d.docno.as_str()))
            .collect();
        let rejoined: Vec<&str> = subs
            .iter()
            .flat_map(|s| s.docs.iter().map(|d| d.docno.as_str()))
            .collect();
        assert_eq!(original, rejoined);
    }

    #[test]
    fn split_produces_requested_count_with_nonempty_parts() {
        let c = corpus();
        for n in [1usize, 2, 5, 43] {
            let subs = split_into(&c, n);
            assert_eq!(subs.len(), n);
            assert!(subs.iter().all(|s| !s.docs.is_empty()), "n={n}");
        }
    }

    #[test]
    fn split_sizes_vary() {
        let c = corpus();
        let subs = split_into(&c, 10);
        let sizes: Vec<usize> = subs.iter().map(|s| s.docs.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max >= 2 * min, "sizes {sizes:?} too uniform");
    }

    #[test]
    fn split_is_deterministic() {
        let c = corpus();
        let a: Vec<usize> = split_into(&c, 9).iter().map(|s| s.docs.len()).collect();
        let b: Vec<usize> = split_into(&c, 9).iter().map(|s| s.docs.len()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn names_are_unique() {
        let c = corpus();
        let subs = split_into(&c, 12);
        let names: std::collections::HashSet<&str> = subs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn zero_parts_panics() {
        split_into(&corpus(), 0);
    }
}
