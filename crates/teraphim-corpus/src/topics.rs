//! The generative topic model.
//!
//! Each topic is a skewed distribution over a small subset of the
//! vocabulary (its *topical terms*), disjoint from other topics' cores so
//! that relevance has sharp ground truth. Documents mix one topic with
//! the Zipf background; queries sample a topic's highest-probability
//! terms. Because the topical terms of topic `t` are rare in collections
//! that rarely discuss `t`, local `f_t` statistics across subcollections
//! diverge — the exact phenomenon the Central Nothing methodology is
//! exposed to.

use crate::zipf::Zipf;
use rand::Rng;

/// One topic: a distribution over its term subset.
#[derive(Debug, Clone)]
pub struct Topic {
    /// The topic's term ids, most probable first.
    terms: Vec<usize>,
    /// Sampler over positions in `terms` (Zipfian within the topic).
    dist: Zipf,
}

impl Topic {
    /// The topic's terms, most probable first.
    pub fn terms(&self) -> &[usize] {
        &self.terms
    }

    /// The `n` most characteristic terms (used for query construction).
    pub fn top_terms(&self, n: usize) -> &[usize] {
        &self.terms[..n.min(self.terms.len())]
    }

    /// Draws one term id from the topic distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.terms[self.dist.sample(rng)]
    }
}

/// A full topic set over a vocabulary.
#[derive(Debug, Clone)]
pub struct TopicSet {
    topics: Vec<Topic>,
    vocab_size: usize,
}

impl TopicSet {
    /// Generates `num_topics` disjoint topics of `terms_per_topic` terms
    /// each over a vocabulary of `vocab_size`. Equivalent to
    /// [`TopicSet::generate_with_overlap`] with zero overlap.
    ///
    /// # Panics
    ///
    /// Panics if the vocabulary cannot accommodate the requested topics.
    pub fn generate(num_topics: usize, terms_per_topic: usize, vocab_size: usize) -> TopicSet {
        Self::generate_with_overlap(num_topics, terms_per_topic, 0, vocab_size)
    }

    /// Generates `num_topics` topics of `terms_per_topic` terms each,
    /// where consecutive topics share `overlap` terms.
    ///
    /// Topic cores are taken from the *mid-frequency* band of the
    /// vocabulary (ids after the first 5%), mirroring how topical
    /// vocabulary behaves in real text: not stop-word-common, not
    /// hapax-rare. Overlap makes neighbouring topics lexically
    /// confusable — without it, a topical query separates relevant
    /// documents perfectly and every methodology saturates at 100%
    /// effectiveness, which real collections never do.
    ///
    /// # Panics
    ///
    /// Panics if `overlap >= terms_per_topic` or the vocabulary cannot
    /// accommodate the requested topics.
    pub fn generate_with_overlap(
        num_topics: usize,
        terms_per_topic: usize,
        overlap: usize,
        vocab_size: usize,
    ) -> TopicSet {
        Self::generate_full(num_topics, terms_per_topic, overlap, 1.0, vocab_size)
    }

    /// [`TopicSet::generate_with_overlap`] with an explicit within-topic
    /// Zipf exponent. Lower exponents flatten the topic signature:
    /// documents and queries then sample *different* slices of the topic
    /// vocabulary, which is what makes retrieval realistically imperfect
    /// (a steep exponent concentrates every sample on the same few head
    /// terms and effectiveness saturates).
    ///
    /// # Panics
    ///
    /// Panics if `overlap >= terms_per_topic` or the vocabulary cannot
    /// accommodate the requested topics.
    pub fn generate_full(
        num_topics: usize,
        terms_per_topic: usize,
        overlap: usize,
        exponent: f64,
        vocab_size: usize,
    ) -> TopicSet {
        assert!(
            overlap < terms_per_topic,
            "overlap must be smaller than the topic size"
        );
        let stride = terms_per_topic - overlap;
        let reserved = vocab_size / 20; // head of the Zipf curve stays background-only
        let needed = reserved + (num_topics.saturating_sub(1)) * stride + terms_per_topic;
        assert!(
            needed <= vocab_size,
            "vocabulary too small: need {needed} terms, have {vocab_size}"
        );
        let topics = (0..num_topics)
            .map(|t| {
                let start = reserved + t * stride;
                // Interleave so that a topic's *most probable* terms are
                // its private ones and shared terms sit mid-distribution:
                // rank within the window by distance from the window
                // centre's private region.
                let terms: Vec<usize> = (start..start + terms_per_topic).collect();
                Topic {
                    dist: Zipf::new(terms.len(), exponent),
                    terms,
                }
            })
            .collect();
        TopicSet { topics, vocab_size }
    }

    /// Number of topics.
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// True if there are no topics.
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// The vocabulary size the set was generated for.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// The `t`-th topic.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn topic(&self, t: usize) -> &Topic {
        &self.topics[t]
    }

    /// Iterates over the topics.
    pub fn iter(&self) -> impl Iterator<Item = &Topic> {
        self.topics.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn topic_cores_are_disjoint() {
        let set = TopicSet::generate(20, 50, 5000);
        let mut seen = HashSet::new();
        for topic in set.iter() {
            for &term in topic.terms() {
                assert!(seen.insert(term), "term {term} in two topics");
            }
        }
    }

    #[test]
    fn topics_avoid_the_zipf_head() {
        let set = TopicSet::generate(10, 30, 2000);
        let reserved = 2000 / 20;
        for topic in set.iter() {
            assert!(topic.terms().iter().all(|&t| t >= reserved));
        }
    }

    #[test]
    fn samples_come_from_the_topic() {
        let set = TopicSet::generate(5, 40, 1000);
        let mut rng = StdRng::seed_from_u64(3);
        for t in 0..5 {
            let topic = set.topic(t);
            let members: HashSet<usize> = topic.terms().iter().copied().collect();
            for _ in 0..200 {
                assert!(members.contains(&topic.sample(&mut rng)));
            }
        }
    }

    #[test]
    fn sampling_is_skewed_towards_top_terms() {
        let set = TopicSet::generate(1, 100, 1000);
        let topic = set.topic(0);
        let mut rng = StdRng::seed_from_u64(9);
        let first = topic.terms()[0];
        let hits = (0..5000)
            .filter(|_| topic.sample(&mut rng) == first)
            .count();
        // Zipf s=1 over 100 terms: P(rank 0) ≈ 0.19.
        assert!(hits > 500, "top term sampled only {hits}/5000 times");
    }

    #[test]
    fn top_terms_clamps() {
        let set = TopicSet::generate(1, 10, 1000);
        assert_eq!(set.topic(0).top_terms(3).len(), 3);
        assert_eq!(set.topic(0).top_terms(99).len(), 10);
    }

    #[test]
    #[should_panic(expected = "vocabulary too small")]
    fn oversubscribed_vocabulary_panics() {
        TopicSet::generate(100, 100, 1000);
    }
}
