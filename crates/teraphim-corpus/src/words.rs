//! Deterministic synthetic word forms.
//!
//! Every term id maps to a pronounceable word built from
//! consonant-vowel syllables, so generated documents look like text (and
//! exercise the tokenizer, stemmer and word-based compressor
//! realistically) while remaining collision-free: the mapping
//! `term id → word` is injective before analysis.

/// Consonant inventory for syllable construction.
const CONSONANTS: &[&str] = &[
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "br",
    "ch", "cl", "dr", "gr", "pl", "pr", "sh", "st", "tr",
];
/// Vowel inventory.
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"];

/// Number of distinct syllables.
pub const SYLLABLES: usize = CONSONANTS.len() * VOWELS.len(); // 234

/// Returns the synthetic word for a term id.
///
/// Words are 2–4 syllables: the id is written in base [`SYLLABLES`] and
/// each digit becomes one syllable, with a leading syllable count marker
/// folded in so that different lengths never collide.
///
/// # Examples
///
/// ```
/// use teraphim_corpus::words::word_for;
///
/// assert_eq!(word_for(0), word_for(0));
/// assert_ne!(word_for(1), word_for(2));
/// assert!(word_for(12345).chars().all(|c| c.is_ascii_lowercase()));
/// ```
pub fn word_for(term: usize) -> String {
    let mut digits = Vec::new();
    let mut rest = term;
    loop {
        digits.push(rest % SYLLABLES);
        rest /= SYLLABLES;
        if rest == 0 {
            break;
        }
    }
    // Minimum two syllables so words never collide with single-letter
    // tokens or common English stopwords.
    while digits.len() < 2 {
        digits.push(0);
    }
    let mut word = String::new();
    for &d in digits.iter().rev() {
        word.push_str(CONSONANTS[d % CONSONANTS.len()]);
        word.push_str(VOWELS[d / CONSONANTS.len()]);
    }
    word
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn words_are_unique_over_a_large_range() {
        let mut seen = HashSet::new();
        for t in 0..100_000 {
            assert!(seen.insert(word_for(t)), "collision at term {t}");
        }
    }

    #[test]
    fn words_are_lowercase_ascii_letters() {
        for t in [0, 1, 233, 234, 54_755, 1_000_000] {
            let w = word_for(t);
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
            assert!(w.len() >= 3, "{w}");
        }
    }

    #[test]
    fn words_survive_the_default_analyzer() {
        // A sample of generated words must tokenize to themselves (modulo
        // stemming) and not be stopped.
        let analyzer = teraphim_text::Analyzer::default();
        for t in (0..5000).step_by(97) {
            let w = word_for(t);
            let analyzed = analyzer.analyze(&w);
            assert_eq!(analyzed.len(), 1, "word {w} did not survive analysis");
        }
    }

    #[test]
    fn mapping_is_deterministic() {
        assert_eq!(word_for(42), word_for(42));
    }
}
