//! Zipf-distributed sampling over a finite vocabulary.
//!
//! Term frequencies in natural-language text famously follow Zipf's law:
//! the `r`-th most frequent term has probability proportional to
//! `1 / r^s` with `s ≈ 1`. The background (non-topical) portion of every
//! synthetic document is drawn from this distribution, which is what
//! gives the generated collections realistic vocabulary growth, inverted
//! list length skew, and compression behaviour.

use rand::Rng;

/// A precomputed Zipf sampler over ranks `0..n`.
///
/// Sampling is by binary search over the cumulative distribution:
/// `O(log n)` per draw, fully deterministic given the RNG.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[r]` = P(rank ≤ r).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty support");
        assert!(s.is_finite() && s > 0.0, "zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks in the support.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// Probability of rank `r`.
    pub fn probability(&self, r: usize) -> f64 {
        if r >= self.cdf.len() {
            return 0.0;
        }
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        // partition_point returns the first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_ends_at_one() {
        for n in [1usize, 2, 10, 1000] {
            let z = Zipf::new(n, 1.0);
            assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn probabilities_decrease_with_rank() {
        let z = Zipf::new(100, 1.0);
        for r in 1..100 {
            assert!(z.probability(r) <= z.probability(r - 1) + 1e-15, "rank {r}");
        }
        assert_eq!(z.probability(100), 0.0);
    }

    #[test]
    fn rank_zero_is_most_likely_empirically() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max);
        // Head mass: P(rank 0) at s=1, n=50 is ~0.22.
        assert!(counts[0] > 3_000, "head count {}", counts[0]);
        // The tail is still reachable.
        assert!(counts[40..].iter().any(|&c| c > 0));
    }

    #[test]
    fn empirical_frequencies_match_theory() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut counts = [0u32; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let expected = z.probability(r) * n as f64;
            let got = f64::from(count);
            assert!(
                (got - expected).abs() < 5.0 * expected.sqrt() + 5.0,
                "rank {r}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn single_rank_support() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn higher_exponent_concentrates_mass() {
        let flat = Zipf::new(100, 0.5);
        let steep = Zipf::new(100, 2.0);
        assert!(steep.probability(0) > flat.probability(0));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(1000, 1.1);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    #[should_panic(expected = "non-empty support")]
    fn empty_support_panics() {
        Zipf::new(0, 1.0);
    }
}
