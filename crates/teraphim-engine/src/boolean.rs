//! Boolean query evaluation.
//!
//! The paper contrasts ranked queries with Boolean queries, whose
//! distributed evaluation is trivial ("the overall result set is simply
//! the union of the individual result sets"). TERAPHIM supports both; the
//! Boolean form here is a conventional `AND` / `OR` / `NOT` expression
//! language with parentheses:
//!
//! ```text
//! cat AND (dog OR bird) AND NOT fish
//! ```
//!
//! Terms pass through the collection's analyzer, so `Cats` matches the
//! indexed stem `cat`.

use crate::EngineError;
use teraphim_index::{DocId, InvertedIndex};
use teraphim_text::Analyzer;

/// A parsed Boolean expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A single query term (analyzed before matching).
    Term(String),
    /// Both sides must match.
    And(Box<Expr>, Box<Expr>),
    /// Either side matches.
    Or(Box<Expr>, Box<Expr>),
    /// Complement with respect to the whole collection.
    Not(Box<Expr>),
}

/// Parses an expression with the grammar (lowest precedence first):
///
/// ```text
/// or   := and ("OR" and)*
/// and  := unary ("AND" unary)*
/// unary:= "NOT" unary | "(" or ")" | TERM
/// ```
///
/// # Errors
///
/// Returns [`EngineError::QuerySyntax`] for malformed input.
pub fn parse(input: &str) -> Result<Expr, EngineError> {
    let tokens = lex(input);
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.parse_or()?;
    if parser.pos != parser.tokens.len() {
        return Err(EngineError::QuerySyntax(format!(
            "unexpected trailing input at token {}",
            parser.pos
        )));
    }
    Ok(expr)
}

/// Evaluates `expr` against `index`, returning matching documents in
/// increasing id order.
///
/// # Errors
///
/// Returns [`EngineError::Corrupt`] if an inverted list fails to decode.
pub fn evaluate(
    expr: &Expr,
    index: &InvertedIndex,
    analyzer: &Analyzer,
) -> Result<Vec<DocId>, EngineError> {
    match expr {
        Expr::Term(raw) => {
            // Analyze the term the same way documents were indexed; a
            // term that analyzes to nothing (e.g. a stop word) matches no
            // documents.
            let analyzed = analyzer.analyze(raw);
            let Some(term) = analyzed.first() else {
                return Ok(Vec::new());
            };
            match index.vocab().term_id(term) {
                Some(id) => {
                    let mut docs = Vec::with_capacity(index.postings(id).len() as usize);
                    for posting in index.postings(id).iter() {
                        docs.push(posting?.doc);
                    }
                    Ok(docs)
                }
                None => Ok(Vec::new()),
            }
        }
        Expr::And(a, b) => Ok(intersect(
            &evaluate(a, index, analyzer)?,
            &evaluate(b, index, analyzer)?,
        )),
        Expr::Or(a, b) => Ok(union(
            &evaluate(a, index, analyzer)?,
            &evaluate(b, index, analyzer)?,
        )),
        Expr::Not(inner) => {
            let matched = evaluate(inner, index, analyzer)?;
            Ok(complement(&matched, index.num_docs() as DocId))
        }
    }
}

fn intersect(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn union(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn complement(matched: &[DocId], num_docs: DocId) -> Vec<DocId> {
    let mut out = Vec::with_capacity(num_docs as usize - matched.len());
    let mut m = matched.iter().peekable();
    for doc in 0..num_docs {
        if m.peek() == Some(&&doc) {
            m.next();
        } else {
            out.push(doc);
        }
    }
    out
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    And,
    Or,
    Not,
    LParen,
    RParen,
    Term(String),
}

fn lex(input: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '(' => {
                tokens.push(Token::LParen);
                chars.next();
            }
            ')' => {
                tokens.push(Token::RParen);
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            _ => {
                let mut word = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_whitespace() || d == '(' || d == ')' {
                        break;
                    }
                    word.push(d);
                    chars.next();
                }
                match word.as_str() {
                    "AND" => tokens.push(Token::And),
                    "OR" => tokens.push(Token::Or),
                    "NOT" => tokens.push(Token::Not),
                    _ => tokens.push(Token::Term(word)),
                }
            }
        }
    }
    tokens
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn parse_or(&mut self) -> Result<Expr, EngineError> {
        let mut left = self.parse_and()?;
        while self.peek() == Some(&Token::Or) {
            self.pos += 1;
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, EngineError> {
        let mut left = self.parse_unary()?;
        while self.peek() == Some(&Token::And) {
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, EngineError> {
        match self.peek().cloned() {
            Some(Token::Not) => {
                self.pos += 1;
                Ok(Expr::Not(Box::new(self.parse_unary()?)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let inner = self.parse_or()?;
                if self.peek() != Some(&Token::RParen) {
                    return Err(EngineError::QuerySyntax("missing ')'".into()));
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(Token::Term(t)) => {
                self.pos += 1;
                Ok(Expr::Term(t))
            }
            Some(tok) => Err(EngineError::QuerySyntax(format!(
                "unexpected token {tok:?}"
            ))),
            None => Err(EngineError::QuerySyntax("unexpected end of query".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teraphim_index::IndexBuilder;

    fn setup() -> (InvertedIndex, Analyzer) {
        let analyzer = Analyzer::raw();
        let docs: &[&str] = &[
            "cat dog",      // 0
            "cat",          // 1
            "dog bird",     // 2
            "fish",         // 3
            "cat dog fish", // 4
        ];
        let mut b = IndexBuilder::new();
        for d in docs {
            b.add_document(&analyzer.analyze(d));
        }
        (b.build(), analyzer)
    }

    fn run(query: &str) -> Vec<DocId> {
        let (ix, analyzer) = setup();
        evaluate(&parse(query).unwrap(), &ix, &analyzer).unwrap()
    }

    #[test]
    fn single_term() {
        assert_eq!(run("cat"), vec![0, 1, 4]);
        assert_eq!(run("fish"), vec![3, 4]);
        assert_eq!(run("zebra"), Vec::<DocId>::new());
    }

    #[test]
    fn and_intersects() {
        assert_eq!(run("cat AND dog"), vec![0, 4]);
        assert_eq!(run("cat AND bird"), Vec::<DocId>::new());
    }

    #[test]
    fn or_unions() {
        assert_eq!(run("bird OR fish"), vec![2, 3, 4]);
    }

    #[test]
    fn not_complements() {
        assert_eq!(run("NOT cat"), vec![2, 3]);
        assert_eq!(run("NOT zebra"), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        // cat OR dog AND fish == cat OR (dog AND fish)
        assert_eq!(run("cat OR dog AND fish"), vec![0, 1, 4]);
        // (cat OR dog) AND fish
        assert_eq!(run("(cat OR dog) AND fish"), vec![4]);
    }

    #[test]
    fn nested_parens_and_not() {
        assert_eq!(run("(cat AND dog) AND NOT fish"), vec![0]);
        assert_eq!(run("NOT (cat OR dog OR fish)"), Vec::<DocId>::new());
    }

    #[test]
    fn double_negation() {
        assert_eq!(run("NOT NOT cat"), vec![0, 1, 4]);
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse("").is_err());
        assert!(parse("cat AND").is_err());
        assert!(parse("(cat").is_err());
        assert!(parse("cat dog").is_err()); // no implicit operator
        assert!(parse(")cat(").is_err());
        assert!(parse("AND cat").is_err());
    }

    #[test]
    fn analyzer_is_applied_to_terms() {
        let analyzer = Analyzer::default(); // stems
        let mut b = IndexBuilder::new();
        b.add_document(&analyzer.analyze("running dogs"));
        let ix = b.build();
        let hits = evaluate(&parse("Dogs").unwrap(), &ix, &analyzer).unwrap();
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn stopword_terms_match_nothing() {
        let analyzer = Analyzer::default();
        let mut b = IndexBuilder::new();
        b.add_document(&analyzer.analyze("the cat"));
        let ix = b.build();
        let hits = evaluate(&parse("the").unwrap(), &ix, &analyzer).unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn set_op_helpers() {
        assert_eq!(intersect(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(union(&[1, 3], &[2, 3, 9]), vec![1, 2, 3, 9]);
        assert_eq!(complement(&[0, 2], 4), vec![1, 3]);
        assert_eq!(complement(&[], 2), vec![0, 1]);
        assert_eq!(intersect(&[], &[1]), Vec::<DocId>::new());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn set_ops_match_btreeset_semantics(
            a in proptest::collection::btree_set(0u32..200, 0..50),
            b in proptest::collection::btree_set(0u32..200, 0..50),
        ) {
            let av: Vec<DocId> = a.iter().copied().collect();
            let bv: Vec<DocId> = b.iter().copied().collect();
            let expected_and: Vec<DocId> = a.intersection(&b).copied().collect();
            let expected_or: Vec<DocId> = a.union(&b).copied().collect();
            prop_assert_eq!(intersect(&av, &bv), expected_and);
            prop_assert_eq!(union(&av, &bv), expected_or);
        }

        #[test]
        fn complement_is_involutive(
            a in proptest::collection::btree_set(0u32..100, 0..40),
        ) {
            let av: Vec<DocId> = a.iter().copied().collect();
            let twice = complement(&complement(&av, 100), 100);
            prop_assert_eq!(twice, av);
        }

        #[test]
        fn parser_never_panics(input in "\\PC{0,100}") {
            let _ = parse(&input);
        }
    }
}
