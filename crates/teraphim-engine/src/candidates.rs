//! Candidate-restricted scoring for the Central Index methodology.
//!
//! A CI librarian receives a list of candidate documents (the expanded
//! groups) plus global query weights, and must "consult its local index
//! to determine a similarity value for that document". Using the
//! self-indexing skip cursors from `teraphim-index`, only the blocks of
//! each inverted list that could contain a candidate are decoded — the
//! mechanism the paper credits with cutting librarian CPU cost "by a
//! factor of two or more" at small `k'`.

use crate::ranking::{RankScratch, ScoredDoc, WeightedTerm};
use crate::EngineError;
use teraphim_index::similarity::{query_norm, w_dt};
use teraphim_index::{DocId, InvertedIndex};

/// Scores exactly `candidates` (any order, duplicates tolerated) against
/// the weighted query.
///
/// Returns `(scores, postings_decoded)`. The score vector has one entry
/// per *distinct* candidate, in increasing document order; documents
/// containing none of the query terms score 0.0. `postings_decoded`
/// counts index postings actually decompressed, the unit of the CPU cost
/// model.
///
/// # Errors
///
/// Returns [`EngineError::Corrupt`] if an inverted list fails to decode.
pub fn score_candidates(
    index: &mut InvertedIndex,
    terms: &[WeightedTerm],
    candidates: &[DocId],
) -> Result<(Vec<ScoredDoc>, u64), EngineError> {
    let qnorm = query_norm(&terms.iter().map(|t| t.w_qt).collect::<Vec<_>>());
    score_candidates_with_norm(index, terms, qnorm, candidates)
}

/// [`score_candidates`] with an explicit query norm (see
/// `ranking::rank_with_norm` for why distributed scoring needs it).
///
/// # Errors
///
/// Returns [`EngineError::Corrupt`] if an inverted list fails to decode.
pub fn score_candidates_with_norm(
    index: &mut InvertedIndex,
    terms: &[WeightedTerm],
    qnorm: f64,
    candidates: &[DocId],
) -> Result<(Vec<ScoredDoc>, u64), EngineError> {
    score_candidates_with_norm_scratch(index, terms, qnorm, candidates, &mut RankScratch::new())
}

/// [`score_candidates_with_norm`] reusing caller-owned scratch buffers
/// (the sorted-candidate and partial-sum vectors) across calls.
///
/// # Errors
///
/// Returns [`EngineError::Corrupt`] if an inverted list fails to decode.
pub fn score_candidates_with_norm_scratch(
    index: &mut InvertedIndex,
    terms: &[WeightedTerm],
    qnorm: f64,
    candidates: &[DocId],
    scratch: &mut RankScratch,
) -> Result<(Vec<ScoredDoc>, u64), EngineError> {
    let sorted = &mut scratch.candidates;
    sorted.clear();
    sorted.extend_from_slice(candidates);
    sorted.sort_unstable();
    sorted.dedup();

    let sums = &mut scratch.sums;
    sums.clear();
    sums.resize(sorted.len(), 0.0);
    let mut decoded = 0u64;
    for wt in terms {
        if wt.w_qt == 0.0 {
            continue;
        }
        let mut cursor = index.skip_cursor(wt.term);
        for (i, &doc) in sorted.iter().enumerate() {
            match cursor.seek(doc)? {
                Some(p) if p.doc == doc => {
                    sums[i] += wt.w_qt * w_dt(u64::from(p.f_dt));
                }
                Some(_) => {}
                None => break,
            }
        }
        decoded += cursor.decoded();
    }

    let scores = sorted
        .iter()
        .zip(sums.iter())
        .map(|(&doc, &sum)| {
            let wd = index.weights().weight(doc);
            let score = if wd > 0.0 && qnorm > 0.0 {
                sum / (wd * qnorm)
            } else {
                0.0
            };
            ScoredDoc { doc, score }
        })
        .collect();
    Ok((scores, decoded))
}

/// Scores candidates by decoding lists in full (no skipping) — the
/// configuration the paper actually benchmarked ("we did not employ our
/// skipping mechanism"), kept for the ablation comparison.
///
/// # Errors
///
/// Returns [`EngineError::Corrupt`] if an inverted list fails to decode.
pub fn score_candidates_full_scan(
    index: &InvertedIndex,
    terms: &[WeightedTerm],
    candidates: &[DocId],
) -> Result<(Vec<ScoredDoc>, u64), EngineError> {
    let qnorm = query_norm(&terms.iter().map(|t| t.w_qt).collect::<Vec<_>>());
    score_candidates_full_scan_with_norm(index, terms, qnorm, candidates)
}

/// [`score_candidates_full_scan`] with an explicit query norm.
///
/// # Errors
///
/// Returns [`EngineError::Corrupt`] if an inverted list fails to decode.
pub fn score_candidates_full_scan_with_norm(
    index: &InvertedIndex,
    terms: &[WeightedTerm],
    qnorm: f64,
    candidates: &[DocId],
) -> Result<(Vec<ScoredDoc>, u64), EngineError> {
    let mut sorted: Vec<DocId> = candidates.to_vec();
    sorted.sort_unstable();
    sorted.dedup();

    let mut sums = vec![0.0f64; sorted.len()];
    let mut decoded = 0u64;
    for wt in terms {
        if wt.w_qt == 0.0 {
            continue;
        }
        for posting in index.postings(wt.term).iter() {
            let posting = posting?;
            decoded += 1;
            if let Ok(i) = sorted.binary_search(&posting.doc) {
                sums[i] += wt.w_qt * w_dt(u64::from(posting.f_dt));
            }
        }
    }

    let scores = sorted
        .into_iter()
        .zip(sums)
        .map(|(doc, sum)| {
            let wd = index.weights().weight(doc);
            let score = if wd > 0.0 && qnorm > 0.0 {
                sum / (wd * qnorm)
            } else {
                0.0
            };
            ScoredDoc { doc, score }
        })
        .collect();
    Ok((scores, decoded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::{local_weights, rank_all};
    use teraphim_index::IndexBuilder;

    fn index_of(docs: &[&[&str]]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for d in docs {
            let terms: Vec<String> = d.iter().map(|s| (*s).to_owned()).collect();
            b.add_document(&terms);
        }
        b.build()
    }

    fn weights_for(ix: &InvertedIndex, terms: &[&str]) -> Vec<WeightedTerm> {
        let pairs: Vec<(teraphim_index::TermId, u32)> = terms
            .iter()
            .filter_map(|t| ix.vocab().term_id(t).map(|id| (id, 1u32)))
            .collect();
        local_weights(ix, &pairs)
    }

    #[test]
    fn candidate_scores_equal_full_ranking_scores() {
        let mut ix = index_of(&[
            &["cat", "dog"],
            &["cat"],
            &["dog", "dog", "bird"],
            &["emu"],
            &["cat", "bird"],
        ]);
        let w = weights_for(&ix, &["cat", "bird"]);
        let full = rank_all(&ix, &w);
        let (scored, _) = score_candidates(&mut ix, &w, &[0, 1, 2, 3, 4]).unwrap();
        for s in &scored {
            let expected = full
                .iter()
                .find(|f| f.doc == s.doc)
                .map_or(0.0, |f| f.score);
            assert!((s.score - expected).abs() < 1e-12, "doc {}", s.doc);
        }
    }

    #[test]
    fn skipped_and_full_scan_agree() {
        let docs: Vec<Vec<String>> = (0..500)
            .map(|i| {
                let mut d = vec![format!("w{}", i % 7)];
                if i % 3 == 0 {
                    d.push("triple".to_owned());
                }
                d
            })
            .collect();
        let mut b = IndexBuilder::new();
        for d in &docs {
            b.add_document(d);
        }
        let mut ix = b.build();
        let w = weights_for(&ix, &["triple", "w3"]);
        let candidates: Vec<DocId> = (0..500).step_by(17).collect();
        let (skipped, dec_skip) = score_candidates(&mut ix, &w, &candidates).unwrap();
        let (full, dec_full) = score_candidates_full_scan(&ix, &w, &candidates).unwrap();
        assert_eq!(skipped.len(), full.len());
        for (a, b) in skipped.iter().zip(&full) {
            assert_eq!(a.doc, b.doc);
            assert!((a.score - b.score).abs() < 1e-12);
        }
        assert!(
            dec_skip < dec_full,
            "skipping decoded {dec_skip} vs full {dec_full}"
        );
    }

    #[test]
    fn duplicates_and_order_are_normalized() {
        let mut ix = index_of(&[&["a"], &["a", "b"]]);
        let w = weights_for(&ix, &["a"]);
        let (scored, _) = score_candidates(&mut ix, &w, &[1, 0, 1, 0]).unwrap();
        assert_eq!(scored.len(), 2);
        assert_eq!(scored[0].doc, 0);
        assert_eq!(scored[1].doc, 1);
    }

    #[test]
    fn nonmatching_candidates_score_zero() {
        let mut ix = index_of(&[&["a"], &["b"], &["c"]]);
        let w = weights_for(&ix, &["a"]);
        let (scored, _) = score_candidates(&mut ix, &w, &[1, 2]).unwrap();
        assert!(scored.iter().all(|s| s.score == 0.0));
    }

    #[test]
    fn empty_candidates_give_empty_scores() {
        let mut ix = index_of(&[&["a"]]);
        let w = weights_for(&ix, &["a"]);
        let (scored, decoded) = score_candidates(&mut ix, &w, &[]).unwrap();
        assert!(scored.is_empty());
        assert_eq!(decoded, 0);
    }

    #[test]
    fn empty_query_scores_all_zero() {
        let mut ix = index_of(&[&["a"], &["b"]]);
        let (scored, _) = score_candidates(&mut ix, &[], &[0, 1]).unwrap();
        assert_eq!(scored.len(), 2);
        assert!(scored.iter().all(|s| s.score == 0.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ranking::local_weights;
    use proptest::prelude::*;
    use teraphim_index::IndexBuilder;

    proptest! {
        #[test]
        fn skip_and_full_scan_always_agree(
            docs in proptest::collection::vec(
                proptest::collection::vec("[a-e]", 1..6),
                1..60,
            ),
            candidate_seed in proptest::collection::vec(0u32..60, 0..20),
        ) {
            let mut b = IndexBuilder::new();
            for d in &docs {
                b.add_document(d);
            }
            let mut ix = b.build();
            let n = docs.len() as u32;
            let candidates: Vec<DocId> =
                candidate_seed.into_iter().map(|c| c % n.max(1)).collect();
            let terms: Vec<(teraphim_index::TermId, u32)> =
                ix.vocab().iter().map(|(id, _)| (id, 1u32)).collect();
            let w = local_weights(&ix, &terms);
            let (skipped, _) = score_candidates(&mut ix, &w, &candidates).unwrap();
            let (full, _) = score_candidates_full_scan(&ix, &w, &candidates).unwrap();
            prop_assert_eq!(skipped.len(), full.len());
            for (a, b) in skipped.iter().zip(&full) {
                prop_assert_eq!(a.doc, b.doc);
                prop_assert!((a.score - b.score).abs() < 1e-12);
            }
        }
    }
}
