//! The compressed document store.
//!
//! MG stores all document text compressed with a word-based model
//! (`teraphim_compress::textcomp`), which TERAPHIM exploits twice: disk
//! space, and the paper's observation that compression "is facilitated in
//! TERAPHIM since all documents are stored compressed" when transmitting
//! answer documents over the network. Accordingly the store exposes both
//! decompressed text (for display) and the raw compressed bytes (for
//! transfer-cost accounting and wire shipping).

use crate::EngineError;
use teraphim_compress::textcomp::TextModel;
use teraphim_index::DocId;
use teraphim_text::sgml::TrecDoc;

/// Compressed storage for a collection's documents.
#[derive(Debug)]
pub struct DocStore {
    model: TextModel,
    docnos: Vec<String>,
    compressed: Vec<Vec<u8>>,
    raw_bytes_total: usize,
}

impl DocStore {
    /// Builds the store, training the compression model on the collection
    /// itself (semi-static modelling, as in MG).
    pub fn build(docs: &[TrecDoc]) -> Self {
        let model = TextModel::train(docs.iter().map(|d| d.text.as_str()))
            .unwrap_or_else(|_| TextModel::train(["x"]).expect("non-empty alphabet"));
        let compressed: Vec<Vec<u8>> = docs.iter().map(|d| model.compress(&d.text)).collect();
        let raw_bytes_total = docs.iter().map(|d| d.text.len()).sum();
        DocStore {
            model,
            docnos: docs.iter().map(|d| d.docno.clone()).collect(),
            compressed,
            raw_bytes_total,
        }
    }

    /// Number of documents stored.
    pub fn len(&self) -> usize {
        self.docnos.len()
    }

    /// True if the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docnos.is_empty()
    }

    /// The external identifier of `doc`.
    ///
    /// # Panics
    ///
    /// Panics if `doc` is out of range.
    pub fn docno(&self, doc: DocId) -> &str {
        &self.docnos[doc as usize]
    }

    /// The external identifier of `doc`, or `None` when out of range.
    pub fn docno_checked(&self, doc: DocId) -> Option<&str> {
        self.docnos.get(doc as usize).map(String::as_str)
    }

    /// Looks up a document by its external identifier (linear scan; used
    /// by tests and tooling, not the query path).
    pub fn doc_id(&self, docno: &str) -> Option<DocId> {
        self.docnos
            .iter()
            .position(|d| d == docno)
            .map(|i| i as DocId)
    }

    /// The compressed bytes of `doc` — what a librarian actually puts on
    /// the wire.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownDocument`] for out-of-range ids.
    pub fn compressed_bytes(&self, doc: DocId) -> Result<&[u8], EngineError> {
        self.compressed
            .get(doc as usize)
            .map(Vec::as_slice)
            .ok_or(EngineError::UnknownDocument(doc))
    }

    /// Fetches and decompresses one document.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownDocument`] for out-of-range ids, or
    /// [`EngineError::Corrupt`] if decompression fails.
    pub fn fetch(&self, doc: DocId) -> Result<String, EngineError> {
        let bytes = self.compressed_bytes(doc)?;
        self.model
            .decompress(bytes)
            .map_err(|_| EngineError::Corrupt("document decompression failed"))
    }

    /// Decompresses a document's wire bytes with this store's model (the
    /// receptionist side of a compressed transfer; valid because all
    /// TERAPHIM components share vocabulary and models).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Corrupt`] if the bytes do not decode.
    pub fn decompress_external(&self, bytes: &[u8]) -> Result<String, EngineError> {
        self.model
            .decompress(bytes)
            .map_err(|_| EngineError::Corrupt("document decompression failed"))
    }

    /// Total compressed size of all documents.
    pub fn compressed_bytes_total(&self) -> usize {
        self.compressed.iter().map(Vec::len).sum()
    }

    /// Total uncompressed size of all documents.
    pub fn raw_bytes_total(&self) -> usize {
        self.raw_bytes_total
    }

    /// Mean uncompressed document size in bytes (the paper quotes "over
    /// two kilobytes" for TREC).
    pub fn mean_doc_bytes(&self) -> f64 {
        if self.docnos.is_empty() {
            return 0.0;
        }
        self.raw_bytes_total as f64 / self.docnos.len() as f64
    }

    /// Appends documents, compressing them with the *existing* model —
    /// novel words travel through the escape channel, so no retraining
    /// (and no recompression of old documents) is needed. This is what
    /// makes librarian-local update cheap.
    pub fn append(&mut self, docs: &[TrecDoc]) {
        for doc in docs {
            self.compressed.push(self.model.compress(&doc.text));
            self.docnos.push(doc.docno.clone());
            self.raw_bytes_total += doc.text.len();
        }
    }

    /// Serializes the store (model, identifiers, compressed documents).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let model = self.model.to_bytes();
        out.extend_from_slice(&(model.len() as u32).to_le_bytes());
        out.extend_from_slice(&model);
        out.extend_from_slice(&(self.raw_bytes_total as u64).to_le_bytes());
        out.extend_from_slice(&(self.docnos.len() as u32).to_le_bytes());
        for (docno, doc) in self.docnos.iter().zip(&self.compressed) {
            out.extend_from_slice(&(docno.len() as u32).to_le_bytes());
            out.extend_from_slice(docno.as_bytes());
            out.extend_from_slice(&(doc.len() as u32).to_le_bytes());
            out.extend_from_slice(doc);
        }
        out
    }

    /// Reconstructs a store serialized by [`DocStore::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Corrupt`] on truncation or corruption.
    pub fn from_bytes(bytes: &[u8]) -> Result<DocStore, EngineError> {
        fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], EngineError> {
            let slice = bytes
                .get(*pos..*pos + n)
                .ok_or(EngineError::Corrupt("document store truncated"))?;
            *pos += n;
            Ok(slice)
        }
        fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, EngineError> {
            Ok(u32::from_le_bytes(
                take(bytes, pos, 4)?.try_into().expect("4 bytes"),
            ))
        }
        let mut pos = 0usize;
        let model_len = take_u32(bytes, &mut pos)? as usize;
        let model = TextModel::from_bytes(take(bytes, &mut pos, model_len)?)
            .map_err(|_| EngineError::Corrupt("document store model"))?;
        let raw_bytes_total =
            u64::from_le_bytes(take(bytes, &mut pos, 8)?.try_into().expect("8 bytes")) as usize;
        let count = take_u32(bytes, &mut pos)? as usize;
        let mut docnos = Vec::with_capacity(count.min(1 << 24));
        let mut compressed = Vec::with_capacity(count.min(1 << 24));
        for _ in 0..count {
            let len = take_u32(bytes, &mut pos)? as usize;
            let docno = std::str::from_utf8(take(bytes, &mut pos, len)?)
                .map_err(|_| EngineError::Corrupt("docno is not UTF-8"))?
                .to_owned();
            let len = take_u32(bytes, &mut pos)? as usize;
            let doc = take(bytes, &mut pos, len)?.to_vec();
            docnos.push(docno);
            compressed.push(doc);
        }
        if pos != bytes.len() {
            return Err(EngineError::Corrupt("trailing bytes after document store"));
        }
        Ok(DocStore {
            model,
            docnos,
            compressed,
            raw_bytes_total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<TrecDoc> {
        vec![
            TrecDoc {
                docno: "A-1".into(),
                text: "the cat sat on the mat and the cat purred".into(),
            },
            TrecDoc {
                docno: "A-2".into(),
                text: "a second document about dogs and cats".into(),
            },
            TrecDoc {
                docno: "A-3".into(),
                text: String::new(),
            },
        ]
    }

    #[test]
    fn fetch_roundtrips_exact_text() {
        let store = DocStore::build(&docs());
        for (i, d) in docs().iter().enumerate() {
            assert_eq!(store.fetch(i as DocId).unwrap(), d.text);
        }
    }

    #[test]
    fn docno_lookup_both_ways() {
        let store = DocStore::build(&docs());
        assert_eq!(store.docno(1), "A-2");
        assert_eq!(store.doc_id("A-2"), Some(1));
        assert_eq!(store.doc_id("missing"), None);
    }

    #[test]
    fn unknown_doc_is_an_error() {
        let store = DocStore::build(&docs());
        assert!(matches!(
            store.fetch(99),
            Err(EngineError::UnknownDocument(99))
        ));
        assert!(store.compressed_bytes(99).is_err());
    }

    #[test]
    fn compression_reduces_repetitive_collections() {
        let repeated: Vec<TrecDoc> = (0..50)
            .map(|i| TrecDoc {
                docno: format!("R-{i}"),
                text: "alpha beta gamma delta epsilon zeta eta theta ".repeat(20),
            })
            .collect();
        let store = DocStore::build(&repeated);
        assert!(store.compressed_bytes_total() < store.raw_bytes_total() / 2);
    }

    #[test]
    fn external_decompression_matches_fetch() {
        let store = DocStore::build(&docs());
        let wire = store.compressed_bytes(0).unwrap().to_vec();
        assert_eq!(
            store.decompress_external(&wire).unwrap(),
            store.fetch(0).unwrap()
        );
    }

    #[test]
    fn empty_store() {
        let store = DocStore::build(&[]);
        assert!(store.is_empty());
        assert_eq!(store.mean_doc_bytes(), 0.0);
        assert_eq!(store.compressed_bytes_total(), 0);
    }

    #[test]
    fn store_serialization_roundtrips() {
        let store = DocStore::build(&docs());
        let restored = DocStore::from_bytes(&store.to_bytes()).unwrap();
        assert_eq!(restored.len(), store.len());
        assert_eq!(restored.raw_bytes_total(), store.raw_bytes_total());
        for d in 0..store.len() as DocId {
            assert_eq!(restored.docno(d), store.docno(d));
            assert_eq!(restored.fetch(d).unwrap(), store.fetch(d).unwrap());
        }
    }

    #[test]
    fn store_deserialization_rejects_truncation() {
        let store = DocStore::build(&docs());
        let bytes = store.to_bytes();
        for cut in [0, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(DocStore::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn mean_doc_bytes() {
        let store = DocStore::build(&docs());
        let expected = docs().iter().map(|d| d.text.len()).sum::<usize>() as f64 / 3.0;
        assert!((store.mean_doc_bytes() - expected).abs() < 1e-9);
    }
}
