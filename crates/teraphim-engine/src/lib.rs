//! The MG-style mono-server text query engine.
//!
//! A [`Collection`] bundles everything one *librarian* (or the
//! mono-server baseline) owns: the analyzer, the compressed inverted
//! index, the document-weights table and the compressed document store.
//! On top of it this crate implements the paper's query machinery:
//!
//! * [`ranking`] — accumulator-based ranked evaluation of the cosine
//!   measure, with either locally computed or externally supplied
//!   (global) query-term weights. The latter is what the Central
//!   Vocabulary receptionist ships to librarians.
//! * [`candidates`] — candidate-restricted scoring using self-indexing
//!   skips: compute similarity values for a given set of documents
//!   "without processing the index lists in full" (the Central Index
//!   librarian operation).
//! * [`boolean`] — conjunctive/disjunctive Boolean evaluation, the
//!   paper's other query form.
//! * [`docstore`] — compressed document storage and (batched) fetching.
//!
//! # Examples
//!
//! ```
//! use teraphim_engine::Collection;
//!
//! let collection = Collection::from_texts(
//!     "demo",
//!     &[
//!         ("D1", "the cat sat on the mat"),
//!         ("D2", "the dog chased the cat"),
//!         ("D3", "penguins are aquatic birds"),
//!     ],
//! );
//! let hits = collection.ranked_query("cat on a mat", 2);
//! assert_eq!(hits.len(), 2);
//! assert_eq!(collection.docno(hits[0].doc), "D1");
//! ```

pub mod boolean;
pub mod candidates;
pub mod docstore;
pub mod ranking;
pub mod thresholding;

use std::error::Error;
use std::fmt;

use teraphim_index::{DocId, IndexBuilder, InvertedIndex, TermId};
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

pub use docstore::DocStore;
pub use ranking::{RankScratch, ScoredDoc, WeightedTerm};

/// Errors surfaced by engine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A document id was out of range for this collection.
    UnknownDocument(DocId),
    /// The underlying index or document store is corrupt.
    Corrupt(&'static str),
    /// A Boolean query failed to parse.
    QuerySyntax(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownDocument(d) => write!(f, "unknown document id {d}"),
            EngineError::Corrupt(what) => write!(f, "corrupt collection: {what}"),
            EngineError::QuerySyntax(msg) => write!(f, "boolean query syntax error: {msg}"),
        }
    }
}

impl Error for EngineError {}

impl From<teraphim_index::IndexError> for EngineError {
    fn from(_: teraphim_index::IndexError) -> Self {
        EngineError::Corrupt("index decode failure")
    }
}

impl From<teraphim_compress::CodeError> for EngineError {
    fn from(_: teraphim_compress::CodeError) -> Self {
        EngineError::Corrupt("compressed stream decode failure")
    }
}

/// A complete searchable collection: what one librarian manages.
#[derive(Debug)]
pub struct Collection {
    name: String,
    analyzer: Analyzer,
    index: InvertedIndex,
    store: DocStore,
}

impl Collection {
    /// Builds a collection from `(docno, text)` pairs using the default
    /// analyzer.
    pub fn from_texts(name: &str, docs: &[(&str, &str)]) -> Self {
        let trec: Vec<TrecDoc> = docs
            .iter()
            .map(|(docno, text)| TrecDoc {
                docno: (*docno).to_owned(),
                text: (*text).to_owned(),
            })
            .collect();
        Self::build(name, Analyzer::default(), &trec)
    }

    /// Builds a collection from parsed TREC documents.
    pub fn build(name: &str, analyzer: Analyzer, docs: &[TrecDoc]) -> Self {
        let mut builder = IndexBuilder::new();
        for doc in docs {
            builder.add_document(&analyzer.analyze(&doc.text));
        }
        let index = builder.build();
        let store = DocStore::build(docs);
        Collection {
            name: name.to_owned(),
            analyzer,
            index,
            store,
        }
    }

    /// The collection's name (e.g. "AP", "WSJ").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of documents.
    pub fn num_docs(&self) -> u64 {
        self.index.num_docs()
    }

    /// The text analyzer used at indexing time.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// The underlying inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Mutable access to the index (needed to build skip tables).
    pub fn index_mut(&mut self) -> &mut InvertedIndex {
        &mut self.index
    }

    /// The compressed document store.
    pub fn store(&self) -> &DocStore {
        &self.store
    }

    /// The external identifier of `doc`.
    ///
    /// # Panics
    ///
    /// Panics if `doc` is out of range.
    pub fn docno(&self, doc: DocId) -> &str {
        self.store.docno(doc)
    }

    /// Analyzes query text into `(term id, f_qt)` pairs, dropping terms
    /// absent from this collection's vocabulary.
    pub fn analyze_query(&self, query: &str) -> Vec<(TermId, u32)> {
        let mut counts: std::collections::HashMap<TermId, u32> = std::collections::HashMap::new();
        for term in self.analyzer.analyze(query) {
            if let Some(id) = self.index.vocab().term_id(&term) {
                *counts.entry(id).or_insert(0) += 1;
            }
        }
        let mut entries: Vec<(TermId, u32)> = counts.into_iter().collect();
        entries.sort_unstable_by_key(|&(t, _)| t);
        entries
    }

    /// Evaluates a ranked query with *local* statistics, returning the
    /// top `k` documents (the mono-server / Central Nothing librarian
    /// operation).
    pub fn ranked_query(&self, query: &str, k: usize) -> Vec<ScoredDoc> {
        let terms = self.analyze_query(query);
        let weighted = ranking::local_weights(&self.index, &terms);
        ranking::rank(&self.index, &weighted, k)
    }

    /// Evaluates a ranked query with externally supplied term weights
    /// (the Central Vocabulary librarian operation). Terms are given as
    /// strings because the weights come from the *global* vocabulary.
    ///
    /// The cosine query norm covers *all* supplied weights, including
    /// terms this collection has never seen — that is what makes scores
    /// from different librarians directly comparable (and identical to a
    /// mono-server evaluation).
    pub fn ranked_query_weighted(&self, terms: &[(String, f64)], k: usize) -> Vec<ScoredDoc> {
        self.ranked_query_weighted_scratch(terms, k, &mut RankScratch::new())
    }

    /// [`Collection::ranked_query_weighted`] reusing caller-owned scratch
    /// buffers — the hot path for a librarian answering a query stream.
    pub fn ranked_query_weighted_scratch(
        &self,
        terms: &[(String, f64)],
        k: usize,
        scratch: &mut RankScratch,
    ) -> Vec<ScoredDoc> {
        let qnorm = full_query_norm(terms);
        let weighted = self.resolve_weighted(terms);
        ranking::rank_with_norm_scratch(&self.index, &weighted, qnorm, k, scratch)
    }

    /// Scores exactly the given candidate documents with externally
    /// supplied weights (the Central Index librarian operation). Returns
    /// one score per candidate plus the number of postings decoded.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Corrupt`] if the index fails to decode.
    pub fn score_candidates(
        &mut self,
        terms: &[(String, f64)],
        candidates: &[DocId],
    ) -> Result<(Vec<ScoredDoc>, u64), EngineError> {
        self.score_candidates_scratch(terms, candidates, &mut RankScratch::new())
    }

    /// [`Collection::score_candidates`] reusing caller-owned scratch
    /// buffers across calls.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Corrupt`] if the index fails to decode.
    pub fn score_candidates_scratch(
        &mut self,
        terms: &[(String, f64)],
        candidates: &[DocId],
        scratch: &mut RankScratch,
    ) -> Result<(Vec<ScoredDoc>, u64), EngineError> {
        let qnorm = full_query_norm(terms);
        let weighted = self.resolve_weighted(terms);
        candidates::score_candidates_with_norm_scratch(
            &mut self.index,
            &weighted,
            qnorm,
            candidates,
            scratch,
        )
    }

    /// Evaluates a Boolean query.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::QuerySyntax`] for malformed expressions.
    pub fn boolean_query(&self, query: &str) -> Result<Vec<DocId>, EngineError> {
        let expr = boolean::parse(query)?;
        boolean::evaluate(&expr, &self.index, &self.analyzer)
    }

    /// Fetches and decompresses one document's text.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownDocument`] for out-of-range ids.
    pub fn fetch(&self, doc: DocId) -> Result<String, EngineError> {
        self.store.fetch(doc)
    }

    /// Appends documents to the collection: the update path the paper's
    /// introduction motivates ("distributed ... to simplify update").
    /// New documents are indexed into a delta and merged
    /// ([`teraphim_index::merge`]); the result ranks identically to a
    /// from-scratch build over the concatenated documents.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Corrupt`] if the existing index fails to
    /// decode during the merge.
    pub fn append_documents(&mut self, docs: &[TrecDoc]) -> Result<(), EngineError> {
        let mut delta = IndexBuilder::new();
        for doc in docs {
            delta.add_document(&self.analyzer.analyze(&doc.text));
        }
        self.index = teraphim_index::merge::merge(&self.index, &delta.build())?;
        self.store.append(docs);
        Ok(())
    }

    /// Extracts every document as a [`TrecDoc`], in document-id order.
    ///
    /// This is the inverse of indexing at the text level: the compressed
    /// document store round-trips text exactly, so the returned batch can
    /// rebuild an identical collection. The persistent store uses it to
    /// slice segment contents back into the batches they were committed
    /// as (for "as-of" epoch replay).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Corrupt`] if the document store fails to
    /// decode.
    pub fn export_docs(&self) -> Result<Vec<TrecDoc>, EngineError> {
        (0..self.num_docs() as DocId)
            .map(|d| {
                Ok(TrecDoc {
                    docno: self.docno(d).to_owned(),
                    text: self.fetch(d)?,
                })
            })
            .collect()
    }

    /// Merges another collection built with the *same analyzer
    /// configuration* into this one, as if its documents had been
    /// appended with [`Collection::append_documents`].
    ///
    /// The other collection's prebuilt index is merged directly
    /// ([`teraphim_index::merge`]), skipping re-analysis — this is the
    /// cold-open fast path for on-disk segments. Because the merge
    /// carries postings and per-document weights over bit-exactly, the
    /// result ranks identically to `append_documents(&other docs)`,
    /// which in turn ranks identically to a from-scratch build.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Corrupt`] if either index fails to decode
    /// during the merge.
    pub fn absorb(&mut self, other: &Collection) -> Result<(), EngineError> {
        let docs = other.export_docs()?;
        self.index = teraphim_index::merge::merge(&self.index, other.index())?;
        self.store.append(&docs);
        Ok(())
    }

    /// Serializes the whole collection (analyzer configuration, index,
    /// document store) for on-disk storage.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let name = self.name.as_bytes();
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        out.push(u8::from(self.analyzer.stopping()));
        out.push(u8::from(self.analyzer.stemming()));
        let index = self.index.to_bytes();
        out.extend_from_slice(&(index.len() as u64).to_le_bytes());
        out.extend_from_slice(&index);
        let store = self.store.to_bytes();
        out.extend_from_slice(&(store.len() as u64).to_le_bytes());
        out.extend_from_slice(&store);
        out
    }

    /// Reconstructs a collection serialized by [`Collection::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Corrupt`] on truncation or corruption.
    pub fn from_bytes(bytes: &[u8]) -> Result<Collection, EngineError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], EngineError> {
            let slice = bytes
                .get(*pos..*pos + n)
                .ok_or(EngineError::Corrupt("collection truncated"))?;
            *pos += n;
            Ok(slice)
        };
        let name_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let name = std::str::from_utf8(take(&mut pos, name_len)?)
            .map_err(|_| EngineError::Corrupt("collection name is not UTF-8"))?
            .to_owned();
        let stop = *take(&mut pos, 1)?.first().expect("one byte") != 0;
        let stem = *take(&mut pos, 1)?.first().expect("one byte") != 0;
        let index_len =
            u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
        let index = InvertedIndex::from_bytes(take(&mut pos, index_len)?)?;
        let store_len =
            u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
        let store = DocStore::from_bytes(take(&mut pos, store_len)?)?;
        if pos != bytes.len() {
            return Err(EngineError::Corrupt("trailing bytes after collection"));
        }
        Ok(Collection {
            name,
            analyzer: Analyzer::new().with_stopping(stop).with_stemming(stem),
            index,
            store,
        })
    }

    /// Writes the collection to a file.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Corrupt`] wrapping any I/O failure message.
    pub fn save(&self, path: &std::path::Path) -> Result<(), EngineError> {
        std::fs::write(path, self.to_bytes())
            .map_err(|_| EngineError::Corrupt("failed to write collection file"))
    }

    /// Reads a collection written by [`Collection::save`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Corrupt`] if the file cannot be read or
    /// decoded.
    pub fn load(path: &std::path::Path) -> Result<Collection, EngineError> {
        let bytes = std::fs::read(path)
            .map_err(|_| EngineError::Corrupt("failed to read collection file"))?;
        Collection::from_bytes(&bytes)
    }

    /// Maps weighted term strings onto this collection's term ids,
    /// dropping unknown terms (they cannot contribute to accumulators;
    /// their weights still belong in the query norm — see
    /// [`Collection::ranked_query_weighted`]).
    fn resolve_weighted(&self, terms: &[(String, f64)]) -> Vec<WeightedTerm> {
        terms
            .iter()
            .filter_map(|(term, w_qt)| {
                self.index.vocab().term_id(term).map(|id| WeightedTerm {
                    term: id,
                    w_qt: *w_qt,
                })
            })
            .collect()
    }
}

/// Query norm over a full weighted term list (strings not yet resolved
/// against any particular vocabulary).
fn full_query_norm(terms: &[(String, f64)]) -> f64 {
    teraphim_index::similarity::query_norm(&terms.iter().map(|(_, w)| *w).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Collection {
        Collection::from_texts(
            "demo",
            &[
                ("D1", "the cat sat on the mat"),
                ("D2", "the dog chased the cat across the yard"),
                ("D3", "penguins are aquatic flightless birds"),
                ("D4", "a cat and a dog and a bird"),
            ],
        )
    }

    #[test]
    fn ranked_query_prefers_matching_docs() {
        let c = demo();
        let hits = c.ranked_query("cat mat", 4);
        assert!(!hits.is_empty());
        assert_eq!(c.docno(hits[0].doc), "D1");
        // D3 shares no terms and must not appear.
        assert!(hits.iter().all(|h| c.docno(h.doc) != "D3"));
    }

    #[test]
    fn ranked_query_k_limits_results() {
        let c = demo();
        assert_eq!(c.ranked_query("cat", 1).len(), 1);
        assert!(c.ranked_query("cat", 10).len() <= 4);
    }

    #[test]
    fn query_with_no_known_terms_is_empty() {
        let c = demo();
        assert!(c.ranked_query("zyzzyva qwerty", 5).is_empty());
        assert!(c.analyze_query("zyzzyva").is_empty());
    }

    #[test]
    fn analyze_query_counts_repeats() {
        let c = demo();
        let terms = c.analyze_query("cat cat dog");
        let cat = c.index().vocab().term_id("cat").unwrap();
        let dog = c.index().vocab().term_id("dog").unwrap();
        assert!(terms.contains(&(cat, 2)));
        assert!(terms.contains(&(dog, 1)));
    }

    #[test]
    fn fetch_roundtrips_document_text() {
        let c = demo();
        let text = c.fetch(0).unwrap();
        assert_eq!(text, "the cat sat on the mat");
        assert!(matches!(c.fetch(99), Err(EngineError::UnknownDocument(99))));
    }

    #[test]
    fn weighted_query_respects_supplied_weights() {
        let c = demo();
        // Give "bird" an overwhelming weight: D4 must win over D1 for
        // "cat bird".
        let hits = c.ranked_query_weighted(&[("cat".into(), 0.1), ("bird".into(), 100.0)], 4);
        assert_eq!(c.docno(hits[0].doc), "D4");
    }

    #[test]
    fn weighted_query_ignores_unknown_terms() {
        let c = demo();
        let hits = c.ranked_query_weighted(&[("unknownterm".into(), 5.0)], 4);
        assert!(hits.is_empty());
    }

    #[test]
    fn score_candidates_matches_full_ranking_scores() {
        let mut c = demo();
        let terms = c.analyze_query("cat dog");
        let weighted = ranking::local_weights(c.index(), &terms);
        let full = ranking::rank(c.index(), &weighted, 10);
        let weighted_str: Vec<(String, f64)> = weighted
            .iter()
            .map(|w| (c.index().vocab().term(w.term).to_owned(), w.w_qt))
            .collect();
        let candidates: Vec<DocId> = (0..4).collect();
        let (scored, _decoded) = c.score_candidates(&weighted_str, &candidates).unwrap();
        for s in &scored {
            let full_score = full
                .iter()
                .find(|f| f.doc == s.doc)
                .map_or(0.0, |f| f.score);
            assert!(
                (s.score - full_score).abs() < 1e-12,
                "doc {} candidate {} vs full {}",
                s.doc,
                s.score,
                full_score
            );
        }
    }

    #[test]
    fn append_ranks_identically_to_scratch_build() {
        let first = [
            ("D1", "the cat sat on the mat"),
            ("D2", "the dog chased the cat across the yard"),
        ];
        let second = [
            ("D3", "penguins are aquatic flightless birds"),
            ("D4", "a cat and a dog and a bird"),
        ];
        let mut incremental = Collection::from_texts("demo", &first);
        let delta: Vec<teraphim_text::sgml::TrecDoc> = second
            .iter()
            .map(|(docno, text)| teraphim_text::sgml::TrecDoc {
                docno: (*docno).to_owned(),
                text: (*text).to_owned(),
            })
            .collect();
        incremental.append_documents(&delta).unwrap();

        let all: Vec<(&str, &str)> = first.iter().chain(second.iter()).copied().collect();
        let scratch = Collection::from_texts("demo", &all);

        assert_eq!(incremental.num_docs(), 4);
        for query in ["cat dog", "bird", "penguins aquatic", "mat"] {
            let a = incremental.ranked_query(query, 10);
            let b = scratch.ranked_query(query, 10);
            assert_eq!(a.len(), b.len(), "query {query}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.doc, y.doc, "query {query}");
                assert!((x.score - y.score).abs() < 1e-12, "query {query}");
            }
        }
        // Appended documents fetch correctly (compressed with the old
        // model via escapes).
        assert_eq!(
            incremental.fetch(2).unwrap(),
            "penguins are aquatic flightless birds"
        );
        assert_eq!(incremental.docno(3), "D4");
    }

    #[test]
    fn export_docs_roundtrips_exactly() {
        let c = demo();
        let docs = c.export_docs().unwrap();
        assert_eq!(docs.len(), 4);
        assert_eq!(docs[0].docno, "D1");
        assert_eq!(docs[0].text, "the cat sat on the mat");
        assert_eq!(docs[3].docno, "D4");
        let rebuilt = Collection::build("demo", Analyzer::default(), &docs);
        for query in ["cat dog", "penguins"] {
            let a = c.ranked_query(query, 10);
            let b = rebuilt.ranked_query(query, 10);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!((x.doc, x.score.to_bits()), (y.doc, y.score.to_bits()));
            }
        }
    }

    #[test]
    fn absorb_matches_append_documents_bit_for_bit() {
        let base = [
            ("D1", "the cat sat on the mat"),
            ("D2", "the dog chased the cat across the yard"),
        ];
        let extra = [
            ("D3", "penguins are aquatic flightless birds"),
            ("D4", "a cat and a dog and a bird"),
        ];
        let extra_docs: Vec<TrecDoc> = extra
            .iter()
            .map(|(docno, text)| TrecDoc {
                docno: (*docno).to_owned(),
                text: (*text).to_owned(),
            })
            .collect();

        let mut appended = Collection::from_texts("demo", &base);
        appended.append_documents(&extra_docs).unwrap();

        let mut absorbed = Collection::from_texts("demo", &base);
        let delta = Collection::build("demo", Analyzer::default(), &extra_docs);
        absorbed.absorb(&delta).unwrap();

        assert_eq!(absorbed.num_docs(), appended.num_docs());
        for query in ["cat dog", "bird", "penguins aquatic", "mat"] {
            let a = absorbed.ranked_query(query, 10);
            let b = appended.ranked_query(query, 10);
            assert_eq!(a.len(), b.len(), "query {query}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!((x.doc, x.score.to_bits()), (y.doc, y.score.to_bits()));
            }
        }
        assert_eq!(absorbed.fetch(2).unwrap(), appended.fetch(2).unwrap());
        assert_eq!(absorbed.docno(3), appended.docno(3));
    }

    #[test]
    fn append_to_empty_collection() {
        let mut c = Collection::from_texts("empty", &[]);
        c.append_documents(&[teraphim_text::sgml::TrecDoc {
            docno: "N-1".into(),
            text: "fresh start".into(),
        }])
        .unwrap();
        assert_eq!(c.num_docs(), 1);
        assert_eq!(c.ranked_query("fresh", 5).len(), 1);
    }

    #[test]
    fn collection_serialization_roundtrips_queries() {
        let c = demo();
        let restored = Collection::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(restored.name(), c.name());
        assert_eq!(restored.num_docs(), c.num_docs());
        let a = c.ranked_query("cat dog mat", 4);
        let b = restored.ranked_query("cat dog mat", 4);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.doc, y.doc);
            assert!((x.score - y.score).abs() < 1e-12);
        }
        assert_eq!(restored.fetch(0).unwrap(), c.fetch(0).unwrap());
    }

    #[test]
    fn collection_deserialization_rejects_truncation() {
        let bytes = demo().to_bytes();
        for cut in [0, 2, bytes.len() / 3, bytes.len() - 1] {
            assert!(Collection::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn empty_collection_is_harmless() {
        let c = Collection::from_texts("empty", &[]);
        assert_eq!(c.num_docs(), 0);
        assert!(c.ranked_query("anything", 5).is_empty());
    }
}
