//! Accumulator-based ranked query evaluation.
//!
//! For each query term the inverted list is decoded and each posting
//! contributes `w_qt · w_dt` to the document's accumulator; final scores
//! divide by the document weight `W_d` and the query norm, yielding the
//! cosine measure of §2. The top `k` are selected with a bounded heap.
//!
//! Query-term weights can come from two places:
//!
//! * [`local_weights`] — computed from the collection's own `N` and
//!   `f_t` (mono-server and Central Nothing);
//! * any externally supplied weights (Central Vocabulary / Central
//!   Index), in which case two librarians holding different
//!   subcollections produce *directly comparable* scores.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;

use teraphim_index::similarity::{query_norm, w_dt, w_qt};
use teraphim_index::{DocId, InvertedIndex, TermId};

/// A query term with its (possibly global) weight `w_qt`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedTerm {
    /// Term id in the *target collection's* vocabulary.
    pub term: TermId,
    /// The query weight to apply.
    pub w_qt: f64,
}

/// A scored document. Ordered by descending score with ascending-id tie
/// break so that rankings are total and deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredDoc {
    /// Local document id.
    pub doc: DocId,
    /// Cosine similarity with the query.
    pub score: f64,
}

impl ScoredDoc {
    /// Ranking order: higher score first; ties broken by smaller doc id.
    pub fn ranking_cmp(&self, other: &Self) -> Ordering {
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then(self.doc.cmp(&other.doc))
    }
}

/// Computes local query weights `w_qt = ln(f_qt + 1) · ln(N/f_t + 1)`
/// from the collection's own statistics.
pub fn local_weights(index: &InvertedIndex, terms: &[(TermId, u32)]) -> Vec<WeightedTerm> {
    let n = index.stats().num_docs();
    terms
        .iter()
        .filter_map(|&(term, f_qt)| {
            let f_t = index.stats().doc_freq(term);
            let w = w_qt(u64::from(f_qt), n, f_t);
            (w > 0.0).then_some(WeightedTerm { term, w_qt: w })
        })
        .collect()
}

/// Evaluates the cosine measure over the whole collection and returns the
/// top `k` documents in ranking order. The query norm is computed from
/// the supplied terms.
pub fn rank(index: &InvertedIndex, terms: &[WeightedTerm], k: usize) -> Vec<ScoredDoc> {
    let qnorm = query_norm(&terms.iter().map(|t| t.w_qt).collect::<Vec<_>>());
    rank_with_norm(index, terms, qnorm, k)
}

/// [`rank`] with an explicit query norm.
///
/// In distributed evaluation the norm must cover *every* weighted query
/// term — including terms absent from this particular subcollection's
/// vocabulary — or librarians would normalize by different denominators
/// and their scores would stop being comparable. The receptionist
/// therefore computes the norm once, globally, and supplies it.
pub fn rank_with_norm(
    index: &InvertedIndex,
    terms: &[WeightedTerm],
    qnorm: f64,
    k: usize,
) -> Vec<ScoredDoc> {
    let accumulators = accumulate(index, terms);
    top_k(normalize(index, accumulators, qnorm), k)
}

/// Evaluates the cosine measure and returns *all* matching documents in
/// ranking order (used when the caller needs the complete ranking, e.g.
/// effectiveness evaluation at 1000 retrieved).
pub fn rank_all(index: &InvertedIndex, terms: &[WeightedTerm]) -> Vec<ScoredDoc> {
    rank(index, terms, usize::MAX)
}

/// Phase 1: decode lists and fill accumulators with `Σ w_qt · w_dt`.
fn accumulate(index: &InvertedIndex, terms: &[WeightedTerm]) -> HashMap<DocId, f64> {
    let mut acc: HashMap<DocId, f64> = HashMap::new();
    for wt in terms {
        if wt.w_qt == 0.0 {
            continue;
        }
        for posting in index.postings(wt.term).iter().flatten() {
            *acc.entry(posting.doc).or_insert(0.0) += wt.w_qt * w_dt(u64::from(posting.f_dt));
        }
    }
    acc
}

/// Phase 2: divide by `W_d` and the query norm.
fn normalize(
    index: &InvertedIndex,
    accumulators: HashMap<DocId, f64>,
    qnorm: f64,
) -> impl Iterator<Item = ScoredDoc> + '_ {
    accumulators.into_iter().filter_map(move |(doc, sum)| {
        let wd = index.weights().weight(doc);
        (wd > 0.0 && qnorm > 0.0).then(|| ScoredDoc {
            doc,
            score: sum / (wd * qnorm),
        })
    })
}

/// Selects the top `k` by bounded max-heap (on the inverted ordering), in
/// final ranking order.
fn top_k(scored: impl Iterator<Item = ScoredDoc>, k: usize) -> Vec<ScoredDoc> {
    if k == 0 {
        return Vec::new();
    }
    // Wrapper ordering the heap as a max-heap on "worst first".
    struct Worst(ScoredDoc);
    impl PartialEq for Worst {
        fn eq(&self, other: &Self) -> bool {
            self.0.ranking_cmp(&other.0) == Ordering::Equal
        }
    }
    impl Eq for Worst {}
    impl PartialOrd for Worst {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Worst {
        fn cmp(&self, other: &Self) -> Ordering {
            // ranking_cmp orders best-first (Less = ranks better), so the
            // max-heap's greatest element — what peek()/pop() return — is
            // the worst-ranked entry, which is the one to evict.
            self.0.ranking_cmp(&other.0)
        }
    }

    let mut heap: BinaryHeap<Worst> = BinaryHeap::new();
    for s in scored {
        if heap.len() < k {
            heap.push(Worst(s));
        } else if let Some(worst) = heap.peek() {
            if s.ranking_cmp(&worst.0) == Ordering::Less {
                heap.pop();
                heap.push(Worst(s));
            }
        }
    }
    let mut result: Vec<ScoredDoc> = heap.into_iter().map(|w| w.0).collect();
    result.sort_by(ScoredDoc::ranking_cmp);
    result
}

/// Merges several already-ranked lists into a single ranking of length at
/// most `k`, comparing scores at face value — exactly what a Central
/// Nothing / Central Vocabulary receptionist does with librarian
/// rankings. Entries carry an arbitrary payload (e.g. librarian id).
pub fn merge_rankings<T: Copy>(lists: &[Vec<(ScoredDoc, T)>], k: usize) -> Vec<(ScoredDoc, T)> {
    let mut all: Vec<(ScoredDoc, T)> = lists.iter().flatten().copied().collect();
    all.sort_by(|a, b| a.0.ranking_cmp(&b.0));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use teraphim_index::IndexBuilder;

    fn index_of(docs: &[&[&str]]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for d in docs {
            let terms: Vec<String> = d.iter().map(|s| (*s).to_owned()).collect();
            b.add_document(&terms);
        }
        b.build()
    }

    fn tid(ix: &InvertedIndex, t: &str) -> TermId {
        ix.vocab().term_id(t).unwrap()
    }

    #[test]
    fn single_term_ranking_orders_by_frequency_over_length() {
        let ix = index_of(&[
            &["cat"],                      // short, f=1
            &["cat", "cat", "cat", "cat"], // f=4 but longer
            &["cat", "dog", "emu", "fox"], // f=1, long
        ]);
        let terms = vec![(tid(&ix, "cat"), 1u32)];
        let ranking = rank(&ix, &local_weights(&ix, &terms), 10);
        assert_eq!(ranking.len(), 3);
        // Doc 0 (pure "cat") and doc 1 (all cats) both have cosine 1.0;
        // tie-break puts doc 0 first; doc 2 is diluted.
        assert_eq!(ranking[0].doc, 0);
        assert_eq!(ranking[1].doc, 1);
        assert_eq!(ranking[2].doc, 2);
        assert!((ranking[0].score - 1.0).abs() < 1e-9);
        assert!((ranking[1].score - 1.0).abs() < 1e-9);
        assert!(ranking[2].score < 1.0);
    }

    #[test]
    fn multi_term_queries_reward_coverage() {
        let ix = index_of(&[&["cat", "dog"], &["cat", "cat"], &["dog", "dog"]]);
        let terms = vec![(tid(&ix, "cat"), 1u32), (tid(&ix, "dog"), 1u32)];
        let ranking = rank(&ix, &local_weights(&ix, &terms), 10);
        assert_eq!(ranking[0].doc, 0, "doc containing both terms wins");
    }

    #[test]
    fn rank_k_zero_is_empty() {
        let ix = index_of(&[&["a"]]);
        let terms = vec![(tid(&ix, "a"), 1u32)];
        assert!(rank(&ix, &local_weights(&ix, &terms), 0).is_empty());
    }

    #[test]
    fn rank_respects_k() {
        let docs: Vec<Vec<&str>> = (0..20).map(|_| vec!["x"]).collect();
        let refs: Vec<&[&str]> = docs.iter().map(Vec::as_slice).collect();
        let ix = index_of(&refs);
        let terms = vec![(tid(&ix, "x"), 1u32)];
        let w = local_weights(&ix, &terms);
        assert_eq!(rank(&ix, &w, 5).len(), 5);
        assert_eq!(rank_all(&ix, &w).len(), 20);
    }

    #[test]
    fn top_k_matches_full_sort() {
        let ix = index_of(&[
            &["a", "b"],
            &["a"],
            &["a", "a", "b"],
            &["b"],
            &["a", "c"],
            &["c", "b", "a"],
        ]);
        let terms = vec![(tid(&ix, "a"), 1u32), (tid(&ix, "b"), 2u32)];
        let w = local_weights(&ix, &terms);
        let full = rank_all(&ix, &w);
        for k in 0..=full.len() {
            let partial = rank(&ix, &w, k);
            assert_eq!(&full[..k.min(full.len())], partial.as_slice(), "k={k}");
        }
    }

    #[test]
    fn scores_are_cosine_bounded() {
        let ix = index_of(&[&["a", "b", "c"], &["a", "a"], &["b"]]);
        let terms = vec![(tid(&ix, "a"), 3u32), (tid(&ix, "b"), 1u32)];
        for s in rank_all(&ix, &local_weights(&ix, &terms)) {
            assert!(s.score > 0.0 && s.score <= 1.0 + 1e-9, "score {}", s.score);
        }
    }

    #[test]
    fn unmatched_terms_contribute_nothing() {
        let ix = index_of(&[&["a"]]);
        // Term "a" plus a zero-weight entry.
        let weighted = vec![
            WeightedTerm {
                term: tid(&ix, "a"),
                w_qt: 1.0,
            },
            WeightedTerm {
                term: tid(&ix, "a"),
                w_qt: 0.0,
            },
        ];
        let ranking = rank(&ix, &weighted, 10);
        assert_eq!(ranking.len(), 1);
    }

    #[test]
    fn local_weights_drop_absent_terms() {
        let ix = index_of(&[&["a"]]);
        // Seeded vocabulary quirk: ask about a term with f_t = 0 by using
        // an id beyond any postings.
        let w = local_weights(&ix, &[(0, 1), (999, 1)]);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn ranking_cmp_is_total_and_deterministic() {
        let a = ScoredDoc { doc: 1, score: 0.5 };
        let b = ScoredDoc { doc: 2, score: 0.5 };
        let c = ScoredDoc { doc: 3, score: 0.9 };
        assert_eq!(a.ranking_cmp(&b), Ordering::Less);
        assert_eq!(b.ranking_cmp(&a), Ordering::Greater);
        assert_eq!(c.ranking_cmp(&a), Ordering::Less);
        assert_eq!(a.ranking_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn merge_rankings_interleaves_by_score() {
        let l1 = vec![
            (ScoredDoc { doc: 0, score: 0.9 }, 0u32),
            (ScoredDoc { doc: 1, score: 0.3 }, 0u32),
        ];
        let l2 = vec![
            (ScoredDoc { doc: 0, score: 0.7 }, 1u32),
            (ScoredDoc { doc: 1, score: 0.1 }, 1u32),
        ];
        let merged = merge_rankings(&[l1, l2], 3);
        assert_eq!(merged.len(), 3);
        assert_eq!((merged[0].0.doc, merged[0].1), (0, 0));
        assert_eq!((merged[1].0.doc, merged[1].1), (0, 1));
        assert_eq!((merged[2].0.doc, merged[2].1), (1, 0));
    }

    #[test]
    fn merge_rankings_empty_inputs() {
        let merged: Vec<(ScoredDoc, u32)> = merge_rankings(&[], 5);
        assert!(merged.is_empty());
        let merged: Vec<(ScoredDoc, u32)> = merge_rankings(&[vec![], vec![]], 5);
        assert!(merged.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use teraphim_index::IndexBuilder;

    proptest! {
        #[test]
        fn top_k_agrees_with_exhaustive_sort(
            docs in proptest::collection::vec(
                proptest::collection::vec("[a-d]", 1..8),
                1..30,
            ),
            k in 0usize..40,
        ) {
            let mut b = IndexBuilder::new();
            for d in &docs {
                b.add_document(d);
            }
            let ix = b.build();
            let terms: Vec<(teraphim_index::TermId, u32)> = ix
                .vocab()
                .iter()
                .map(|(id, _)| (id, 1u32))
                .collect();
            let w = local_weights(&ix, &terms);
            let full = rank_all(&ix, &w);
            let partial = rank(&ix, &w, k);
            prop_assert_eq!(&full[..k.min(full.len())], partial.as_slice());
        }
    }
}
