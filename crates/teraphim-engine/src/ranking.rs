//! Accumulator-based ranked query evaluation.
//!
//! For each query term the inverted list is decoded and each posting
//! contributes `w_qt · w_dt` to the document's accumulator; final scores
//! divide by the document weight `W_d` and the query norm, yielding the
//! cosine measure of §2. The top `k` are selected with a bounded heap.
//!
//! Query-term weights can come from two places:
//!
//! * [`local_weights`] — computed from the collection's own `N` and
//!   `f_t` (mono-server and Central Nothing);
//! * any externally supplied weights (Central Vocabulary / Central
//!   Index), in which case two librarians holding different
//!   subcollections produce *directly comparable* scores.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;

use teraphim_index::similarity::{query_norm, w_dt, w_qt};
use teraphim_index::{DocId, InvertedIndex, TermId};

/// A query term with its (possibly global) weight `w_qt`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedTerm {
    /// Term id in the *target collection's* vocabulary.
    pub term: TermId,
    /// The query weight to apply.
    pub w_qt: f64,
}

/// A scored document. Ordered by descending score with ascending-id tie
/// break so that rankings are total and deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredDoc {
    /// Local document id.
    pub doc: DocId,
    /// Cosine similarity with the query.
    pub score: f64,
}

impl ScoredDoc {
    /// Ranking order: higher score first; ties broken by smaller doc id.
    /// NaN scores order strictly last (then by doc id) so the comparison
    /// stays a total order even on pathological inputs — treating NaN as
    /// equal to everything would make sort results depend on input order.
    pub fn ranking_cmp(&self, other: &Self) -> Ordering {
        match (self.score.is_nan(), other.score.is_nan()) {
            (false, false) => other
                .score
                .partial_cmp(&self.score)
                .unwrap_or(Ordering::Equal)
                .then(self.doc.cmp(&other.doc)),
            (true, true) => self.doc.cmp(&other.doc),
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
        }
    }
}

/// Reusable working memory for repeated ranking calls.
///
/// A librarian answers a stream of subqueries; allocating a fresh
/// accumulator map (and, for Central Index candidate scoring, fresh
/// candidate/sum buffers) per query churns the allocator on the hot
/// path. One `RankScratch` owned by the librarian keeps the high-water
/// capacity across queries. All entry points clear the buffers before
/// use, so results never depend on what a previous query left behind.
#[derive(Debug, Default)]
pub struct RankScratch {
    /// Accumulators: `doc → Σ w_qt · w_dt`.
    pub(crate) acc: HashMap<DocId, f64>,
    /// Sorted candidate ids (Central Index scoring).
    pub(crate) candidates: Vec<DocId>,
    /// Per-candidate partial sums, parallel to `candidates`.
    pub(crate) sums: Vec<f64>,
}

impl RankScratch {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes local query weights `w_qt = ln(f_qt + 1) · ln(N/f_t + 1)`
/// from the collection's own statistics.
pub fn local_weights(index: &InvertedIndex, terms: &[(TermId, u32)]) -> Vec<WeightedTerm> {
    let n = index.stats().num_docs();
    terms
        .iter()
        .filter_map(|&(term, f_qt)| {
            let f_t = index.stats().doc_freq(term);
            let w = w_qt(u64::from(f_qt), n, f_t);
            (w > 0.0).then_some(WeightedTerm { term, w_qt: w })
        })
        .collect()
}

/// Evaluates the cosine measure over the whole collection and returns the
/// top `k` documents in ranking order. The query norm is computed from
/// the supplied terms.
pub fn rank(index: &InvertedIndex, terms: &[WeightedTerm], k: usize) -> Vec<ScoredDoc> {
    let qnorm = query_norm(&terms.iter().map(|t| t.w_qt).collect::<Vec<_>>());
    rank_with_norm(index, terms, qnorm, k)
}

/// [`rank`] with an explicit query norm.
///
/// In distributed evaluation the norm must cover *every* weighted query
/// term — including terms absent from this particular subcollection's
/// vocabulary — or librarians would normalize by different denominators
/// and their scores would stop being comparable. The receptionist
/// therefore computes the norm once, globally, and supplies it.
pub fn rank_with_norm(
    index: &InvertedIndex,
    terms: &[WeightedTerm],
    qnorm: f64,
    k: usize,
) -> Vec<ScoredDoc> {
    rank_with_norm_scratch(index, terms, qnorm, k, &mut RankScratch::new())
}

/// [`rank`] reusing caller-owned scratch buffers across calls.
pub fn rank_with_scratch(
    index: &InvertedIndex,
    terms: &[WeightedTerm],
    k: usize,
    scratch: &mut RankScratch,
) -> Vec<ScoredDoc> {
    let qnorm = query_norm(&terms.iter().map(|t| t.w_qt).collect::<Vec<_>>());
    rank_with_norm_scratch(index, terms, qnorm, k, scratch)
}

/// [`rank_with_norm`] reusing caller-owned scratch buffers across calls.
pub fn rank_with_norm_scratch(
    index: &InvertedIndex,
    terms: &[WeightedTerm],
    qnorm: f64,
    k: usize,
    scratch: &mut RankScratch,
) -> Vec<ScoredDoc> {
    accumulate_into(index, terms, &mut scratch.acc);
    top_k(normalize(index, &mut scratch.acc, qnorm), k)
}

/// Evaluates the cosine measure and returns *all* matching documents in
/// ranking order (used when the caller needs the complete ranking, e.g.
/// effectiveness evaluation at 1000 retrieved).
pub fn rank_all(index: &InvertedIndex, terms: &[WeightedTerm]) -> Vec<ScoredDoc> {
    rank(index, terms, usize::MAX)
}

/// Phase 1: decode lists and fill accumulators with `Σ w_qt · w_dt`.
///
/// The map is pre-sized to `min(Σ f_t, N)` — the number of distinct
/// documents is bounded both by the sum of the query terms' document
/// frequencies and by the collection size — so the table is built
/// without rehashing even on first use.
fn accumulate_into(index: &InvertedIndex, terms: &[WeightedTerm], acc: &mut HashMap<DocId, f64>) {
    acc.clear();
    let postings_bound: u64 = terms
        .iter()
        .filter(|wt| wt.w_qt != 0.0)
        .map(|wt| index.stats().doc_freq(wt.term))
        .sum();
    let expected = postings_bound.min(index.stats().num_docs());
    acc.reserve(usize::try_from(expected).unwrap_or(usize::MAX));
    for wt in terms {
        if wt.w_qt == 0.0 {
            continue;
        }
        for posting in index.postings(wt.term).iter().flatten() {
            *acc.entry(posting.doc).or_insert(0.0) += wt.w_qt * w_dt(u64::from(posting.f_dt));
        }
    }
}

/// Phase 2: divide by `W_d` and the query norm. Drains the accumulator
/// map in place so its capacity survives for the next query.
fn normalize<'a>(
    index: &'a InvertedIndex,
    accumulators: &'a mut HashMap<DocId, f64>,
    qnorm: f64,
) -> impl Iterator<Item = ScoredDoc> + 'a {
    accumulators.drain().filter_map(move |(doc, sum)| {
        let wd = index.weights().weight(doc);
        (wd > 0.0 && qnorm > 0.0).then(|| ScoredDoc {
            doc,
            score: sum / (wd * qnorm),
        })
    })
}

/// Selects the top `k` by bounded max-heap (on the inverted ordering), in
/// final ranking order.
fn top_k(scored: impl Iterator<Item = ScoredDoc>, k: usize) -> Vec<ScoredDoc> {
    if k == 0 {
        return Vec::new();
    }
    // Wrapper ordering the heap as a max-heap on "worst first".
    struct Worst(ScoredDoc);
    impl PartialEq for Worst {
        fn eq(&self, other: &Self) -> bool {
            self.0.ranking_cmp(&other.0) == Ordering::Equal
        }
    }
    impl Eq for Worst {}
    impl PartialOrd for Worst {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Worst {
        fn cmp(&self, other: &Self) -> Ordering {
            // ranking_cmp orders best-first (Less = ranks better), so the
            // max-heap's greatest element — what peek()/pop() return — is
            // the worst-ranked entry, which is the one to evict.
            self.0.ranking_cmp(&other.0)
        }
    }

    let mut heap: BinaryHeap<Worst> = BinaryHeap::new();
    for s in scored {
        if heap.len() < k {
            heap.push(Worst(s));
        } else if let Some(worst) = heap.peek() {
            if s.ranking_cmp(&worst.0) == Ordering::Less {
                heap.pop();
                heap.push(Worst(s));
            }
        }
    }
    let mut result: Vec<ScoredDoc> = heap.into_iter().map(|w| w.0).collect();
    result.sort_by(ScoredDoc::ranking_cmp);
    result
}

/// Merges several already-ranked lists into a single ranking of length at
/// most `k`, comparing scores at face value — exactly what a Central
/// Nothing / Central Vocabulary receptionist does with librarian
/// rankings. Entries carry an ordered payload (e.g. librarian id) which
/// serves as the final tie break, making the order *total*: the merged
/// ranking is independent of list order, so a receptionist folding in
/// replies as they arrive from concurrent librarians gets byte-identical
/// results to a sequential pass.
pub fn merge_rankings<T: Copy + Ord>(
    lists: &[Vec<(ScoredDoc, T)>],
    k: usize,
) -> Vec<(ScoredDoc, T)> {
    let mut all: Vec<(ScoredDoc, T)> = lists.iter().flatten().copied().collect();
    all.sort_by(|a, b| a.0.ranking_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use teraphim_index::IndexBuilder;

    fn index_of(docs: &[&[&str]]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for d in docs {
            let terms: Vec<String> = d.iter().map(|s| (*s).to_owned()).collect();
            b.add_document(&terms);
        }
        b.build()
    }

    fn tid(ix: &InvertedIndex, t: &str) -> TermId {
        ix.vocab().term_id(t).unwrap()
    }

    #[test]
    fn single_term_ranking_orders_by_frequency_over_length() {
        let ix = index_of(&[
            &["cat"],                      // short, f=1
            &["cat", "cat", "cat", "cat"], // f=4 but longer
            &["cat", "dog", "emu", "fox"], // f=1, long
        ]);
        let terms = vec![(tid(&ix, "cat"), 1u32)];
        let ranking = rank(&ix, &local_weights(&ix, &terms), 10);
        assert_eq!(ranking.len(), 3);
        // Doc 0 (pure "cat") and doc 1 (all cats) both have cosine 1.0;
        // tie-break puts doc 0 first; doc 2 is diluted.
        assert_eq!(ranking[0].doc, 0);
        assert_eq!(ranking[1].doc, 1);
        assert_eq!(ranking[2].doc, 2);
        assert!((ranking[0].score - 1.0).abs() < 1e-9);
        assert!((ranking[1].score - 1.0).abs() < 1e-9);
        assert!(ranking[2].score < 1.0);
    }

    #[test]
    fn multi_term_queries_reward_coverage() {
        let ix = index_of(&[&["cat", "dog"], &["cat", "cat"], &["dog", "dog"]]);
        let terms = vec![(tid(&ix, "cat"), 1u32), (tid(&ix, "dog"), 1u32)];
        let ranking = rank(&ix, &local_weights(&ix, &terms), 10);
        assert_eq!(ranking[0].doc, 0, "doc containing both terms wins");
    }

    #[test]
    fn rank_k_zero_is_empty() {
        let ix = index_of(&[&["a"]]);
        let terms = vec![(tid(&ix, "a"), 1u32)];
        assert!(rank(&ix, &local_weights(&ix, &terms), 0).is_empty());
    }

    #[test]
    fn rank_respects_k() {
        let docs: Vec<Vec<&str>> = (0..20).map(|_| vec!["x"]).collect();
        let refs: Vec<&[&str]> = docs.iter().map(Vec::as_slice).collect();
        let ix = index_of(&refs);
        let terms = vec![(tid(&ix, "x"), 1u32)];
        let w = local_weights(&ix, &terms);
        assert_eq!(rank(&ix, &w, 5).len(), 5);
        assert_eq!(rank_all(&ix, &w).len(), 20);
    }

    #[test]
    fn top_k_matches_full_sort() {
        let ix = index_of(&[
            &["a", "b"],
            &["a"],
            &["a", "a", "b"],
            &["b"],
            &["a", "c"],
            &["c", "b", "a"],
        ]);
        let terms = vec![(tid(&ix, "a"), 1u32), (tid(&ix, "b"), 2u32)];
        let w = local_weights(&ix, &terms);
        let full = rank_all(&ix, &w);
        for k in 0..=full.len() {
            let partial = rank(&ix, &w, k);
            assert_eq!(&full[..k.min(full.len())], partial.as_slice(), "k={k}");
        }
    }

    #[test]
    fn scores_are_cosine_bounded() {
        let ix = index_of(&[&["a", "b", "c"], &["a", "a"], &["b"]]);
        let terms = vec![(tid(&ix, "a"), 3u32), (tid(&ix, "b"), 1u32)];
        for s in rank_all(&ix, &local_weights(&ix, &terms)) {
            assert!(s.score > 0.0 && s.score <= 1.0 + 1e-9, "score {}", s.score);
        }
    }

    #[test]
    fn unmatched_terms_contribute_nothing() {
        let ix = index_of(&[&["a"]]);
        // Term "a" plus a zero-weight entry.
        let weighted = vec![
            WeightedTerm {
                term: tid(&ix, "a"),
                w_qt: 1.0,
            },
            WeightedTerm {
                term: tid(&ix, "a"),
                w_qt: 0.0,
            },
        ];
        let ranking = rank(&ix, &weighted, 10);
        assert_eq!(ranking.len(), 1);
    }

    #[test]
    fn local_weights_drop_absent_terms() {
        let ix = index_of(&[&["a"]]);
        // Seeded vocabulary quirk: ask about a term with f_t = 0 by using
        // an id beyond any postings.
        let w = local_weights(&ix, &[(0, 1), (999, 1)]);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn ranking_cmp_is_total_and_deterministic() {
        let a = ScoredDoc { doc: 1, score: 0.5 };
        let b = ScoredDoc { doc: 2, score: 0.5 };
        let c = ScoredDoc { doc: 3, score: 0.9 };
        assert_eq!(a.ranking_cmp(&b), Ordering::Less);
        assert_eq!(b.ranking_cmp(&a), Ordering::Greater);
        assert_eq!(c.ranking_cmp(&a), Ordering::Less);
        assert_eq!(a.ranking_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn nan_scores_order_last_deterministically() {
        let real = ScoredDoc { doc: 9, score: 0.1 };
        let nan_a = ScoredDoc {
            doc: 1,
            score: f64::NAN,
        };
        let nan_b = ScoredDoc {
            doc: 2,
            score: f64::NAN,
        };
        assert_eq!(real.ranking_cmp(&nan_a), Ordering::Less);
        assert_eq!(nan_a.ranking_cmp(&real), Ordering::Greater);
        assert_eq!(nan_a.ranking_cmp(&nan_b), Ordering::Less);
        assert_eq!(nan_b.ranking_cmp(&nan_a), Ordering::Greater);
        assert_eq!(nan_a.ranking_cmp(&nan_a), Ordering::Equal);

        // Sorting any permutation yields the same ranking: reals by
        // score, then NaNs by doc id.
        let mut docs = [nan_b, real, nan_a];
        docs.sort_by(ScoredDoc::ranking_cmp);
        assert_eq!(docs[0].doc, 9);
        assert_eq!(docs[1].doc, 1);
        assert_eq!(docs[2].doc, 2);
    }

    #[test]
    fn merge_rankings_is_independent_of_list_order() {
        // Two librarians report identical (score, doc) pairs; the
        // librarian payload breaks the tie, so either arrival order
        // merges to the same ranking.
        let l1 = vec![(ScoredDoc { doc: 4, score: 0.5 }, 0u32)];
        let l2 = vec![(ScoredDoc { doc: 4, score: 0.5 }, 1u32)];
        let ab = merge_rankings(&[l1.clone(), l2.clone()], 2);
        let ba = merge_rankings(&[l2, l1], 2);
        assert_eq!(ab, ba);
        assert_eq!(ab[0].1, 0);
        assert_eq!(ab[1].1, 1);
    }

    #[test]
    fn scratch_reuse_matches_fresh_allocation() {
        let ix = index_of(&[&["a", "b"], &["a"], &["b", "b", "c"], &["c"]]);
        let mut scratch = RankScratch::new();
        for query in [vec![("a", 1u32)], vec![("b", 2), ("c", 1)], vec![("a", 1)]] {
            let terms: Vec<(TermId, u32)> = query.iter().map(|&(t, f)| (tid(&ix, t), f)).collect();
            let w = local_weights(&ix, &terms);
            let fresh = rank(&ix, &w, 10);
            let reused = rank_with_scratch(&ix, &w, 10, &mut scratch);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn merge_rankings_interleaves_by_score() {
        let l1 = vec![
            (ScoredDoc { doc: 0, score: 0.9 }, 0u32),
            (ScoredDoc { doc: 1, score: 0.3 }, 0u32),
        ];
        let l2 = vec![
            (ScoredDoc { doc: 0, score: 0.7 }, 1u32),
            (ScoredDoc { doc: 1, score: 0.1 }, 1u32),
        ];
        let merged = merge_rankings(&[l1, l2], 3);
        assert_eq!(merged.len(), 3);
        assert_eq!((merged[0].0.doc, merged[0].1), (0, 0));
        assert_eq!((merged[1].0.doc, merged[1].1), (0, 1));
        assert_eq!((merged[2].0.doc, merged[2].1), (1, 0));
    }

    #[test]
    fn merge_rankings_empty_inputs() {
        let merged: Vec<(ScoredDoc, u32)> = merge_rankings(&[], 5);
        assert!(merged.is_empty());
        let merged: Vec<(ScoredDoc, u32)> = merge_rankings(&[vec![], vec![]], 5);
        assert!(merged.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use teraphim_index::IndexBuilder;

    proptest! {
        #[test]
        fn top_k_agrees_with_exhaustive_sort(
            docs in proptest::collection::vec(
                proptest::collection::vec("[a-d]", 1..8),
                1..30,
            ),
            k in 0usize..40,
        ) {
            let mut b = IndexBuilder::new();
            for d in &docs {
                b.add_document(d);
            }
            let ix = b.build();
            let terms: Vec<(teraphim_index::TermId, u32)> = ix
                .vocab()
                .iter()
                .map(|(id, _)| (id, 1u32))
                .collect();
            let w = local_weights(&ix, &terms);
            let full = rank_all(&ix, &w);
            let partial = rank(&ix, &w, k);
            prop_assert_eq!(&full[..k.min(full.len())], partial.as_slice());
        }
    }
}
