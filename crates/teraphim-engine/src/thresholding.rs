//! Query-time thresholding: accumulator-limited evaluation.
//!
//! §5 of the paper cites Persin, Zobel & Sacks-Davis (JASIS 1996):
//! per-query thresholding can cut "the volume of index information
//! processed ... by a factor of five without reducing effectiveness".
//! This module implements the classic *quit/continue* accumulator
//! discipline of that line of work:
//!
//! * query terms are processed in **decreasing weight** order (rarest —
//!   most informative — first);
//! * once the accumulator table reaches its budget, **continue** mode
//!   stops *creating* accumulators but keeps updating existing ones,
//!   while **quit** mode stops processing lists entirely.
//!
//! The `thresholding` bench binary measures the processed-postings
//! reduction against the effectiveness cost, alongside the *static*
//! pruning of `teraphim_index::pruning` whose effectiveness the paper
//! found "severely degraded".

use crate::ranking::{ScoredDoc, WeightedTerm};
use std::cmp::Ordering;
use std::collections::HashMap;
use teraphim_index::similarity::{query_norm, w_dt};
use teraphim_index::{DocId, InvertedIndex};

/// What to do when the accumulator budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitMode {
    /// Stop creating new accumulators; keep updating existing ones.
    Continue,
    /// Stop processing inverted lists entirely.
    Quit,
}

/// Result of an accumulator-limited evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct LimitedRanking {
    /// The top-`k` ranking.
    pub hits: Vec<ScoredDoc>,
    /// Postings actually decoded and applied.
    pub postings_processed: u64,
    /// Accumulators allocated.
    pub accumulators_used: usize,
}

/// Evaluates the cosine measure with at most `max_accumulators`
/// candidate documents.
///
/// Terms are processed rarest-first; ties in final scores break by
/// document id, as in unlimited ranking, so `max_accumulators = usize::MAX`
/// reproduces `ranking::rank` exactly.
pub fn rank_limited(
    index: &InvertedIndex,
    terms: &[WeightedTerm],
    k: usize,
    max_accumulators: usize,
    mode: LimitMode,
) -> LimitedRanking {
    // Rarest (highest-weight) terms first.
    let mut ordered: Vec<WeightedTerm> = terms.to_vec();
    ordered.sort_by(|a, b| {
        b.w_qt
            .partial_cmp(&a.w_qt)
            .unwrap_or(Ordering::Equal)
            .then(a.term.cmp(&b.term))
    });

    let mut acc: HashMap<DocId, f64> = HashMap::new();
    let mut postings_processed = 0u64;
    let mut full = false;
    'terms: for wt in &ordered {
        if wt.w_qt == 0.0 {
            continue;
        }
        if full && mode == LimitMode::Quit {
            break 'terms;
        }
        for posting in index.postings(wt.term).iter().flatten() {
            postings_processed += 1;
            let contribution = wt.w_qt * w_dt(u64::from(posting.f_dt));
            let len = acc.len();
            match acc.entry(posting.doc) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    *e.get_mut() += contribution;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    if len < max_accumulators {
                        e.insert(contribution);
                    }
                    // else: continue mode drops the new document.
                }
            }
            if acc.len() >= max_accumulators {
                full = true;
            }
        }
    }

    let qnorm = query_norm(&terms.iter().map(|t| t.w_qt).collect::<Vec<_>>());
    let mut hits: Vec<ScoredDoc> = acc
        .into_iter()
        .filter_map(|(doc, sum)| {
            let wd = index.weights().weight(doc);
            (wd > 0.0 && qnorm > 0.0).then(|| ScoredDoc {
                doc,
                score: sum / (wd * qnorm),
            })
        })
        .collect();
    hits.sort_by(ScoredDoc::ranking_cmp);
    let accumulators_used = hits.len();
    hits.truncate(k);
    LimitedRanking {
        hits,
        postings_processed,
        accumulators_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::{local_weights, rank_all};
    use teraphim_index::IndexBuilder;

    fn index_of(docs: &[&[&str]]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for d in docs {
            let terms: Vec<String> = d.iter().map(|s| (*s).to_owned()).collect();
            b.add_document(&terms);
        }
        b.build()
    }

    fn weights(ix: &InvertedIndex) -> Vec<WeightedTerm> {
        let terms: Vec<(teraphim_index::TermId, u32)> =
            ix.vocab().iter().map(|(id, _)| (id, 1u32)).collect();
        local_weights(ix, &terms)
    }

    #[test]
    fn unlimited_matches_exact_ranking() {
        let ix = index_of(&[
            &["a", "b"],
            &["b", "c"],
            &["a", "a", "c"],
            &["d"],
            &["a", "d", "d"],
        ]);
        let w = weights(&ix);
        let exact = rank_all(&ix, &w);
        let exact_scores: HashMap<DocId, f64> = exact.iter().map(|h| (h.doc, h.score)).collect();
        for mode in [LimitMode::Continue, LimitMode::Quit] {
            let limited = rank_limited(&ix, &w, usize::MAX, usize::MAX, mode);
            assert_eq!(limited.hits.len(), exact.len());
            for h in &limited.hits {
                let expected = exact_scores[&h.doc];
                assert!((h.score - expected).abs() < 1e-9, "doc {}", h.doc);
            }
        }
    }

    #[test]
    fn budget_caps_accumulators() {
        let docs: Vec<Vec<String>> = (0..50).map(|i| vec![format!("t{}", i % 5)]).collect();
        let refs: Vec<&[String]> = docs.iter().map(Vec::as_slice).collect();
        let mut b = IndexBuilder::new();
        for d in refs {
            b.add_document(d);
        }
        let ix = b.build();
        let w = weights(&ix);
        let limited = rank_limited(&ix, &w, 100, 7, LimitMode::Continue);
        assert!(limited.accumulators_used <= 7);
    }

    #[test]
    fn quit_processes_fewer_postings_than_continue() {
        // Many docs sharing common terms: quit stops early.
        let docs: Vec<Vec<String>> = (0..100)
            .map(|i| vec!["common".to_owned(), format!("rare{i}")])
            .collect();
        let refs: Vec<&[String]> = docs.iter().map(Vec::as_slice).collect();
        let mut b = IndexBuilder::new();
        for d in refs {
            b.add_document(d);
        }
        let ix = b.build();
        let w = weights(&ix);
        let quit = rank_limited(&ix, &w, 10, 5, LimitMode::Quit);
        let cont = rank_limited(&ix, &w, 10, 5, LimitMode::Continue);
        assert!(quit.postings_processed < cont.postings_processed);
    }

    #[test]
    fn rare_terms_are_processed_first() {
        // One rare term in doc 9, one common term everywhere. With a
        // budget of 1, the single accumulator must belong to the rare
        // term's document.
        let docs: Vec<Vec<String>> = (0..10)
            .map(|i| {
                if i == 9 {
                    vec!["common".to_owned(), "rare".to_owned()]
                } else {
                    vec!["common".to_owned()]
                }
            })
            .collect();
        let refs: Vec<&[String]> = docs.iter().map(Vec::as_slice).collect();
        let mut b = IndexBuilder::new();
        for d in refs {
            b.add_document(d);
        }
        let ix = b.build();
        let w = weights(&ix);
        let limited = rank_limited(&ix, &w, 10, 1, LimitMode::Continue);
        assert_eq!(limited.hits.len(), 1);
        assert_eq!(limited.hits[0].doc, 9);
    }

    #[test]
    fn top_ranks_survive_moderate_budgets() {
        let docs: Vec<Vec<String>> = (0..60)
            .map(|i| {
                let mut d = vec![format!("w{}", i % 6)];
                if i % 10 == 0 {
                    d.push("signal".to_owned());
                    d.push("signal".to_owned());
                }
                d
            })
            .collect();
        let refs: Vec<&[String]> = docs.iter().map(Vec::as_slice).collect();
        let mut b = IndexBuilder::new();
        for d in refs {
            b.add_document(d);
        }
        let ix = b.build();
        let w = weights(&ix);
        let exact = rank_all(&ix, &w);
        let limited = rank_limited(&ix, &w, 3, 15, LimitMode::Continue);
        // The top-3 of the exact ranking must survive a 15-accumulator
        // budget (rare "signal" term processed first).
        let exact_top: Vec<DocId> = exact.iter().take(3).map(|h| h.doc).collect();
        let limited_top: Vec<DocId> = limited.hits.iter().map(|h| h.doc).collect();
        assert_eq!(exact_top, limited_top);
    }

    #[test]
    fn empty_query_is_empty() {
        let ix = index_of(&[&["a"]]);
        let limited = rank_limited(&ix, &[], 5, 10, LimitMode::Continue);
        assert!(limited.hits.is_empty());
        assert_eq!(limited.postings_processed, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ranking::{local_weights, rank_all};
    use proptest::prelude::*;
    use teraphim_index::IndexBuilder;

    proptest! {
        #[test]
        fn unlimited_budget_equals_exact(
            docs in proptest::collection::vec(
                proptest::collection::vec("[a-d]", 1..6),
                1..40,
            ),
        ) {
            let mut b = IndexBuilder::new();
            for d in &docs {
                b.add_document(d);
            }
            let ix = b.build();
            let terms: Vec<(teraphim_index::TermId, u32)> =
                ix.vocab().iter().map(|(id, _)| (id, 1u32)).collect();
            let w = local_weights(&ix, &terms);
            let exact = rank_all(&ix, &w);
            let limited = rank_limited(&ix, &w, usize::MAX, usize::MAX, LimitMode::Quit);
            prop_assert_eq!(limited.hits.len(), exact.len());
            // Terms are processed in a different order (rarest first), so
            // floating-point sums — and hence near-tie orderings — can
            // differ; compare per-document scores instead.
            let exact_scores: std::collections::HashMap<DocId, f64> =
                exact.iter().map(|h| (h.doc, h.score)).collect();
            for h in &limited.hits {
                let expected = exact_scores.get(&h.doc).copied().unwrap_or(f64::NAN);
                prop_assert!((h.score - expected).abs() < 1e-9, "doc {}", h.doc);
            }
        }

        #[test]
        fn budget_is_respected(
            docs in proptest::collection::vec(
                proptest::collection::vec("[a-c]", 1..4),
                1..40,
            ),
            budget in 1usize..20,
        ) {
            let mut b = IndexBuilder::new();
            for d in &docs {
                b.add_document(d);
            }
            let ix = b.build();
            let terms: Vec<(teraphim_index::TermId, u32)> =
                ix.vocab().iter().map(|(id, _)| (id, 1u32)).collect();
            let w = local_weights(&ix, &terms);
            for mode in [LimitMode::Continue, LimitMode::Quit] {
                let limited = rank_limited(&ix, &w, 100, budget, mode);
                prop_assert!(limited.accumulators_used <= budget);
            }
        }
    }
}
