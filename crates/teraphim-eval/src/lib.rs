//! Retrieval-effectiveness evaluation.
//!
//! Implements the two measures the paper reports (§2):
//!
//! * **11-point average recall-precision** over the top 1000 retrieved
//!   documents — interpolated precision averaged at recall levels
//!   0.0, 0.1, …, 1.0, then macro-averaged over queries.
//! * **Relevant documents in the top 20** — precision-at-20 scaled to a
//!   count, "an important way of quantifying retrieval effectiveness
//!   \[when\] one screen of titles contains 20 lines".
//!
//! Plus the standard companions (precision@k, recall@k, average
//! precision / MAP, R-precision) used by the extended experiments.
//!
//! # Examples
//!
//! ```
//! use teraphim_eval::{Judgments, QueryEval};
//!
//! let mut judgments = Judgments::new();
//! judgments.add_relevant(1, "doc-a");
//! judgments.add_relevant(1, "doc-c");
//! let ranking = vec!["doc-a".to_string(), "doc-b".to_string(), "doc-c".to_string()];
//! let eval = QueryEval::evaluate(&judgments, 1, &ranking);
//! assert_eq!(eval.relevant_retrieved, 2);
//! assert!((eval.precision_at(1) - 1.0).abs() < 1e-12);
//! ```

use std::collections::{HashMap, HashSet};
use std::fmt;

/// A query identifier (TREC topic number).
pub type QueryId = u32;

/// Relevance judgments ("qrels"): for each query, the set of documents a
/// human assessor marked relevant.
#[derive(Debug, Clone, Default)]
pub struct Judgments {
    by_query: HashMap<QueryId, HashSet<String>>,
}

impl Judgments {
    /// Creates an empty judgment set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `docno` relevant for `query`.
    pub fn add_relevant(&mut self, query: QueryId, docno: &str) {
        self.by_query
            .entry(query)
            .or_default()
            .insert(docno.to_owned());
    }

    /// Number of relevant documents for `query`.
    pub fn relevant_count(&self, query: QueryId) -> usize {
        self.by_query.get(&query).map_or(0, HashSet::len)
    }

    /// True if `docno` is judged relevant for `query`.
    pub fn is_relevant(&self, query: QueryId, docno: &str) -> bool {
        self.by_query
            .get(&query)
            .is_some_and(|set| set.contains(docno))
    }

    /// Queries that have at least one relevant document.
    pub fn queries(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.by_query.keys().copied()
    }

    /// Parses TREC qrels format: `topic 0 docno judgment` per line.
    ///
    /// Lines with judgment `0` are ignored; malformed lines are skipped.
    pub fn from_qrels(text: &str) -> Self {
        let mut j = Judgments::new();
        for line in text.lines() {
            let mut fields = line.split_whitespace();
            let (Some(topic), Some(_iter), Some(docno), Some(rel)) =
                (fields.next(), fields.next(), fields.next(), fields.next())
            else {
                continue;
            };
            let (Ok(topic), Ok(rel)) = (topic.parse::<u32>(), rel.parse::<i32>()) else {
                continue;
            };
            if rel > 0 {
                j.add_relevant(topic, docno);
            }
        }
        j
    }
}

/// Per-query effectiveness figures for one ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryEval {
    /// The query evaluated.
    pub query: QueryId,
    /// Total relevant documents for the query (from the judgments).
    pub relevant_total: usize,
    /// Relevant documents that appeared anywhere in the ranking.
    pub relevant_retrieved: usize,
    /// relevance flags of the ranking, in rank order.
    relevance: Vec<bool>,
}

impl QueryEval {
    /// Evaluates `ranking` (best first) against the judgments for
    /// `query`.
    pub fn evaluate<S: AsRef<str>>(judgments: &Judgments, query: QueryId, ranking: &[S]) -> Self {
        let relevance: Vec<bool> = ranking
            .iter()
            .map(|d| judgments.is_relevant(query, d.as_ref()))
            .collect();
        QueryEval {
            query,
            relevant_total: judgments.relevant_count(query),
            relevant_retrieved: relevance.iter().filter(|&&r| r).count(),
            relevance,
        }
    }

    /// Number of documents in the evaluated ranking.
    pub fn retrieved(&self) -> usize {
        self.relevance.len()
    }

    /// Precision after `k` documents (0.0 when `k == 0`).
    pub fn precision_at(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let hits = self.relevance.iter().take(k).filter(|&&r| r).count();
        hits as f64 / k as f64
    }

    /// Number of relevant documents in the top `k` (the paper's
    /// "relevant docs in top 20" when `k = 20`).
    pub fn relevant_in_top(&self, k: usize) -> usize {
        self.relevance.iter().take(k).filter(|&&r| r).count()
    }

    /// Recall after `k` documents (0.0 when the query has no relevant
    /// documents).
    pub fn recall_at(&self, k: usize) -> f64 {
        if self.relevant_total == 0 {
            return 0.0;
        }
        self.relevant_in_top(k) as f64 / self.relevant_total as f64
    }

    /// Non-interpolated average precision (the MAP contribution).
    pub fn average_precision(&self) -> f64 {
        if self.relevant_total == 0 {
            return 0.0;
        }
        let mut hits = 0usize;
        let mut sum = 0.0;
        for (i, &rel) in self.relevance.iter().enumerate() {
            if rel {
                hits += 1;
                sum += hits as f64 / (i + 1) as f64;
            }
        }
        sum / self.relevant_total as f64
    }

    /// R-precision: precision at rank R where R is the number of relevant
    /// documents.
    pub fn r_precision(&self) -> f64 {
        self.precision_at(self.relevant_total)
    }

    /// Interpolated precision at the given recall level in `[0, 1]`:
    /// the maximum precision at any rank with recall ≥ `level`.
    pub fn interpolated_precision(&self, level: f64) -> f64 {
        if self.relevant_total == 0 {
            return 0.0;
        }
        let mut best: f64 = 0.0;
        let mut hits = 0usize;
        for (i, &rel) in self.relevance.iter().enumerate() {
            if rel {
                hits += 1;
                let recall = hits as f64 / self.relevant_total as f64;
                if recall + 1e-12 >= level {
                    let precision = hits as f64 / (i + 1) as f64;
                    best = best.max(precision);
                }
            }
        }
        best
    }

    /// The TREC 11-point average: mean interpolated precision at recall
    /// 0.0, 0.1, …, 1.0.
    pub fn eleven_point_average(&self) -> f64 {
        let sum: f64 = (0..=10)
            .map(|i| self.interpolated_precision(i as f64 / 10.0))
            .sum();
        sum / 11.0
    }
}

/// Macro-averaged effectiveness over a query set, as reported in the
/// paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SetEval {
    /// Mean 11-point average recall-precision, as a percentage.
    pub eleven_point_pct: f64,
    /// Mean number of relevant documents in the top 20.
    pub relevant_in_top_20: f64,
    /// Mean average precision (not in the paper's table; reported for
    /// completeness).
    pub map: f64,
    /// Number of queries averaged.
    pub queries: usize,
}

impl fmt::Display for SetEval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "11-pt avg {:.2}%  rel@20 {:.1}  MAP {:.4}  ({} queries)",
            self.eleven_point_pct, self.relevant_in_top_20, self.map, self.queries
        )
    }
}

impl SetEval {
    /// Averages per-query evaluations. Queries with no relevant documents
    /// are excluded, following TREC practice.
    pub fn from_evals<'a, I>(evals: I) -> SetEval
    where
        I: IntoIterator<Item = &'a QueryEval>,
    {
        let mut eleven = 0.0;
        let mut top20 = 0.0;
        let mut map = 0.0;
        let mut n = 0usize;
        for eval in evals {
            if eval.relevant_total == 0 {
                continue;
            }
            eleven += eval.eleven_point_average();
            top20 += eval.relevant_in_top(20) as f64;
            map += eval.average_precision();
            n += 1;
        }
        if n == 0 {
            return SetEval::default();
        }
        SetEval {
            eleven_point_pct: 100.0 * eleven / n as f64,
            relevant_in_top_20: top20 / n as f64,
            map: map / n as f64,
            queries: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn judgments_one_query(relevant: &[&str]) -> Judgments {
        let mut j = Judgments::new();
        for d in relevant {
            j.add_relevant(1, d);
        }
        j
    }

    fn eval(relevant: &[&str], ranking: &[&str]) -> QueryEval {
        let j = judgments_one_query(relevant);
        QueryEval::evaluate(&j, 1, ranking)
    }

    #[test]
    fn perfect_ranking_has_perfect_metrics() {
        let e = eval(&["a", "b"], &["a", "b", "c", "d"]);
        assert!((e.eleven_point_average() - 1.0).abs() < 1e-12);
        assert!((e.average_precision() - 1.0).abs() < 1e-12);
        assert!((e.r_precision() - 1.0).abs() < 1e-12);
        assert_eq!(e.relevant_in_top(20), 2);
    }

    #[test]
    fn empty_ranking_scores_zero() {
        let e = eval(&["a"], &[]);
        assert_eq!(e.eleven_point_average(), 0.0);
        assert_eq!(e.average_precision(), 0.0);
        assert_eq!(e.relevant_in_top(20), 0);
    }

    #[test]
    fn no_relevant_documents_scores_zero_not_nan() {
        let e = eval(&[], &["a", "b"]);
        assert_eq!(e.eleven_point_average(), 0.0);
        assert_eq!(e.average_precision(), 0.0);
        assert_eq!(e.recall_at(2), 0.0);
        assert!(!e.r_precision().is_nan());
    }

    #[test]
    fn precision_at_k_hand_computed() {
        // relevant: a, c. ranking: a x c x
        let e = eval(&["a", "c"], &["a", "x", "c", "y"]);
        assert!((e.precision_at(1) - 1.0).abs() < 1e-12);
        assert!((e.precision_at(2) - 0.5).abs() < 1e-12);
        assert!((e.precision_at(3) - 2.0 / 3.0).abs() < 1e-12);
        assert!((e.precision_at(4) - 0.5).abs() < 1e-12);
        assert_eq!(e.precision_at(0), 0.0);
    }

    #[test]
    fn average_precision_hand_computed() {
        // Relevant at ranks 1 and 3 of 2 total: AP = (1/1 + 2/3)/2 = 5/6.
        let e = eval(&["a", "c"], &["a", "x", "c"]);
        assert!((e.average_precision() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn average_precision_penalizes_unretrieved_relevant() {
        // Only 1 of 2 relevant retrieved, at rank 1: AP = (1/1)/2 = 0.5.
        let e = eval(&["a", "zz"], &["a", "x"]);
        assert!((e.average_precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn interpolated_precision_is_monotone_nonincreasing() {
        let e = eval(&["a", "c", "e"], &["a", "b", "c", "d", "e", "f"]);
        let mut prev = f64::INFINITY;
        for i in 0..=10 {
            let p = e.interpolated_precision(i as f64 / 10.0);
            assert!(p <= prev + 1e-12, "level {i}");
            prev = p;
        }
    }

    #[test]
    fn eleven_point_hand_computed() {
        // 1 relevant doc at rank 2: interpolated precision is 0.5 at every
        // level (recall jumps 0 -> 1 at rank 2).
        let e = eval(&["b"], &["x", "b"]);
        assert!((e.eleven_point_average() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recall_at_k() {
        let e = eval(&["a", "b", "c", "d"], &["a", "x", "b"]);
        assert!((e.recall_at(1) - 0.25).abs() < 1e-12);
        assert!((e.recall_at(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn r_precision_hand_computed() {
        // R = 2, top-2 contains 1 relevant -> 0.5.
        let e = eval(&["a", "b"], &["a", "x", "b"]);
        assert!((e.r_precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn set_eval_macro_averages() {
        let mut j = Judgments::new();
        j.add_relevant(1, "a");
        j.add_relevant(2, "b");
        let e1 = QueryEval::evaluate(&j, 1, &["a"]); // perfect
        let e2 = QueryEval::evaluate(&j, 2, &["x", "b"]); // 0.5
        let set = SetEval::from_evals([&e1, &e2]);
        assert_eq!(set.queries, 2);
        assert!((set.eleven_point_pct - 75.0).abs() < 1e-9);
        assert!((set.relevant_in_top_20 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_eval_skips_queries_without_judgments() {
        let mut j = Judgments::new();
        j.add_relevant(1, "a");
        let e1 = QueryEval::evaluate(&j, 1, &["a"]);
        let e2 = QueryEval::evaluate(&j, 99, &["x"]);
        let set = SetEval::from_evals([&e1, &e2]);
        assert_eq!(set.queries, 1);
        assert!((set.eleven_point_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn set_eval_empty_is_zero() {
        let set = SetEval::from_evals([]);
        assert_eq!(set.queries, 0);
        assert_eq!(set.eleven_point_pct, 0.0);
    }

    #[test]
    fn qrels_parsing() {
        let text = "51 0 AP-1 1\n51 0 AP-2 0\n52 0 WSJ-9 1\nbad line\n52 0 FR-3 2\n";
        let j = Judgments::from_qrels(text);
        assert!(j.is_relevant(51, "AP-1"));
        assert!(!j.is_relevant(51, "AP-2"));
        assert!(j.is_relevant(52, "WSJ-9"));
        assert!(j.is_relevant(52, "FR-3"));
        assert_eq!(j.relevant_count(51), 1);
        assert_eq!(j.relevant_count(52), 2);
    }

    #[test]
    fn display_formats() {
        let set = SetEval {
            eleven_point_pct: 23.07,
            relevant_in_top_20: 8.2,
            map: 0.2,
            queries: 150,
        };
        let s = format!("{set}");
        assert!(s.contains("23.07"));
        assert!(s.contains("8.2"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_eval() -> impl Strategy<Value = QueryEval> {
        (
            proptest::collection::vec(proptest::bool::ANY, 0..100),
            0usize..20,
        )
            .prop_map(|(relevance, extra_unretrieved)| {
                let retrieved_rel = relevance.iter().filter(|&&r| r).count();
                QueryEval {
                    query: 1,
                    relevant_total: retrieved_rel + extra_unretrieved,
                    relevant_retrieved: retrieved_rel,
                    relevance,
                }
            })
    }

    proptest! {
        #[test]
        fn metrics_are_bounded(e in arbitrary_eval()) {
            prop_assert!((0.0..=1.0).contains(&e.eleven_point_average()));
            prop_assert!((0.0..=1.0).contains(&e.average_precision()));
            prop_assert!((0.0..=1.0).contains(&e.r_precision()));
            for k in [1, 5, 20, 1000] {
                prop_assert!((0.0..=1.0).contains(&e.precision_at(k)));
                prop_assert!((0.0..=1.0).contains(&e.recall_at(k)));
            }
        }

        #[test]
        fn interpolated_precision_nonincreasing(e in arbitrary_eval()) {
            let mut prev = f64::INFINITY;
            for i in 0..=10 {
                let p = e.interpolated_precision(i as f64 / 10.0);
                prop_assert!(p <= prev + 1e-12);
                prev = p;
            }
        }

        #[test]
        fn recall_monotone_in_k(e in arbitrary_eval()) {
            let mut prev = 0.0;
            for k in 0..e.retrieved() {
                let r = e.recall_at(k + 1);
                prop_assert!(r + 1e-12 >= prev);
                prev = r;
            }
        }
    }
}
