//! Index construction and the complete inverted index.

use crate::postings::{Posting, PostingsList};
use crate::skips::{SkipTable, DEFAULT_SKIP_EVERY};
use crate::stats::CollectionStats;
use crate::vocab::{read_u32, Vocabulary};
use crate::weights::DocWeights;
use crate::{DocId, IndexError, TermId};
use std::collections::HashMap;

/// An in-memory index under construction.
///
/// Documents are added as term sequences (the output of
/// `teraphim_text::Analyzer::analyze`); ids are assigned densely in
/// insertion order, which is also what keeps *grouping* meaningful — the
/// paper's groups are runs of `G` consecutive document numbers.
///
/// # Examples
///
/// ```
/// use teraphim_index::builder::IndexBuilder;
///
/// let mut builder = IndexBuilder::new();
/// let d0 = builder.add_document(&["cat", "sat", "cat"]);
/// assert_eq!(d0, 0);
/// let index = builder.build();
/// let cat = index.vocab().term_id("cat").unwrap();
/// assert_eq!(index.postings(cat).get(0), Some(2));
/// ```
#[derive(Debug, Default)]
pub struct IndexBuilder {
    vocab: Vocabulary,
    /// Per-term accumulated postings (docs strictly increasing by
    /// construction).
    lists: Vec<Vec<Posting>>,
    weights: DocWeights,
    doc_lengths: Vec<u32>,
}

impl IndexBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of documents added so far.
    pub fn num_docs(&self) -> u64 {
        self.doc_lengths.len() as u64
    }

    /// Adds a document given its analyzed term sequence; returns its id.
    pub fn add_document<S: AsRef<str>>(&mut self, terms: &[S]) -> DocId {
        let doc = self.doc_lengths.len() as DocId;
        let mut freqs: HashMap<TermId, u32> = HashMap::new();
        for term in terms {
            let id = self.vocab.intern(term.as_ref());
            *freqs.entry(id).or_insert(0) += 1;
        }
        // Deterministic order: sort by term id before appending.
        let mut entries: Vec<(TermId, u32)> = freqs.into_iter().collect();
        entries.sort_unstable_by_key(|&(t, _)| t);
        for &(term, f_dt) in &entries {
            let idx = term as usize;
            if idx >= self.lists.len() {
                self.lists.resize_with(idx + 1, Vec::new);
            }
            self.lists[idx].push(Posting { doc, f_dt });
        }
        self.weights.push(DocWeights::weight_from_freqs(
            entries.iter().map(|&(_, f)| u64::from(f)),
        ));
        self.doc_lengths.push(terms.len() as u32);
        doc
    }

    /// Pre-registers a term so that it receives the next dense id even if
    /// no document contains it (used to align a derived index's term ids
    /// with an existing global vocabulary).
    pub fn seed_term(&mut self, term: &str) -> TermId {
        self.vocab.intern(term)
    }

    /// Adds a document given `(term, frequency)` pairs instead of a raw
    /// term sequence — used when the caller has already aggregated
    /// frequencies (e.g. when indexing *groups* as pseudo-documents).
    ///
    /// # Panics
    ///
    /// Panics if any frequency is zero.
    pub fn add_document_freqs<S: AsRef<str>>(&mut self, freqs: &[(S, u32)]) -> DocId {
        let doc = self.doc_lengths.len() as DocId;
        let mut entries: Vec<(TermId, u32)> = Vec::with_capacity(freqs.len());
        let mut total = 0u64;
        for (term, f) in freqs {
            assert!(*f > 0, "frequencies must be positive");
            let id = self.vocab.intern(term.as_ref());
            entries.push((id, *f));
            total += u64::from(*f);
        }
        entries.sort_unstable_by_key(|&(t, _)| t);
        // Merge duplicate terms if the caller supplied any.
        let mut merged: Vec<(TermId, u32)> = Vec::with_capacity(entries.len());
        for (t, f) in entries {
            match merged.last_mut() {
                Some(last) if last.0 == t => last.1 += f,
                _ => merged.push((t, f)),
            }
        }
        for &(term, f_dt) in &merged {
            let idx = term as usize;
            if idx >= self.lists.len() {
                self.lists.resize_with(idx + 1, Vec::new);
            }
            self.lists[idx].push(Posting { doc, f_dt });
        }
        self.weights.push(DocWeights::weight_from_freqs(
            merged.iter().map(|&(_, f)| u64::from(f)),
        ));
        self.doc_lengths.push(total as u32);
        doc
    }

    /// Finalizes the index, compressing all lists.
    pub fn build(self) -> InvertedIndex {
        let mut stats = CollectionStats::new();
        stats.set_num_docs(self.doc_lengths.len() as u64);
        let mut postings = Vec::with_capacity(self.vocab.len());
        for (term_idx, list) in self.lists.iter().enumerate() {
            stats.add_doc_freq(term_idx as TermId, list.len() as u64);
            postings.push(PostingsList::from_postings(list));
        }
        // Terms can exist in the vocabulary without lists only if the
        // vocabulary was pre-seeded; align lengths defensively.
        while postings.len() < self.vocab.len() {
            stats.add_doc_freq(postings.len() as TermId, 0);
            postings.push(PostingsList::from_postings(&[]));
        }
        InvertedIndex {
            vocab: self.vocab,
            postings,
            stats,
            weights: self.weights,
            doc_lengths: self.doc_lengths,
            skip_tables: None,
        }
    }
}

/// A complete compressed inverted index over one (sub)collection: the
/// structure a *librarian* owns.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    vocab: Vocabulary,
    postings: Vec<PostingsList>,
    stats: CollectionStats,
    weights: DocWeights,
    doc_lengths: Vec<u32>,
    skip_tables: Option<Vec<SkipTable>>,
}

impl InvertedIndex {
    /// Number of documents indexed.
    pub fn num_docs(&self) -> u64 {
        self.stats.num_docs()
    }

    /// The term dictionary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Collection statistics (`N`, per-term `f_t`).
    pub fn stats(&self) -> &CollectionStats {
        &self.stats
    }

    /// The document-weights table.
    pub fn weights(&self) -> &DocWeights {
        &self.weights
    }

    /// Term count of `doc` as indexed.
    pub fn doc_length(&self, doc: DocId) -> u32 {
        self.doc_lengths.get(doc as usize).copied().unwrap_or(0)
    }

    /// The compressed postings list of `term`.
    ///
    /// # Panics
    ///
    /// Panics if `term` is out of range.
    pub fn postings(&self, term: TermId) -> &PostingsList {
        &self.postings[term as usize]
    }

    /// Assembles an index from already-merged parts (used by
    /// [`crate::merge`]).
    ///
    /// # Panics
    ///
    /// Panics if section lengths disagree.
    pub(crate) fn from_merge_parts(
        vocab: Vocabulary,
        postings: Vec<PostingsList>,
        stats: CollectionStats,
        weights: DocWeights,
        doc_lengths: Vec<u32>,
    ) -> InvertedIndex {
        assert_eq!(vocab.len(), postings.len(), "vocab/postings mismatch");
        assert_eq!(
            weights.len() as u64,
            stats.num_docs(),
            "weights/doc-count mismatch"
        );
        assert_eq!(doc_lengths.len() as u64, stats.num_docs());
        InvertedIndex {
            vocab,
            postings,
            stats,
            weights,
            doc_lengths,
            skip_tables: None,
        }
    }

    /// Replaces the document-weights table (used by index pruning, which
    /// approximates postings but must keep the original normalization).
    ///
    /// # Panics
    ///
    /// Panics if the replacement covers a different number of documents.
    pub fn replace_weights(&mut self, weights: DocWeights) {
        assert_eq!(
            weights.len() as u64,
            self.num_docs(),
            "weights table must cover every document"
        );
        self.weights = weights;
    }

    /// Builds skip tables for every list with the given interval,
    /// enabling [`InvertedIndex::skip_cursor`]. Idempotent per interval.
    pub fn build_skips(&mut self, skip_every: u32) {
        let tables = self
            .postings
            .iter()
            .map(|list| SkipTable::build(list, skip_every).expect("own lists are well-formed"))
            .collect();
        self.skip_tables = Some(tables);
    }

    /// A seeking cursor over `term`'s list. Builds default skip tables on
    /// first use if [`InvertedIndex::build_skips`] was not called.
    pub fn skip_cursor(&mut self, term: TermId) -> crate::skips::SkipCursor<'_> {
        if self.skip_tables.is_none() {
            self.build_skips(DEFAULT_SKIP_EVERY);
        }
        let tables = self.skip_tables.as_ref().expect("just built");
        tables[term as usize].cursor(&self.postings[term as usize])
    }

    /// True if skip tables have been built.
    pub fn has_skips(&self) -> bool {
        self.skip_tables.is_some()
    }

    /// Total compressed postings size in bytes.
    pub fn postings_bytes(&self) -> usize {
        self.postings.iter().map(PostingsList::byte_len).sum()
    }

    /// Total index size in bytes: postings + vocabulary + weights (+ skip
    /// tables if built). This is the figure compared against the paper's
    /// "around 40 Mb" central index for a gigabyte of text.
    pub fn index_bytes(&self) -> usize {
        self.postings_bytes()
            + self.vocab.serialized_len()
            + self.weights.serialized_len()
            + self
                .skip_tables
                .as_ref()
                .map_or(0, |ts| ts.iter().map(SkipTable::byte_len).sum())
    }

    /// Serializes the full index (without skip tables, which are
    /// rebuilt).
    pub fn to_bytes(&self) -> Vec<u8> {
        let vocab = self.vocab.to_bytes();
        let stats = self.stats.to_bytes();
        let weights = self.weights.to_bytes();
        let mut out = Vec::new();
        for section in [&vocab, &stats, &weights] {
            out.extend_from_slice(&(section.len() as u32).to_le_bytes());
            out.extend_from_slice(section);
        }
        out.extend_from_slice(&(self.doc_lengths.len() as u32).to_le_bytes());
        for &len in &self.doc_lengths {
            out.extend_from_slice(&len.to_le_bytes());
        }
        out.extend_from_slice(&(self.postings.len() as u32).to_le_bytes());
        for list in &self.postings {
            out.extend_from_slice(&list.len().to_le_bytes());
            out.extend_from_slice(&list.last_doc().to_le_bytes());
            out.extend_from_slice(&(list.byte_len() as u32).to_le_bytes());
            out.extend_from_slice(list.as_bytes());
        }
        out
    }

    /// Deserializes the form produced by [`InvertedIndex::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::Corrupt`] on truncation or inconsistency.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IndexError> {
        let mut pos = 0usize;
        let section = |pos: &mut usize| -> Result<&[u8], IndexError> {
            let len = read_u32(bytes, pos)? as usize;
            let slice = bytes
                .get(*pos..*pos + len)
                .ok_or(IndexError::Corrupt("index section truncated"))?;
            *pos += len;
            Ok(slice)
        };
        let vocab = Vocabulary::from_bytes(section(&mut pos)?)?;
        let stats = CollectionStats::from_bytes(section(&mut pos)?)?;
        let weights = DocWeights::from_bytes(section(&mut pos)?)?;
        let doc_count = read_u32(bytes, &mut pos)? as usize;
        let mut doc_lengths = Vec::with_capacity(doc_count);
        for _ in 0..doc_count {
            doc_lengths.push(read_u32(bytes, &mut pos)?);
        }
        let term_count = read_u32(bytes, &mut pos)? as usize;
        if term_count != vocab.len() {
            return Err(IndexError::Corrupt("postings/vocabulary length mismatch"));
        }
        let mut postings = Vec::with_capacity(term_count);
        for _ in 0..term_count {
            let count = read_u32(bytes, &mut pos)?;
            let last_doc = read_u32(bytes, &mut pos)?;
            let byte_len = read_u32(bytes, &mut pos)? as usize;
            let slice = bytes
                .get(pos..pos + byte_len)
                .ok_or(IndexError::Corrupt("postings truncated"))?;
            pos += byte_len;
            postings.push(PostingsList::from_raw_parts(
                slice.to_vec(),
                count,
                last_doc,
            ));
        }
        Ok(InvertedIndex {
            vocab,
            postings,
            stats,
            weights,
            doc_lengths,
            skip_tables: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(terms: &[&str]) -> Vec<String> {
        terms.iter().map(|s| (*s).to_owned()).collect()
    }

    fn small_index() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document(&doc(&["cat", "sat", "cat"]));
        b.add_document(&doc(&["dog", "sat"]));
        b.add_document(&doc(&["cat", "dog", "bird"]));
        b.build()
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = IndexBuilder::new();
        assert_eq!(b.add_document(&doc(&["a"])), 0);
        assert_eq!(b.add_document(&doc(&["b"])), 1);
        assert_eq!(b.num_docs(), 2);
    }

    #[test]
    fn postings_record_frequencies() {
        let index = small_index();
        let cat = index.vocab().term_id("cat").unwrap();
        let list = index.postings(cat);
        assert_eq!(list.len(), 2);
        assert_eq!(list.get(0), Some(2));
        assert_eq!(list.get(2), Some(1));
        assert_eq!(list.get(1), None);
    }

    #[test]
    fn stats_match_postings() {
        let index = small_index();
        assert_eq!(index.num_docs(), 3);
        for (term, _) in index.vocab().iter() {
            assert_eq!(
                index.stats().doc_freq(term),
                u64::from(index.postings(term).len()),
                "term {term}"
            );
        }
    }

    #[test]
    fn doc_weights_match_formula() {
        let index = small_index();
        // Doc 0: cat f=2, sat f=1 -> sqrt(ln(3)^2 + ln(2)^2).
        let expected = (3f64.ln().powi(2) + 2f64.ln().powi(2)).sqrt();
        assert!((index.weights().weight(0) - expected).abs() < 1e-12);
    }

    #[test]
    fn doc_lengths_are_recorded() {
        let index = small_index();
        assert_eq!(index.doc_length(0), 3);
        assert_eq!(index.doc_length(1), 2);
        assert_eq!(index.doc_length(99), 0);
    }

    #[test]
    fn empty_document_is_allowed() {
        let mut b = IndexBuilder::new();
        b.add_document(&doc(&[]));
        b.add_document(&doc(&["x"]));
        let index = b.build();
        assert_eq!(index.num_docs(), 2);
        assert_eq!(index.weights().weight(0), 0.0);
    }

    #[test]
    fn empty_index_builds() {
        let index = IndexBuilder::new().build();
        assert_eq!(index.num_docs(), 0);
        // Only fixed headers (e.g. the weights table's count field).
        assert!(index.index_bytes() <= 8, "got {}", index.index_bytes());
        let rt = InvertedIndex::from_bytes(&index.to_bytes()).unwrap();
        assert_eq!(rt.num_docs(), 0);
    }

    #[test]
    fn serialization_roundtrips() {
        let index = small_index();
        let bytes = index.to_bytes();
        let rt = InvertedIndex::from_bytes(&bytes).unwrap();
        assert_eq!(rt.num_docs(), index.num_docs());
        assert_eq!(rt.vocab().len(), index.vocab().len());
        for (term, name) in index.vocab().iter() {
            let rt_term = rt.vocab().term_id(name).unwrap();
            assert_eq!(
                rt.postings(rt_term).decode().unwrap(),
                index.postings(term).decode().unwrap()
            );
            assert_eq!(rt.stats().doc_freq(rt_term), index.stats().doc_freq(term));
        }
        for d in 0..index.num_docs() as DocId {
            assert_eq!(rt.weights().weight(d), index.weights().weight(d));
            assert_eq!(rt.doc_length(d), index.doc_length(d));
        }
    }

    #[test]
    fn deserialization_rejects_truncation() {
        let bytes = small_index().to_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                InvertedIndex::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn skip_cursor_agrees_with_postings() {
        let mut index = small_index();
        let sat = index.vocab().term_id("sat").unwrap();
        let expected = index.postings(sat).decode().unwrap();
        let mut cursor = index.skip_cursor(sat);
        for p in expected {
            assert_eq!(cursor.frequency_of(p.doc).unwrap(), Some(p.f_dt));
        }
    }

    #[test]
    fn index_bytes_counts_all_sections() {
        let mut index = small_index();
        let without_skips = index.index_bytes();
        assert!(without_skips > 0);
        index.build_skips(2);
        assert!(index.index_bytes() > without_skips);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn build_then_serialize_roundtrips(
            docs in proptest::collection::vec(
                proptest::collection::vec("[a-e]{1,3}", 0..20),
                0..30,
            ),
        ) {
            let mut b = IndexBuilder::new();
            for terms in &docs {
                b.add_document(terms);
            }
            let index = b.build();
            prop_assert_eq!(index.num_docs(), docs.len() as u64);
            let rt = InvertedIndex::from_bytes(&index.to_bytes()).unwrap();
            prop_assert_eq!(rt.num_docs(), index.num_docs());
            for (term, name) in index.vocab().iter() {
                let rt_term = rt.vocab().term_id(name).unwrap();
                prop_assert_eq!(
                    rt.postings(rt_term).decode().unwrap(),
                    index.postings(term).decode().unwrap()
                );
            }
        }

        #[test]
        fn doc_freq_equals_distinct_docs_containing_term(
            docs in proptest::collection::vec(
                proptest::collection::vec("[a-c]{1,2}", 0..10),
                1..20,
            ),
        ) {
            let mut b = IndexBuilder::new();
            for terms in &docs {
                b.add_document(terms);
            }
            let index = b.build();
            for (term, name) in index.vocab().iter() {
                let expected = docs
                    .iter()
                    .filter(|d| d.iter().any(|t| t == name))
                    .count() as u64;
                prop_assert_eq!(index.stats().doc_freq(term), expected);
            }
        }
    }
}
