//! Grouped central indexes (Moffat & Zobel, TREC-3 1994).
//!
//! A Central Index receptionist cannot afford to duplicate the full
//! indexes of every subcollection, so adjacent documents are collected
//! into *groups* of size `G` and the groups indexed as if they were
//! single documents. The number of groups containing each term is smaller
//! than the number of documents containing it, so d-gaps grow and lists
//! shrink; at `G = 10` the paper reports the index roughly halving.
//!
//! Query evaluation against a grouped index ranks *groups*; the top `k'`
//! group identifiers are then expanded into `k'·G` candidate document
//! identifiers, which the owning librarians score exactly (via
//! [`crate::skips`]). Groups never straddle subcollection boundaries, so
//! every expanded range maps to a single librarian.

use crate::builder::{IndexBuilder, InvertedIndex};
use crate::stats::{merge_stats, CollectionStats};
use crate::vocab::Vocabulary;
use crate::{DocId, IndexError, TermId};
use std::collections::BTreeMap;

/// Identifier of a document group within a grouped index.
pub type GroupId = u32;

/// Where a group's documents live: a run of consecutive local documents
/// within one subcollection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupSpan {
    /// Index of the owning subcollection (librarian).
    pub part: u32,
    /// First local document id in the group.
    pub first_doc: DocId,
    /// Number of documents in the group (`≤ G`; the last group of a
    /// subcollection may be short).
    pub len: u32,
}

/// A grouped central index over several subcollection indexes.
#[derive(Debug, Clone)]
pub struct GroupedIndex {
    /// Inverted index whose "documents" are groups.
    group_index: InvertedIndex,
    /// Group id → location of its documents.
    spans: Vec<GroupSpan>,
    /// Global *document*-level statistics (merged over subcollections);
    /// used to compute the query weights shipped to librarians.
    doc_stats: CollectionStats,
    /// Mapping from the grouped index's global term ids to nothing — the
    /// grouped index vocabulary *is* the global vocabulary.
    group_size: u32,
    total_docs: u64,
}

impl GroupedIndex {
    /// Builds a grouped index over subcollection indexes with groups of
    /// `group_size` consecutive documents. Groups never straddle
    /// subcollections.
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0`.
    pub fn build(parts: &[&InvertedIndex], group_size: u32) -> Result<Self, IndexError> {
        assert!(group_size > 0, "group size must be positive");
        // Merge vocabularies and document-level statistics.
        let stat_parts: Vec<(&Vocabulary, &CollectionStats)> =
            parts.iter().map(|ix| (ix.vocab(), ix.stats())).collect();
        let (global_vocab, doc_stats, mappings) = merge_stats(&stat_parts);

        // Assign group ids: contiguous per part, in part order.
        let mut spans = Vec::new();
        let mut part_group_offset = Vec::with_capacity(parts.len());
        for (p, ix) in parts.iter().enumerate() {
            part_group_offset.push(spans.len() as GroupId);
            let n = ix.num_docs() as DocId;
            let mut first = 0;
            while first < n {
                let len = group_size.min(n - first);
                spans.push(GroupSpan {
                    part: p as u32,
                    first_doc: first,
                    len,
                });
                first += len;
            }
        }

        // Accumulate per-term, per-group frequencies.
        // BTreeMap keeps groups sorted per term, which PostingsList needs.
        let mut per_term: Vec<BTreeMap<GroupId, u32>> =
            (0..global_vocab.len()).map(|_| BTreeMap::new()).collect();
        for (p, ix) in parts.iter().enumerate() {
            let mapping = &mappings[p];
            let offset = part_group_offset[p];
            for (local_term, _) in ix.vocab().iter() {
                let global_term = mapping[local_term as usize] as usize;
                for posting in ix.postings(local_term).iter() {
                    let posting = posting?;
                    let group = offset + posting.doc / group_size;
                    *per_term[global_term].entry(group).or_insert(0) += posting.f_dt;
                }
            }
        }

        // Build the group-level inverted index by feeding groups as
        // pseudo-documents (transpose per-term map to per-group lists).
        let mut per_group: Vec<Vec<(TermId, u32)>> = vec![Vec::new(); spans.len()];
        for (term, groups) in per_term.iter().enumerate() {
            for (&group, &f_gt) in groups {
                per_group[group as usize].push((term as TermId, f_gt));
            }
        }
        let mut gb = IndexBuilder::new();
        // Pre-seed vocabulary in global id order so group term ids equal
        // global term ids.
        for (_, term) in global_vocab.iter() {
            gb.seed_term(term);
        }
        for entries in &per_group {
            let named: Vec<(&str, u32)> = entries
                .iter()
                .map(|&(t, f)| (global_vocab.term(t), f))
                .collect();
            gb.add_document_freqs(&named);
        }
        let group_index = gb.build();
        debug_assert_eq!(group_index.vocab().len(), global_vocab.len());

        Ok(GroupedIndex {
            group_index,
            spans,
            total_docs: doc_stats.num_docs(),
            doc_stats,
            group_size,
        })
    }

    /// The group size `G`.
    pub fn group_size(&self) -> u32 {
        self.group_size
    }

    /// Number of groups.
    pub fn num_groups(&self) -> u64 {
        self.group_index.num_docs()
    }

    /// Total number of documents across all subcollections.
    pub fn total_docs(&self) -> u64 {
        self.total_docs
    }

    /// The global vocabulary (shared by group- and document-level
    /// statistics).
    pub fn vocab(&self) -> &Vocabulary {
        self.group_index.vocab()
    }

    /// Group-level inverted index (groups as pseudo-documents).
    pub fn group_index(&self) -> &InvertedIndex {
        &self.group_index
    }

    /// Global document-level statistics (for the weights shipped to
    /// librarians).
    pub fn doc_stats(&self) -> &CollectionStats {
        &self.doc_stats
    }

    /// The span of `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn span(&self, group: GroupId) -> GroupSpan {
        self.spans[group as usize]
    }

    /// Expands group ids into per-part candidate document lists, sorted
    /// and deduplicated — the `k'·G` candidates of the CI method.
    ///
    /// Returns one `(part, docs)` entry per subcollection that owns at
    /// least one candidate.
    pub fn expand_groups(&self, groups: &[GroupId]) -> Vec<(u32, Vec<DocId>)> {
        let mut per_part: BTreeMap<u32, Vec<DocId>> = BTreeMap::new();
        for &g in groups {
            let span = self.span(g);
            per_part
                .entry(span.part)
                .or_default()
                .extend(span.first_doc..span.first_doc + span.len);
        }
        per_part
            .into_iter()
            .map(|(part, mut docs)| {
                docs.sort_unstable();
                docs.dedup();
                (part, docs)
            })
            .collect()
    }

    /// Size of the grouped index in bytes (the paper's central-index
    /// storage accounting).
    pub fn index_bytes(&self) -> usize {
        self.group_index.index_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(docs: &[&[&str]]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for d in docs {
            let terms: Vec<String> = d.iter().map(|s| (*s).to_owned()).collect();
            b.add_document(&terms);
        }
        b.build()
    }

    fn two_parts() -> (InvertedIndex, InvertedIndex) {
        let a = part(&[
            &["cat", "sat"],
            &["cat"],
            &["dog"],
            &["bird", "cat"],
            &["fish"],
        ]);
        let b = part(&[&["dog", "dog"], &["cat", "fish"], &["emu"]]);
        (a, b)
    }

    #[test]
    fn groups_do_not_straddle_parts() {
        let (a, b) = two_parts();
        let g = GroupedIndex::build(&[&a, &b], 2).unwrap();
        // Part a: 5 docs -> groups of 2,2,1; part b: 3 docs -> 2,1.
        assert_eq!(g.num_groups(), 5);
        assert_eq!(
            g.span(0),
            GroupSpan {
                part: 0,
                first_doc: 0,
                len: 2
            }
        );
        assert_eq!(
            g.span(2),
            GroupSpan {
                part: 0,
                first_doc: 4,
                len: 1
            }
        );
        assert_eq!(
            g.span(3),
            GroupSpan {
                part: 1,
                first_doc: 0,
                len: 2
            }
        );
        assert_eq!(
            g.span(4),
            GroupSpan {
                part: 1,
                first_doc: 2,
                len: 1
            }
        );
    }

    #[test]
    fn group_frequencies_sum_document_frequencies() {
        let (a, b) = two_parts();
        let g = GroupedIndex::build(&[&a, &b], 2).unwrap();
        let cat = g.vocab().term_id("cat").unwrap();
        let list = g.group_index().postings(cat);
        // cat appears: part0 docs 0,1 (group 0, f=2), doc 3 (group 1, f=1),
        // part1 doc 1 (group 3, f=1).
        assert_eq!(list.get(0), Some(2));
        assert_eq!(list.get(1), Some(1));
        assert_eq!(list.get(3), Some(1));
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn doc_stats_are_global() {
        let (a, b) = two_parts();
        let g = GroupedIndex::build(&[&a, &b], 2).unwrap();
        assert_eq!(g.total_docs(), 8);
        let cat = g.vocab().term_id("cat").unwrap();
        assert_eq!(g.doc_stats().doc_freq(cat), 4); // 3 in a + 1 in b
        let dog = g.vocab().term_id("dog").unwrap();
        assert_eq!(g.doc_stats().doc_freq(dog), 2);
    }

    #[test]
    fn grouping_reduces_index_size_on_clustered_data() {
        // 400 documents where the same term appears in every doc: the
        // grouped list has 1/G as many entries.
        let docs: Vec<Vec<String>> = (0..400)
            .map(|i| vec!["common".to_owned(), format!("unique{i}")])
            .collect();
        let mut builder = IndexBuilder::new();
        for d in &docs {
            builder.add_document(d);
        }
        let ix = builder.build();
        let flat = GroupedIndex::build(&[&ix], 1).unwrap();
        let grouped = GroupedIndex::build(&[&ix], 10).unwrap();
        assert!(
            grouped.group_index().postings_bytes() < flat.group_index().postings_bytes(),
            "grouped {} vs flat {}",
            grouped.group_index().postings_bytes(),
            flat.group_index().postings_bytes()
        );
        assert_eq!(grouped.num_groups(), 40);
    }

    #[test]
    fn group_size_one_mirrors_documents() {
        let (a, b) = two_parts();
        let g = GroupedIndex::build(&[&a, &b], 1).unwrap();
        assert_eq!(g.num_groups(), 8);
        let cat = g.vocab().term_id("cat").unwrap();
        // Global doc order: part0 docs 0..5, part1 docs 5..8.
        let list = g.group_index().postings(cat);
        assert_eq!(list.get(0), Some(1));
        assert_eq!(list.get(1), Some(1));
        assert_eq!(list.get(3), Some(1));
        assert_eq!(list.get(6), Some(1));
    }

    #[test]
    fn expand_groups_produces_sorted_per_part_candidates() {
        let (a, b) = two_parts();
        let g = GroupedIndex::build(&[&a, &b], 2).unwrap();
        let expanded = g.expand_groups(&[4, 0, 3]);
        assert_eq!(expanded.len(), 2);
        assert_eq!(expanded[0], (0, vec![0, 1]));
        assert_eq!(expanded[1], (1, vec![0, 1, 2]));
    }

    #[test]
    fn expand_groups_deduplicates() {
        let (a, b) = two_parts();
        let g = GroupedIndex::build(&[&a, &b], 2).unwrap();
        let expanded = g.expand_groups(&[0, 0]);
        assert_eq!(expanded, vec![(0, vec![0, 1])]);
    }

    #[test]
    fn empty_parts_are_tolerated() {
        let empty = part(&[]);
        let a = part(&[&["x"]]);
        let g = GroupedIndex::build(&[&empty, &a], 3).unwrap();
        assert_eq!(g.num_groups(), 1);
        assert_eq!(g.span(0).part, 1);
        assert_eq!(g.total_docs(), 1);
    }

    #[test]
    fn expanding_all_groups_covers_every_document() {
        let (a, b) = two_parts();
        for g in [1u32, 2, 3, 10] {
            let gi = GroupedIndex::build(&[&a, &b], g).unwrap();
            let all_groups: Vec<GroupId> = (0..gi.num_groups() as GroupId).collect();
            let expanded = gi.expand_groups(&all_groups);
            let total: usize = expanded.iter().map(|(_, docs)| docs.len()).sum();
            assert_eq!(total as u64, gi.total_docs(), "G={g}");
            // Per-part coverage is exactly 0..num_docs.
            for (part, docs) in expanded {
                let n = [&a, &b][part as usize].num_docs() as DocId;
                assert_eq!(docs, (0..n).collect::<Vec<_>>(), "G={g} part={part}");
            }
        }
    }

    #[test]
    fn grouped_vocab_ids_align_with_global_stats() {
        let (a, b) = two_parts();
        let g = GroupedIndex::build(&[&a, &b], 2).unwrap();
        // Every term in the group index must have a doc_stats entry.
        for (term, _) in g.vocab().iter() {
            assert!(g.doc_stats().doc_freq(term) >= 1, "term {term}");
            // f_t over groups <= f_t over documents.
            assert!(
                g.group_index().stats().doc_freq(term) <= g.doc_stats().doc_freq(term),
                "term {term}"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::builder::IndexBuilder;
    use proptest::prelude::*;

    fn build_part(docs: &[Vec<String>]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for d in docs {
            b.add_document(d);
        }
        b.build()
    }

    proptest! {
        /// For every term, the total occurrences in the grouped index
        /// equal the total occurrences across all documents, whatever G.
        #[test]
        fn group_frequencies_conserve_term_mass(
            part_a in proptest::collection::vec(
                proptest::collection::vec("[a-d]", 0..8), 0..20),
            part_b in proptest::collection::vec(
                proptest::collection::vec("[b-e]", 0..8), 0..20),
            group_size in 1u32..12,
        ) {
            let a = build_part(&part_a);
            let b = build_part(&part_b);
            let grouped = GroupedIndex::build(&[&a, &b], group_size).unwrap();
            for (term, name) in grouped.vocab().iter() {
                let grouped_mass: u64 = grouped
                    .group_index()
                    .postings(term)
                    .decode()
                    .unwrap()
                    .iter()
                    .map(|p| u64::from(p.f_dt))
                    .sum();
                let doc_mass: u64 = [&a, &b]
                    .iter()
                    .filter_map(|ix| {
                        let id = ix.vocab().term_id(name)?;
                        Some(
                            ix.postings(id)
                                .decode()
                                .unwrap()
                                .iter()
                                .map(|p| u64::from(p.f_dt))
                                .sum::<u64>(),
                        )
                    })
                    .sum();
                prop_assert_eq!(grouped_mass, doc_mass, "term {}", name);
            }
        }

        /// Group spans partition each part's documents exactly.
        #[test]
        fn spans_partition_documents(
            sizes in proptest::collection::vec(0usize..25, 1..5),
            group_size in 1u32..9,
        ) {
            let parts: Vec<InvertedIndex> = sizes
                .iter()
                .map(|&n| {
                    let docs: Vec<Vec<String>> =
                        (0..n).map(|i| vec![format!("t{}", i % 3)]).collect();
                    build_part(&docs)
                })
                .collect();
            let refs: Vec<&InvertedIndex> = parts.iter().collect();
            let grouped = GroupedIndex::build(&refs, group_size).unwrap();
            let mut covered = vec![0u32; sizes.len()];
            for g in 0..grouped.num_groups() as GroupId {
                let span = grouped.span(g);
                prop_assert!(span.len >= 1 && span.len <= group_size);
                prop_assert_eq!(span.first_doc, covered[span.part as usize]);
                covered[span.part as usize] += span.len;
            }
            for (part, &n) in sizes.iter().enumerate() {
                prop_assert_eq!(covered[part] as usize, n, "part {}", part);
            }
        }
    }
}
