//! Compressed inverted indexes for TERAPHIM.
//!
//! This crate implements the two structures §2 of the paper identifies as
//! the basis of efficient ranked retrieval:
//!
//! 1. an **inverted file** storing, for each term `t`, the list of
//!    documents containing `t` together with the in-document frequency
//!    `f_dt`, held compressed (Elias-γ coded d-gaps and frequencies, ≈10%
//!    of the text size), and
//! 2. a **table of document weights** `W_d = sqrt(Σ_t w_dt²)`
//!    precomputed at build time.
//!
//! On top of these it provides the paper's two index refinements:
//!
//! * **self-indexing skips** ([`skips`]) — periodic synchronisation
//!   points inside each inverted list so that similarity values for a
//!   *candidate set* of documents can be computed without decoding lists
//!   in full (Moffat & Zobel 1996; used by the Central Index method), and
//! * **grouped indexes** ([`grouped`]) — indexing fixed-size *groups* of
//!   consecutive documents as if they were single documents, roughly
//!   halving index size at `G = 10` (Moffat & Zobel 1994; the structure a
//!   Central Index receptionist holds).
//!
//! # Examples
//!
//! ```
//! use teraphim_index::builder::IndexBuilder;
//! use teraphim_text::Analyzer;
//!
//! let analyzer = Analyzer::default();
//! let mut builder = IndexBuilder::new();
//! builder.add_document(&analyzer.analyze("distributed retrieval of documents"));
//! builder.add_document(&analyzer.analyze("document compression"));
//! let index = builder.build();
//! assert_eq!(index.num_docs(), 2);
//! let term = index.vocab().term_id("document").unwrap();
//! assert_eq!(index.stats().doc_freq(term), 2);
//! ```

pub mod builder;
pub mod grouped;
pub mod merge;
pub mod postings;
pub mod pruning;
pub mod skips;
pub mod stats;
pub mod vocab;
pub mod weights;

use std::error::Error;
use std::fmt;

pub use builder::{IndexBuilder, InvertedIndex};
pub use grouped::GroupedIndex;
pub use postings::{Posting, PostingsList};
pub use stats::CollectionStats;
pub use vocab::{TermId, Vocabulary};
pub use weights::DocWeights;

/// A document identifier local to one collection (assigned densely from
/// zero in indexing order).
pub type DocId = u32;

/// Error type for index deserialization and integrity checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The serialized form is truncated or structurally invalid.
    Corrupt(&'static str),
    /// An identifier referred to a term or document that does not exist.
    OutOfRange(&'static str),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Corrupt(what) => write!(f, "corrupt index: {what}"),
            IndexError::OutOfRange(what) => write!(f, "identifier out of range: {what}"),
        }
    }
}

impl Error for IndexError {}

impl From<teraphim_compress::CodeError> for IndexError {
    fn from(_: teraphim_compress::CodeError) -> Self {
        IndexError::Corrupt("compressed stream decode failure")
    }
}

/// The cosine similarity formulation of §2 of the paper, shared by every
/// component (librarian, receptionist, grouped index) so that scores are
/// comparable across the system.
pub mod similarity {
    /// In-document weight `w_dt = log(f_dt + 1)` (natural log, as in MG).
    pub fn w_dt(f_dt: u64) -> f64 {
        ((f_dt + 1) as f64).ln()
    }

    /// Query-term weight `w_qt = log(f_qt + 1) · log(N/f_t + 1)`.
    ///
    /// `n_docs` is the (possibly global) collection size, `f_t` the
    /// (possibly global) document frequency. Returns 0 when `f_t == 0`.
    pub fn w_qt(f_qt: u64, n_docs: u64, f_t: u64) -> f64 {
        if f_t == 0 {
            return 0.0;
        }
        ((f_qt + 1) as f64).ln() * (n_docs as f64 / f_t as f64 + 1.0).ln()
    }

    /// Query norm `sqrt(Σ w_qt²)` for a list of query weights.
    pub fn query_norm(weights: &[f64]) -> f64 {
        weights.iter().map(|w| w * w).sum::<f64>().sqrt()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn w_dt_is_log_f_plus_one() {
            assert!((w_dt(0) - 0.0f64.ln_1p()).abs() < 1e-12);
            assert!((w_dt(1) - 2f64.ln()).abs() < 1e-12);
            assert!((w_dt(9) - 10f64.ln()).abs() < 1e-12);
        }

        #[test]
        fn w_qt_zero_for_absent_terms() {
            assert_eq!(w_qt(3, 100, 0), 0.0);
        }

        #[test]
        fn w_qt_increases_with_rarity() {
            let common = w_qt(1, 1000, 900);
            let rare = w_qt(1, 1000, 3);
            assert!(rare > common);
        }

        #[test]
        fn query_norm_hand_computed() {
            assert!((query_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
            assert_eq!(query_norm(&[]), 0.0);
        }
    }
}
