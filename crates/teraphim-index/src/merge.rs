//! Index merging — the update path.
//!
//! §1 motivates distribution partly by update: "it may be useful for
//! document collections to be distributed over several machines, to
//! simplify update", and §4 lists "faster update" among distribution's
//! management benefits. The mechanism behind both is cheap *append*: new
//! documents are indexed into a small delta index, which is then merged
//! with the existing one — no global rebuild. The similarity formulation
//! cooperates: document weights are collection-independent (§2), so
//! merging never re-scores existing documents.

use crate::builder::InvertedIndex;
use crate::postings::{Posting, PostingsList};
use crate::stats::CollectionStats;
use crate::vocab::Vocabulary;
use crate::weights::DocWeights;
use crate::{DocId, IndexError, TermId};

/// Merges `base` with a `delta` index of newly added documents.
///
/// Delta document `d` becomes document `base.num_docs() + d`; the merged
/// vocabulary preserves `base`'s term ids and appends `delta`'s new
/// terms. Weights, lengths and statistics carry over unchanged — the
/// merged index is equivalent to one built over the concatenated
/// document stream.
///
/// # Errors
///
/// Returns [`IndexError::Corrupt`] if either index fails to decode.
pub fn merge(base: &InvertedIndex, delta: &InvertedIndex) -> Result<InvertedIndex, IndexError> {
    let offset = base.num_docs() as DocId;

    // Union vocabulary: base ids stable, delta terms mapped.
    let mut vocab = Vocabulary::new();
    for (_, term) in base.vocab().iter() {
        vocab.intern(term);
    }
    let delta_map: Vec<TermId> = delta
        .vocab()
        .iter()
        .map(|(_, term)| vocab.intern(term))
        .collect();

    // Merged postings: base list then shifted delta list per term.
    let mut merged_postings: Vec<Vec<Posting>> = vec![Vec::new(); vocab.len()];
    for (term, _) in base.vocab().iter() {
        let list = base.postings(term);
        let target = &mut merged_postings[term as usize];
        target.reserve(list.len() as usize);
        for posting in list.iter() {
            target.push(posting?);
        }
    }
    for (term, _) in delta.vocab().iter() {
        let mapped = delta_map[term as usize] as usize;
        let list = delta.postings(term);
        let target = &mut merged_postings[mapped];
        target.reserve(list.len() as usize);
        for posting in list.iter() {
            let posting = posting?;
            target.push(Posting {
                doc: offset + posting.doc,
                f_dt: posting.f_dt,
            });
        }
    }

    let mut stats = CollectionStats::new();
    stats.set_num_docs(base.num_docs() + delta.num_docs());
    let mut lists = Vec::with_capacity(vocab.len());
    for (term_idx, postings) in merged_postings.iter().enumerate() {
        stats.add_doc_freq(term_idx as TermId, postings.len() as u64);
        lists.push(PostingsList::from_postings(postings));
    }

    let mut weights = DocWeights::new();
    let mut doc_lengths = Vec::with_capacity(stats.num_docs() as usize);
    for d in 0..base.num_docs() as DocId {
        weights.push(base.weights().weight(d));
        doc_lengths.push(base.doc_length(d));
    }
    for d in 0..delta.num_docs() as DocId {
        weights.push(delta.weights().weight(d));
        doc_lengths.push(delta.doc_length(d));
    }

    Ok(InvertedIndex::from_merge_parts(
        vocab,
        lists,
        stats,
        weights,
        doc_lengths,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;

    fn index_of(docs: &[&[&str]]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for d in docs {
            let terms: Vec<String> = d.iter().map(|s| (*s).to_owned()).collect();
            b.add_document(&terms);
        }
        b.build()
    }

    const FIRST: &[&[&str]] = &[&["cat", "sat"], &["dog", "cat", "cat"], &["bird"]];
    const SECOND: &[&[&str]] = &[&["cat", "emu"], &["dog"], &["emu", "emu", "sat"]];

    fn merged() -> InvertedIndex {
        merge(&index_of(FIRST), &index_of(SECOND)).unwrap()
    }

    fn from_scratch() -> InvertedIndex {
        let all: Vec<&[&str]> = FIRST.iter().chain(SECOND.iter()).copied().collect();
        index_of(&all)
    }

    #[test]
    fn merge_equals_scratch_build_per_term() {
        let m = merged();
        let s = from_scratch();
        assert_eq!(m.num_docs(), s.num_docs());
        assert_eq!(m.vocab().len(), s.vocab().len());
        for (term, name) in s.vocab().iter() {
            let m_term = m.vocab().term_id(name).expect("term present");
            assert_eq!(
                m.postings(m_term).decode().unwrap(),
                s.postings(term).decode().unwrap(),
                "term {name}"
            );
            assert_eq!(m.stats().doc_freq(m_term), s.stats().doc_freq(term));
        }
    }

    #[test]
    fn merge_preserves_weights_and_lengths() {
        let m = merged();
        let s = from_scratch();
        for d in 0..s.num_docs() as DocId {
            assert!((m.weights().weight(d) - s.weights().weight(d)).abs() < 1e-12);
            assert_eq!(m.doc_length(d), s.doc_length(d));
        }
    }

    #[test]
    fn base_term_ids_are_stable() {
        let base = index_of(FIRST);
        let m = merged();
        for (term, name) in base.vocab().iter() {
            assert_eq!(m.vocab().term(term), name);
        }
    }

    #[test]
    fn merge_with_empty_delta_is_identity() {
        let base = index_of(FIRST);
        let empty = IndexBuilder::new().build();
        let m = merge(&base, &empty).unwrap();
        assert_eq!(m.num_docs(), base.num_docs());
        for (term, name) in base.vocab().iter() {
            let mt = m.vocab().term_id(name).unwrap();
            assert_eq!(
                m.postings(mt).decode().unwrap(),
                base.postings(term).decode().unwrap()
            );
        }
    }

    #[test]
    fn merge_into_empty_base_shifts_nothing() {
        let empty = IndexBuilder::new().build();
        let delta = index_of(SECOND);
        let m = merge(&empty, &delta).unwrap();
        assert_eq!(m.num_docs(), delta.num_docs());
        let emu = m.vocab().term_id("emu").unwrap();
        assert_eq!(m.postings(emu).get(0), Some(1));
        assert_eq!(m.postings(emu).get(2), Some(2));
    }

    #[test]
    fn repeated_merges_accumulate() {
        let a = index_of(&[&["x"]]);
        let b = index_of(&[&["x", "y"]]);
        let c = index_of(&[&["y", "z"]]);
        let m = merge(&merge(&a, &b).unwrap(), &c).unwrap();
        assert_eq!(m.num_docs(), 3);
        let x = m.vocab().term_id("x").unwrap();
        let y = m.vocab().term_id("y").unwrap();
        assert_eq!(m.stats().doc_freq(x), 2);
        assert_eq!(m.stats().doc_freq(y), 2);
        assert_eq!(m.postings(y).get(1), Some(1));
        assert_eq!(m.postings(y).get(2), Some(1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::builder::IndexBuilder;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn merge_always_equals_scratch_build(
            first in proptest::collection::vec(
                proptest::collection::vec("[a-d]", 0..6), 0..15),
            second in proptest::collection::vec(
                proptest::collection::vec("[a-e]", 0..6), 0..15),
        ) {
            let build = |docs: &[Vec<String>]| {
                let mut b = IndexBuilder::new();
                for d in docs {
                    b.add_document(d);
                }
                b.build()
            };
            let merged = merge(&build(&first), &build(&second)).unwrap();
            let all: Vec<Vec<String>> =
                first.iter().chain(second.iter()).cloned().collect();
            let scratch = build(&all);
            prop_assert_eq!(merged.num_docs(), scratch.num_docs());
            for (term, name) in scratch.vocab().iter() {
                let mt = merged.vocab().term_id(name).expect("term present");
                prop_assert_eq!(
                    merged.postings(mt).decode().unwrap(),
                    scratch.postings(term).decode().unwrap()
                );
            }
        }
    }
}
