//! Compressed postings lists.
//!
//! Each inverted list stores `(d-gap, f_dt)` pairs, both Elias-γ coded.
//! D-gaps are differences between consecutive document numbers (always
//! ≥ 1 because lists are strictly increasing); `f_dt ≥ 1` by definition.
//! With γ coding, common terms (small gaps) and rare terms (few entries)
//! both compress well, giving the "10% or less of the volume of the
//! text" the paper quotes for modern compressed indexes.

use crate::{DocId, IndexError};
use teraphim_compress::bitio::{BitReader, BitWriter};
use teraphim_compress::codes::{read_gamma, write_gamma};

/// One inverted-list entry: a document and the in-document frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Posting {
    /// Document containing the term.
    pub doc: DocId,
    /// Number of occurrences of the term in the document (`f_dt ≥ 1`).
    pub f_dt: u32,
}

/// An immutable compressed postings list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PostingsList {
    bytes: Vec<u8>,
    count: u32,
    last_doc: DocId,
}

impl PostingsList {
    /// Builds a compressed list from strictly increasing postings.
    ///
    /// # Panics
    ///
    /// Panics if documents are not strictly increasing or an `f_dt` is
    /// zero (these are structural invariants of an inverted file, not
    /// recoverable input errors).
    pub fn from_postings(postings: &[Posting]) -> Self {
        let mut w = BitWriter::with_capacity_bits(postings.len() * 8);
        let mut prev: Option<DocId> = None;
        for p in postings {
            assert!(p.f_dt >= 1, "f_dt must be >= 1");
            let gap = match prev {
                None => u64::from(p.doc) + 1,
                Some(q) => {
                    assert!(p.doc > q, "postings must be strictly increasing");
                    u64::from(p.doc - q)
                }
            };
            write_gamma(&mut w, gap);
            write_gamma(&mut w, u64::from(p.f_dt));
            prev = Some(p.doc);
        }
        PostingsList {
            bytes: w.into_bytes(),
            count: postings.len() as u32,
            last_doc: prev.unwrap_or(0),
        }
    }

    /// Number of postings in the list (the term's document frequency
    /// `f_t` within this collection).
    pub fn len(&self) -> u32 {
        self.count
    }

    /// True if the list has no postings.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The largest document id in the list (0 for an empty list).
    pub fn last_doc(&self) -> DocId {
        self.last_doc
    }

    /// Compressed size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Raw compressed bytes (for serialization and wire transfer).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Reconstructs a list from its raw parts (inverse of
    /// [`PostingsList::as_bytes`] plus metadata).
    pub fn from_raw_parts(bytes: Vec<u8>, count: u32, last_doc: DocId) -> Self {
        PostingsList {
            bytes,
            count,
            last_doc,
        }
    }

    /// Iterates over the postings, decoding incrementally.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            reader: BitReader::new(&self.bytes),
            remaining: self.count,
            prev_doc: 0,
            first: true,
        }
    }

    /// Decodes the whole list into a vector.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::Corrupt`] if the compressed stream is
    /// malformed.
    pub fn decode(&self) -> Result<Vec<Posting>, IndexError> {
        self.iter().collect()
    }

    /// Looks up the frequency of `doc` by linear scan (used by tests and
    /// small lists; candidate scoring uses [`crate::skips`]).
    pub fn get(&self, doc: DocId) -> Option<u32> {
        for p in self.iter().flatten() {
            if p.doc == doc {
                return Some(p.f_dt);
            }
            if p.doc > doc {
                return None;
            }
        }
        None
    }
}

/// Decoding iterator over a [`PostingsList`]. Produced by
/// [`PostingsList::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    reader: BitReader<'a>,
    remaining: u32,
    prev_doc: DocId,
    first: bool,
}

impl Iterator for Iter<'_> {
    type Item = Result<Posting, IndexError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let gap = match read_gamma(&mut self.reader) {
            Ok(g) => g,
            Err(_) => return Some(Err(IndexError::Corrupt("postings gap"))),
        };
        let f_dt = match read_gamma(&mut self.reader) {
            Ok(f) => f,
            Err(_) => return Some(Err(IndexError::Corrupt("postings frequency"))),
        };
        let doc = if self.first {
            self.first = false;
            // First gap is doc+1 so that doc 0 is representable.
            match gap.checked_sub(1).and_then(|d| u32::try_from(d).ok()) {
                Some(d) => d,
                None => return Some(Err(IndexError::Corrupt("first document id overflows"))),
            }
        } else {
            match u64::from(self.prev_doc)
                .checked_add(gap)
                .and_then(|d| u32::try_from(d).ok())
            {
                Some(d) => d,
                None => return Some(Err(IndexError::Corrupt("document id overflows"))),
            }
        };
        self.prev_doc = doc;
        let f_dt = match u32::try_from(f_dt) {
            Ok(f) => f,
            Err(_) => return Some(Err(IndexError::Corrupt("frequency overflows u32"))),
        };
        Some(Ok(Posting { doc, f_dt }))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(doc: DocId, f_dt: u32) -> Posting {
        Posting { doc, f_dt }
    }

    #[test]
    fn roundtrip_simple_list() {
        let postings = vec![p(0, 1), p(3, 2), p(4, 7), p(100, 1)];
        let list = PostingsList::from_postings(&postings);
        assert_eq!(list.len(), 4);
        assert_eq!(list.last_doc(), 100);
        assert_eq!(list.decode().unwrap(), postings);
    }

    #[test]
    fn empty_list() {
        let list = PostingsList::from_postings(&[]);
        assert!(list.is_empty());
        assert_eq!(list.decode().unwrap(), vec![]);
        assert_eq!(list.byte_len(), 0);
    }

    #[test]
    fn doc_zero_is_representable() {
        let list = PostingsList::from_postings(&[p(0, 5)]);
        assert_eq!(list.decode().unwrap(), vec![p(0, 5)]);
    }

    #[test]
    fn single_posting_large_doc() {
        let list = PostingsList::from_postings(&[p(u32::MAX - 1, 3)]);
        assert_eq!(list.decode().unwrap(), vec![p(u32::MAX - 1, 3)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_docs_panic() {
        PostingsList::from_postings(&[p(5, 1), p(5, 1)]);
    }

    #[test]
    #[should_panic(expected = "f_dt must be >= 1")]
    fn zero_frequency_panics() {
        PostingsList::from_postings(&[p(1, 0)]);
    }

    #[test]
    fn get_finds_present_and_absent() {
        let list = PostingsList::from_postings(&[p(2, 1), p(7, 3), p(9, 2)]);
        assert_eq!(list.get(7), Some(3));
        assert_eq!(list.get(2), Some(1));
        assert_eq!(list.get(8), None);
        assert_eq!(list.get(100), None);
    }

    #[test]
    fn dense_list_compresses_below_fixed_width() {
        // 1000 consecutive docs with f_dt = 1: gaps of 1 are one bit, f=1
        // one bit -> ~250 bytes versus 8000 fixed.
        let postings: Vec<Posting> = (0..1000).map(|d| p(d, 1)).collect();
        let list = PostingsList::from_postings(&postings);
        assert!(list.byte_len() < 300, "got {}", list.byte_len());
        assert_eq!(list.decode().unwrap(), postings);
    }

    #[test]
    fn raw_parts_roundtrip() {
        let postings = vec![p(1, 2), p(9, 1)];
        let list = PostingsList::from_postings(&postings);
        let rebuilt =
            PostingsList::from_raw_parts(list.as_bytes().to_vec(), list.len(), list.last_doc());
        assert_eq!(rebuilt.decode().unwrap(), postings);
    }

    #[test]
    fn corrupt_stream_yields_error_not_panic() {
        let postings = vec![p(1, 2), p(9, 1), p(10_000, 4)];
        let list = PostingsList::from_postings(&postings);
        let bytes = list.as_bytes();
        let truncated = PostingsList::from_raw_parts(bytes[..bytes.len() - 1].to_vec(), 3, 10_000);
        assert!(truncated.decode().is_err());
    }

    #[test]
    fn iterator_size_hint_is_exact() {
        let list = PostingsList::from_postings(&[p(1, 1), p(2, 1), p(3, 1)]);
        let it = list.iter();
        assert_eq!(it.size_hint(), (3, Some(3)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_postings() -> impl Strategy<Value = Vec<Posting>> {
        proptest::collection::vec((0u32..1_000_000, 1u32..10_000), 0..300).prop_map(|mut raw| {
            raw.sort_by_key(|&(d, _)| d);
            raw.dedup_by_key(|&mut (d, _)| d);
            raw.into_iter()
                .map(|(doc, f_dt)| Posting { doc, f_dt })
                .collect()
        })
    }

    proptest! {
        #[test]
        fn roundtrips(postings in arbitrary_postings()) {
            let list = PostingsList::from_postings(&postings);
            prop_assert_eq!(list.decode().unwrap(), postings);
        }

        #[test]
        fn get_agrees_with_decode(postings in arbitrary_postings(), probe in 0u32..1_000_000) {
            let list = PostingsList::from_postings(&postings);
            let expected = postings.iter().find(|p| p.doc == probe).map(|p| p.f_dt);
            prop_assert_eq!(list.get(probe), expected);
        }
    }
}
