//! Static index pruning by in-document frequency.
//!
//! §5 of the paper considers reducing index size by dropping posting
//! entries whose contribution to similarity is small — "for term
//! occurrences that can only make a small contribution ... because both
//! `f_dt` and `w_t` are small" — and reports that "in preliminary
//! experiments, applying thresholds that only reduced index size by a
//! third severely degraded effectiveness". This module implements that
//! pruning so the `thresholding` bench can reproduce the observation.
//!
//! A posting `(d, f_dt)` of term `t` is dropped when `f_dt` is below a
//! threshold **and** the term is common (its `f_t` exceeds a cutoff, so
//! `w_t = ln(N/f_t + 1)` is small). Rare terms are never pruned — their
//! postings carry most of the similarity signal.

use crate::builder::{IndexBuilder, InvertedIndex};
use crate::IndexError;

/// Pruning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneParams {
    /// Drop postings with `f_dt` strictly below this value...
    pub min_f_dt: u32,
    /// ...but only for terms appearing in more than this many documents
    /// (common terms, whose query weight is small anyway).
    pub common_df_cutoff: u64,
}

impl Default for PruneParams {
    fn default() -> Self {
        PruneParams {
            min_f_dt: 2,
            common_df_cutoff: 16,
        }
    }
}

/// Statistics of a pruning pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneReport {
    /// Postings in the original index.
    pub postings_before: u64,
    /// Postings surviving the prune.
    pub postings_after: u64,
    /// Compressed postings bytes before.
    pub bytes_before: usize,
    /// Compressed postings bytes after.
    pub bytes_after: usize,
}

impl PruneReport {
    /// Fraction of compressed postings bytes retained.
    pub fn size_ratio(&self) -> f64 {
        if self.bytes_before == 0 {
            return 1.0;
        }
        self.bytes_after as f64 / self.bytes_before as f64
    }
}

/// Builds a pruned copy of `index`.
///
/// The pruned index keeps the original vocabulary (term ids are
/// preserved), document count and document weights — pruning is an
/// *index* approximation, not a re-weighting; this matches how a system
/// would deploy it (the weights file is untouched).
///
/// # Errors
///
/// Returns [`IndexError::Corrupt`] if the source index fails to decode.
pub fn prune(
    index: &InvertedIndex,
    params: PruneParams,
) -> Result<(InvertedIndex, PruneReport), IndexError> {
    let mut report = PruneReport {
        bytes_before: index.postings_bytes(),
        ..PruneReport::default()
    };
    let mut builder = IndexBuilder::new();
    for (_, term) in index.vocab().iter() {
        builder.seed_term(term);
    }
    // Rebuild document by document so ids stay aligned: collect per-doc
    // surviving (term, f_dt) pairs.
    let mut per_doc: Vec<Vec<(&str, u32)>> = vec![Vec::new(); index.num_docs() as usize];
    for (term_id, term) in index.vocab().iter() {
        let list = index.postings(term_id);
        let f_t = u64::from(list.len());
        let is_common = f_t > params.common_df_cutoff;
        for posting in list.iter() {
            let posting = posting?;
            report.postings_before += 1;
            if is_common && posting.f_dt < params.min_f_dt {
                continue;
            }
            report.postings_after += 1;
            per_doc[posting.doc as usize].push((term, posting.f_dt));
        }
    }
    for entries in &per_doc {
        builder.add_document_freqs(entries);
    }
    let mut pruned = builder.build();
    // Preserve the original (unpruned) document weights: similarity
    // normalization must not silently change.
    pruned.replace_weights(index.weights().clone());
    report.bytes_after = pruned.postings_bytes();
    Ok((pruned, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        // "common" appears in every doc with varying f_dt; "rare" in one.
        b.add_document(&["common", "rare", "common"]);
        b.add_document(&["common"]);
        b.add_document(&["common", "common", "common"]);
        b.add_document(&["common", "other"]);
        b.build()
    }

    #[test]
    fn prunes_low_frequency_postings_of_common_terms() {
        let ix = sample();
        let (pruned, report) = prune(
            &ix,
            PruneParams {
                min_f_dt: 2,
                common_df_cutoff: 3,
            },
        )
        .unwrap();
        let common = pruned.vocab().term_id("common").unwrap();
        // Docs 1 and 3 had f_dt = 1 and are dropped; docs 0 and 2 stay.
        assert_eq!(pruned.postings(common).len(), 2);
        assert_eq!(pruned.postings(common).get(0), Some(2));
        assert_eq!(pruned.postings(common).get(2), Some(3));
        assert!(report.postings_after < report.postings_before);
    }

    #[test]
    fn rare_terms_are_never_pruned() {
        let ix = sample();
        let (pruned, _) = prune(
            &ix,
            PruneParams {
                min_f_dt: 100,
                common_df_cutoff: 3,
            },
        )
        .unwrap();
        let rare = pruned.vocab().term_id("rare").unwrap();
        assert_eq!(pruned.postings(rare).len(), 1);
        let other = pruned.vocab().term_id("other").unwrap();
        assert_eq!(pruned.postings(other).len(), 1);
    }

    #[test]
    fn vocabulary_and_ids_are_preserved() {
        let ix = sample();
        let (pruned, _) = prune(&ix, PruneParams::default()).unwrap();
        assert_eq!(pruned.vocab().len(), ix.vocab().len());
        for (id, term) in ix.vocab().iter() {
            assert_eq!(pruned.vocab().term(id), term);
        }
        assert_eq!(pruned.num_docs(), ix.num_docs());
    }

    #[test]
    fn document_weights_are_untouched() {
        let ix = sample();
        let (pruned, _) = prune(
            &ix,
            PruneParams {
                min_f_dt: 2,
                common_df_cutoff: 1,
            },
        )
        .unwrap();
        for d in 0..ix.num_docs() as crate::DocId {
            assert_eq!(pruned.weights().weight(d), ix.weights().weight(d));
        }
    }

    #[test]
    fn noop_prune_is_identity_in_size() {
        let ix = sample();
        let (pruned, report) = prune(
            &ix,
            PruneParams {
                min_f_dt: 0,
                common_df_cutoff: 0,
            },
        )
        .unwrap();
        assert_eq!(report.postings_before, report.postings_after);
        assert_eq!(pruned.postings_bytes(), ix.postings_bytes());
        assert!((report.size_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn size_ratio_of_empty_index_is_one() {
        let ix = IndexBuilder::new().build();
        let (_, report) = prune(&ix, PruneParams::default()).unwrap();
        assert_eq!(report.size_ratio(), 1.0);
    }
}
