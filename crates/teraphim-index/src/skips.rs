//! Self-indexing inverted lists (Moffat & Zobel, TOIS 1996).
//!
//! A *self-indexing* list embeds periodic synchronisation points — every
//! `skip_every` postings we record the absolute document id of the
//! preceding posting and the bit offset of the next one. A cursor can
//! then answer "what is `f_dt` for document `d`?" by jumping to the
//! sync point whose block could contain `d` and decoding at most
//! `skip_every` postings, instead of decoding the whole list.
//!
//! This is what makes the Central Index methodology cheap at the
//! librarians: the receptionist sends a small *candidate set* of
//! documents (the expanded groups) and each librarian scores exactly
//! those, skipping the rest of its lists. The paper's analysis predicts
//! a ≥2× CPU reduction for small `k'`; the `skipping` bench measures it.

use crate::postings::{Posting, PostingsList};
use crate::{DocId, IndexError};
use teraphim_compress::bitio::BitReader;
use teraphim_compress::codes::read_gamma;

/// Default skip interval; MG uses intervals in this range for TREC-scale
/// lists.
pub const DEFAULT_SKIP_EVERY: u32 = 32;

/// One synchronisation point in a skipped list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SkipEntry {
    /// Document id of the last posting *before* this block (the d-gap
    /// base for the block's first posting).
    prev_doc: DocId,
    /// Bit offset of the block's first posting in the compressed stream.
    bit_offset: u64,
    /// Index of the block's first posting.
    posting_index: u32,
}

/// A skip table over a [`PostingsList`], enabling sub-linear candidate
/// lookup.
///
/// The table is built from (and stored alongside) the unmodified
/// compressed list, so a collection can serve both full-scan ranking and
/// candidate-restricted scoring from one structure.
#[derive(Debug, Clone)]
pub struct SkipTable {
    skips: Vec<SkipEntry>,
    skip_every: u32,
}

impl SkipTable {
    /// Builds a skip table with sync points every `skip_every` postings.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::Corrupt`] if the list fails to decode.
    ///
    /// # Panics
    ///
    /// Panics if `skip_every == 0`.
    pub fn build(list: &PostingsList, skip_every: u32) -> Result<Self, IndexError> {
        assert!(skip_every > 0, "skip interval must be positive");
        let bytes = list.as_bytes();
        let mut reader = BitReader::new(bytes);
        let mut skips = Vec::new();
        let mut prev_doc: DocId = 0;
        let mut first = true;
        for i in 0..list.len() {
            if i % skip_every == 0 {
                skips.push(SkipEntry {
                    prev_doc: if first { 0 } else { prev_doc },
                    bit_offset: reader.bit_pos(),
                    posting_index: i,
                });
            }
            let gap = read_gamma(&mut reader)?;
            let _f_dt = read_gamma(&mut reader)?;
            prev_doc = if first {
                first = false;
                (gap - 1) as DocId
            } else {
                prev_doc + gap as DocId
            };
        }
        Ok(SkipTable { skips, skip_every })
    }

    /// The interval between sync points, in postings.
    pub fn skip_every(&self) -> u32 {
        self.skip_every
    }

    /// Number of sync points.
    pub fn len(&self) -> usize {
        self.skips.len()
    }

    /// True if the underlying list was empty.
    pub fn is_empty(&self) -> bool {
        self.skips.is_empty()
    }

    /// Approximate size of the table in bytes (for index-size
    /// accounting).
    pub fn byte_len(&self) -> usize {
        // doc id (4) + bit offset (stored compressed in practice; we
        // charge 4) + index (4)
        self.skips.len() * 12
    }

    /// Creates a seeking cursor over `list` (which must be the list the
    /// table was built from).
    pub fn cursor<'a>(&'a self, list: &'a PostingsList) -> SkipCursor<'a> {
        SkipCursor {
            table: self,
            list,
            reader: BitReader::new(list.as_bytes()),
            next_index: 0,
            prev_doc: 0,
            first: true,
            current: None,
            decoded: 0,
        }
    }
}

/// A forward-only seeking cursor over a skipped postings list.
///
/// `seek(d)` positions the cursor at the first posting with `doc ≥ d`
/// using the skip table, decoding only inside the relevant block.
/// Candidates must be probed in increasing document order.
#[derive(Debug, Clone)]
pub struct SkipCursor<'a> {
    table: &'a SkipTable,
    list: &'a PostingsList,
    reader: BitReader<'a>,
    /// Index of the next posting to decode.
    next_index: u32,
    prev_doc: DocId,
    first: bool,
    /// The most recently decoded posting, if it has not been surpassed.
    current: Option<Posting>,
    /// Number of postings decoded so far (instrumentation for the CPU
    /// cost model and the skipping experiment).
    decoded: u64,
}

impl<'a> SkipCursor<'a> {
    /// Number of postings decoded so far.
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// Advances to the first posting with `doc ≥ target` and returns it,
    /// or `None` if the list is exhausted below `target`.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::Corrupt`] on a malformed stream.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if targets are probed in decreasing order.
    pub fn seek(&mut self, target: DocId) -> Result<Option<Posting>, IndexError> {
        // If the cursor already sits at or beyond the target, the current
        // posting is the answer (targets are probed in non-decreasing
        // order, so anything the cursor passed can no longer be asked
        // for).
        if let Some(cur) = self.current {
            if cur.doc >= target {
                return Ok(Some(cur));
            }
        }
        // Jump via the skip table: find the last sync point whose
        // prev_doc < target and which is ahead of our position.
        let candidate_blocks = self
            .table
            .skips
            .partition_point(|entry| entry.prev_doc < target);
        if candidate_blocks > 0 {
            let entry = self.table.skips[candidate_blocks - 1];
            if entry.posting_index > self.next_index {
                self.reader
                    .seek_to_bit(entry.bit_offset)
                    .map_err(|_| IndexError::Corrupt("skip offset out of range"))?;
                self.next_index = entry.posting_index;
                self.prev_doc = entry.prev_doc;
                self.first = entry.posting_index == 0;
                self.current = None;
            }
        }
        // Linear decode within the block.
        loop {
            if self.next_index >= self.list.len() {
                self.current = None;
                return Ok(None);
            }
            let gap = read_gamma(&mut self.reader)?;
            let f_dt = read_gamma(&mut self.reader)?;
            self.decoded += 1;
            let doc = if self.first {
                self.first = false;
                (gap.checked_sub(1))
                    .and_then(|d| u32::try_from(d).ok())
                    .ok_or(IndexError::Corrupt("first document id overflows"))?
            } else {
                u64::from(self.prev_doc)
                    .checked_add(gap)
                    .and_then(|d| u32::try_from(d).ok())
                    .ok_or(IndexError::Corrupt("document id overflows"))?
            };
            self.prev_doc = doc;
            self.next_index += 1;
            if doc >= target {
                let posting = Posting {
                    doc,
                    f_dt: u32::try_from(f_dt)
                        .map_err(|_| IndexError::Corrupt("frequency overflows u32"))?,
                };
                self.current = Some(posting);
                return Ok(Some(posting));
            }
        }
    }

    /// Convenience: the frequency of exactly `target`, if present.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::Corrupt`] on a malformed stream.
    pub fn frequency_of(&mut self, target: DocId) -> Result<Option<u32>, IndexError> {
        Ok(self
            .seek(target)?
            .and_then(|p| (p.doc == target).then_some(p.f_dt)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_list(docs: &[(DocId, u32)]) -> PostingsList {
        let postings: Vec<Posting> = docs
            .iter()
            .map(|&(doc, f_dt)| Posting { doc, f_dt })
            .collect();
        PostingsList::from_postings(&postings)
    }

    #[test]
    fn seek_finds_every_posting() {
        let docs: Vec<(DocId, u32)> = (0..200).map(|i| (i * 3, i % 5 + 1)).collect();
        let list = make_list(&docs);
        let table = SkipTable::build(&list, 16).unwrap();
        let mut cursor = table.cursor(&list);
        for &(doc, f_dt) in &docs {
            assert_eq!(cursor.frequency_of(doc).unwrap(), Some(f_dt), "doc {doc}");
        }
    }

    #[test]
    fn seek_misses_absent_docs() {
        let list = make_list(&[(10, 1), (20, 2), (30, 3)]);
        let table = SkipTable::build(&list, 2).unwrap();
        let mut cursor = table.cursor(&list);
        assert_eq!(cursor.frequency_of(5).unwrap(), None);
        assert_eq!(cursor.frequency_of(15).unwrap(), None);
        assert_eq!(cursor.frequency_of(20).unwrap(), Some(2));
        assert_eq!(cursor.frequency_of(99).unwrap(), None);
    }

    #[test]
    fn seek_beyond_end_returns_none() {
        let list = make_list(&[(1, 1)]);
        let table = SkipTable::build(&list, 4).unwrap();
        let mut cursor = table.cursor(&list);
        assert_eq!(cursor.seek(50).unwrap(), None);
        // Subsequent seeks stay at None.
        assert_eq!(cursor.seek(60).unwrap(), None);
    }

    #[test]
    fn empty_list_cursor() {
        let list = make_list(&[]);
        let table = SkipTable::build(&list, 4).unwrap();
        assert!(table.is_empty());
        let mut cursor = table.cursor(&list);
        assert_eq!(cursor.seek(0).unwrap(), None);
    }

    #[test]
    fn skipping_decodes_fewer_postings_than_full_scan() {
        let docs: Vec<(DocId, u32)> = (0..10_000).map(|i| (i, 1)).collect();
        let list = make_list(&docs);
        let table = SkipTable::build(&list, 64).unwrap();
        let mut cursor = table.cursor(&list);
        // Probe 10 widely spaced candidates.
        for target in (0..10).map(|i| i * 1000) {
            cursor.frequency_of(target).unwrap();
        }
        assert!(
            cursor.decoded() < 10 * 64 + 64,
            "decoded {} postings",
            cursor.decoded()
        );
        assert!(cursor.decoded() < 10_000 / 4, "should beat full scan");
    }

    #[test]
    fn skip_table_size_scales_with_interval() {
        let docs: Vec<(DocId, u32)> = (0..1000).map(|i| (i, 1)).collect();
        let list = make_list(&docs);
        let fine = SkipTable::build(&list, 8).unwrap();
        let coarse = SkipTable::build(&list, 128).unwrap();
        assert!(fine.len() > coarse.len());
        assert_eq!(fine.len(), 125);
        assert_eq!(coarse.len(), 8);
        assert!(fine.byte_len() > coarse.byte_len());
    }

    #[test]
    fn seek_same_target_twice_is_stable() {
        let list = make_list(&[(5, 2), (10, 3)]);
        let table = SkipTable::build(&list, 1).unwrap();
        let mut cursor = table.cursor(&list);
        assert_eq!(cursor.seek(7).unwrap(), Some(Posting { doc: 10, f_dt: 3 }));
        assert_eq!(cursor.seek(7).unwrap(), Some(Posting { doc: 10, f_dt: 3 }));
        assert_eq!(cursor.seek(10).unwrap(), Some(Posting { doc: 10, f_dt: 3 }));
    }

    #[test]
    fn doc_zero_is_seekable() {
        let list = make_list(&[(0, 4), (9, 1)]);
        let table = SkipTable::build(&list, 2).unwrap();
        let mut cursor = table.cursor(&list);
        assert_eq!(cursor.frequency_of(0).unwrap(), Some(4));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn cursor_agrees_with_full_decode(
            raw in proptest::collection::vec((0u32..100_000, 1u32..100), 1..200),
            probes in proptest::collection::vec(0u32..100_000, 1..50),
            skip_every in 1u32..64,
        ) {
            let mut docs: Vec<(DocId, u32)> = raw;
            docs.sort_by_key(|&(d, _)| d);
            docs.dedup_by_key(|&mut (d, _)| d);
            let postings: Vec<Posting> =
                docs.iter().map(|&(doc, f_dt)| Posting { doc, f_dt }).collect();
            let list = PostingsList::from_postings(&postings);
            let table = SkipTable::build(&list, skip_every).unwrap();
            let mut cursor = table.cursor(&list);
            let mut sorted_probes = probes;
            sorted_probes.sort_unstable();
            for probe in sorted_probes {
                let expected = postings.iter().find(|p| p.doc == probe).map(|p| p.f_dt);
                prop_assert_eq!(cursor.frequency_of(probe).unwrap(), expected);
            }
        }
    }
}
