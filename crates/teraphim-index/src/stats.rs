//! Collection-wide statistics.
//!
//! The similarity heuristic needs two collection-dependent parameters:
//! the number of documents `N` and, per term, the number of documents
//! `f_t` containing it. The distributed methodologies differ precisely in
//! *which* collection these are measured over:
//!
//! * **CN** — each librarian uses its own local `N` and `f_t`;
//! * **CV** — the receptionist merges per-subcollection statistics with
//!   [`merge_stats`] and ships global query weights;
//! * **CI** — the receptionist's grouped central index carries the global
//!   statistics directly.

use crate::vocab::{read_u32, read_u64, Vocabulary};
use crate::{IndexError, TermId};

/// Document count and per-term document frequencies for one collection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectionStats {
    num_docs: u64,
    /// Indexed by [`TermId`]; `doc_freq[t]` = `f_t`.
    doc_freq: Vec<u64>,
}

impl CollectionStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates statistics from raw parts.
    pub fn from_parts(num_docs: u64, doc_freq: Vec<u64>) -> Self {
        CollectionStats { num_docs, doc_freq }
    }

    /// Number of documents `N`.
    pub fn num_docs(&self) -> u64 {
        self.num_docs
    }

    /// Sets the document count.
    pub fn set_num_docs(&mut self, n: u64) {
        self.num_docs = n;
    }

    /// Document frequency `f_t` of `term` (0 if unknown).
    pub fn doc_freq(&self, term: TermId) -> u64 {
        self.doc_freq.get(term as usize).copied().unwrap_or(0)
    }

    /// Number of terms with recorded frequencies.
    pub fn num_terms(&self) -> usize {
        self.doc_freq.len()
    }

    /// Increments `f_t` for `term`, growing the table as needed.
    pub fn bump_doc_freq(&mut self, term: TermId) {
        let idx = term as usize;
        if idx >= self.doc_freq.len() {
            self.doc_freq.resize(idx + 1, 0);
        }
        self.doc_freq[idx] += 1;
    }

    /// Adds `count` to `f_t` for `term`, growing the table as needed.
    pub fn add_doc_freq(&mut self, term: TermId, count: u64) {
        let idx = term as usize;
        if idx >= self.doc_freq.len() {
            self.doc_freq.resize(idx + 1, 0);
        }
        self.doc_freq[idx] += count;
    }

    /// Serializes to bytes (u64 counts; the vocabulary is serialized
    /// separately).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.doc_freq.len() * 8);
        out.extend_from_slice(&self.num_docs.to_le_bytes());
        out.extend_from_slice(&(self.doc_freq.len() as u32).to_le_bytes());
        for &f in &self.doc_freq {
            out.extend_from_slice(&f.to_le_bytes());
        }
        out
    }

    /// Deserializes the form produced by [`CollectionStats::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::Corrupt`] on truncation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IndexError> {
        let mut pos = 0usize;
        let num_docs = read_u64(bytes, &mut pos)?;
        let count = read_u32(bytes, &mut pos)? as usize;
        let mut doc_freq = Vec::with_capacity(count);
        for _ in 0..count {
            doc_freq.push(read_u64(bytes, &mut pos)?);
        }
        Ok(CollectionStats { num_docs, doc_freq })
    }
}

/// Merges per-subcollection vocabularies and statistics into a global
/// vocabulary and global statistics — the preprocessing step of the
/// Central Vocabulary methodology.
///
/// Returns the merged vocabulary and, for each input part, a mapping from
/// its local term ids to global term ids.
pub fn merge_stats(
    parts: &[(&Vocabulary, &CollectionStats)],
) -> (Vocabulary, CollectionStats, Vec<Vec<TermId>>) {
    let mut global_vocab = Vocabulary::new();
    let mut global = CollectionStats::new();
    let mut mappings = Vec::with_capacity(parts.len());
    let mut total_docs = 0u64;
    for (vocab, stats) in parts {
        total_docs += stats.num_docs();
        let mut mapping = Vec::with_capacity(vocab.len());
        for (local_id, term) in vocab.iter() {
            let global_id = global_vocab.intern(term);
            mapping.push(global_id);
            global.add_doc_freq(global_id, stats.doc_freq(local_id));
        }
        mappings.push(mapping);
    }
    global.set_num_docs(total_docs);
    (global_vocab, global, mappings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab_of(terms: &[&str]) -> Vocabulary {
        let mut v = Vocabulary::new();
        for t in terms {
            v.intern(t);
        }
        v
    }

    #[test]
    fn bump_and_query() {
        let mut s = CollectionStats::new();
        s.bump_doc_freq(3);
        s.bump_doc_freq(3);
        s.bump_doc_freq(0);
        assert_eq!(s.doc_freq(3), 2);
        assert_eq!(s.doc_freq(0), 1);
        assert_eq!(s.doc_freq(1), 0);
        assert_eq!(s.doc_freq(99), 0);
        assert_eq!(s.num_terms(), 4);
    }

    #[test]
    fn serialization_roundtrips() {
        let mut s = CollectionStats::from_parts(42, vec![1, 0, 7, 3]);
        s.set_num_docs(43);
        let rt = CollectionStats::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(rt, s);
    }

    #[test]
    fn truncated_stats_error() {
        let s = CollectionStats::from_parts(1, vec![5, 5]);
        let bytes = s.to_bytes();
        assert!(CollectionStats::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(CollectionStats::from_bytes(&[]).is_err());
    }

    #[test]
    fn merge_combines_frequencies_of_shared_terms() {
        let va = vocab_of(&["alpha", "beta"]);
        let sa = CollectionStats::from_parts(10, vec![4, 2]);
        let vb = vocab_of(&["beta", "gamma"]);
        let sb = CollectionStats::from_parts(20, vec![5, 1]);

        let (gv, gs, mappings) = merge_stats(&[(&va, &sa), (&vb, &sb)]);
        assert_eq!(gs.num_docs(), 30);
        assert_eq!(gv.len(), 3);
        let beta = gv.term_id("beta").unwrap();
        assert_eq!(gs.doc_freq(beta), 7);
        let alpha = gv.term_id("alpha").unwrap();
        assert_eq!(gs.doc_freq(alpha), 4);
        let gamma = gv.term_id("gamma").unwrap();
        assert_eq!(gs.doc_freq(gamma), 1);
        // Mappings translate local ids to global ids.
        assert_eq!(mappings[0][va.term_id("beta").unwrap() as usize], beta);
        assert_eq!(mappings[1][vb.term_id("beta").unwrap() as usize], beta);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let (gv, gs, mappings) = merge_stats(&[]);
        assert!(gv.is_empty());
        assert_eq!(gs.num_docs(), 0);
        assert!(mappings.is_empty());
    }

    #[test]
    fn merge_single_part_is_identity() {
        let v = vocab_of(&["x", "y", "z"]);
        let s = CollectionStats::from_parts(5, vec![1, 2, 3]);
        let (gv, gs, mappings) = merge_stats(&[(&v, &s)]);
        assert_eq!(gv.len(), 3);
        assert_eq!(gs.num_docs(), 5);
        for (id, term) in v.iter() {
            assert_eq!(gs.doc_freq(mappings[0][id as usize]), s.doc_freq(id));
            assert_eq!(gv.term(mappings[0][id as usize]), term);
        }
    }
}
