//! The vocabulary: a bidirectional mapping between term strings and dense
//! term identifiers, plus per-term document frequencies.
//!
//! A Central Vocabulary receptionist holds the *merged* vocabularies of
//! all subcollections (see [`crate::stats::merge_stats`]); the
//! serialized form here is what gets measured against the paper's
//! "less than 10 Mb for the gigabyte of text".

use crate::IndexError;
use std::collections::HashMap;

/// Dense term identifier within one vocabulary.
pub type TermId = u32;

/// A term dictionary assigning dense ids in first-seen order.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    terms: Vec<String>,
    lookup: HashMap<String, TermId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if no terms have been added.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns the id of `term`, inserting it if new.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.lookup.get(term) {
            return id;
        }
        let id = self.terms.len() as TermId;
        self.terms.push(term.to_owned());
        self.lookup.insert(term.to_owned(), id);
        id
    }

    /// Returns the id of `term` if present.
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.lookup.get(term).copied()
    }

    /// Returns the term string for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id as usize]
    }

    /// Iterates over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (i as TermId, t.as_str()))
    }

    /// Serialized size in bytes (length-prefixed UTF-8 strings), used for
    /// the paper's central-vocabulary storage accounting.
    pub fn serialized_len(&self) -> usize {
        self.terms.iter().map(|t| t.len() + 2).sum()
    }

    /// Serializes to a compact byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len() + 8);
        out.extend_from_slice(&(self.terms.len() as u32).to_le_bytes());
        for term in &self.terms {
            let bytes = term.as_bytes();
            out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        out
    }

    /// Deserializes the form produced by [`Vocabulary::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::Corrupt`] on truncation or invalid UTF-8.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IndexError> {
        let mut pos = 0usize;
        let count = read_u32(bytes, &mut pos)? as usize;
        let mut vocab = Vocabulary::new();
        for _ in 0..count {
            let len = read_u16(bytes, &mut pos)? as usize;
            let slice = bytes
                .get(pos..pos + len)
                .ok_or(IndexError::Corrupt("vocabulary truncated"))?;
            pos += len;
            let term = std::str::from_utf8(slice)
                .map_err(|_| IndexError::Corrupt("vocabulary term not UTF-8"))?;
            vocab.intern(term);
        }
        Ok(vocab)
    }
}

pub(crate) fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, IndexError> {
    let slice = bytes
        .get(*pos..*pos + 4)
        .ok_or(IndexError::Corrupt("truncated u32"))?;
    *pos += 4;
    Ok(u32::from_le_bytes(slice.try_into().expect("4 bytes")))
}

pub(crate) fn read_u16(bytes: &[u8], pos: &mut usize) -> Result<u16, IndexError> {
    let slice = bytes
        .get(*pos..*pos + 2)
        .ok_or(IndexError::Corrupt("truncated u16"))?;
    *pos += 2;
    Ok(u16::from_le_bytes(slice.try_into().expect("2 bytes")))
}

pub(crate) fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, IndexError> {
    let slice = bytes
        .get(*pos..*pos + 8)
        .ok_or(IndexError::Corrupt("truncated u64"))?;
    *pos += 8;
    Ok(u64::from_le_bytes(slice.try_into().expect("8 bytes")))
}

pub(crate) fn read_f64(bytes: &[u8], pos: &mut usize) -> Result<f64, IndexError> {
    Ok(f64::from_bits(read_u64(bytes, pos)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids_in_order() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("alpha"), 0);
        assert_eq!(v.intern("beta"), 1);
        assert_eq!(v.intern("alpha"), 0);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn term_id_and_term_are_inverses() {
        let mut v = Vocabulary::new();
        for t in ["a", "b", "c"] {
            v.intern(t);
        }
        for (id, term) in v.iter() {
            assert_eq!(v.term_id(term), Some(id));
            assert_eq!(v.term(id), term);
        }
        assert_eq!(v.term_id("missing"), None);
    }

    #[test]
    fn empty_vocabulary() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        let rt = Vocabulary::from_bytes(&v.to_bytes()).unwrap();
        assert!(rt.is_empty());
    }

    #[test]
    fn serialization_roundtrips() {
        let mut v = Vocabulary::new();
        for t in ["retrieval", "distributed", "naïve", "x"] {
            v.intern(t);
        }
        let rt = Vocabulary::from_bytes(&v.to_bytes()).unwrap();
        assert_eq!(rt.len(), v.len());
        for (id, term) in v.iter() {
            assert_eq!(rt.term(id), term);
        }
    }

    #[test]
    fn truncated_bytes_error() {
        let mut v = Vocabulary::new();
        v.intern("hello");
        let bytes = v.to_bytes();
        for cut in 0..bytes.len() {
            assert!(Vocabulary::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn serialized_len_approximates_to_bytes() {
        let mut v = Vocabulary::new();
        for t in ["one", "two", "three"] {
            v.intern(t);
        }
        assert_eq!(v.to_bytes().len(), v.serialized_len() + 4);
    }
}
