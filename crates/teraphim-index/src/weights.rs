//! The document-weights table.
//!
//! `W_d = sqrt(Σ_{t∈d} w_dt²)` with `w_dt = log(f_dt + 1)` is precomputed
//! at index-build time and "stored as part of the database" (§2). In the
//! paper's formulation the collection-wide statistic appears only in
//! query weights, so `W_d` is collection-independent — which is what lets
//! the Central Vocabulary method produce scores identical to a
//! mono-server system without recomputing document weights.

use crate::vocab::{read_f64, read_u32};
use crate::{DocId, IndexError};

/// Precomputed per-document cosine norms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DocWeights {
    weights: Vec<f64>,
}

impl DocWeights {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a precomputed weight vector (indexed by [`DocId`]).
    pub fn from_vec(weights: Vec<f64>) -> Self {
        DocWeights { weights }
    }

    /// Number of documents in the table.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The weight `W_d` of `doc`.
    ///
    /// Returns 0.0 for unknown documents (an empty document also has
    /// weight 0; callers must guard the division).
    pub fn weight(&self, doc: DocId) -> f64 {
        self.weights.get(doc as usize).copied().unwrap_or(0.0)
    }

    /// Appends the weight for the next document.
    pub fn push(&mut self, weight: f64) {
        self.weights.push(weight);
    }

    /// Computes `W_d` from a document's term frequencies.
    pub fn weight_from_freqs<I: IntoIterator<Item = u64>>(freqs: I) -> f64 {
        freqs
            .into_iter()
            .map(|f| {
                let w = crate::similarity::w_dt(f);
                w * w
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Serialized size in bytes.
    pub fn serialized_len(&self) -> usize {
        4 + self.weights.len() * 8
    }

    /// Serializes to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        out.extend_from_slice(&(self.weights.len() as u32).to_le_bytes());
        for &w in &self.weights {
            out.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        out
    }

    /// Deserializes the form produced by [`DocWeights::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::Corrupt`] on truncation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IndexError> {
        let mut pos = 0usize;
        let count = read_u32(bytes, &mut pos)? as usize;
        let mut weights = Vec::with_capacity(count);
        for _ in 0..count {
            weights.push(read_f64(bytes, &mut pos)?);
        }
        Ok(DocWeights { weights })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_from_freqs_hand_computed() {
        // One term appearing 1 time: W = ln(2).
        let w = DocWeights::weight_from_freqs([1]);
        assert!((w - 2f64.ln()).abs() < 1e-12);
        // Two terms at f=1: sqrt(2 ln(2)^2).
        let w = DocWeights::weight_from_freqs([1, 1]);
        assert!((w - (2.0f64).sqrt() * 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn empty_document_has_zero_weight() {
        assert_eq!(DocWeights::weight_from_freqs([]), 0.0);
    }

    #[test]
    fn unknown_doc_weight_is_zero() {
        let table = DocWeights::from_vec(vec![1.0]);
        assert_eq!(table.weight(0), 1.0);
        assert_eq!(table.weight(7), 0.0);
    }

    #[test]
    fn push_and_len() {
        let mut table = DocWeights::new();
        assert!(table.is_empty());
        table.push(0.5);
        table.push(1.5);
        assert_eq!(table.len(), 2);
        assert_eq!(table.weight(1), 1.5);
    }

    #[test]
    fn serialization_roundtrips_bit_exactly() {
        let table = DocWeights::from_vec(vec![0.0, 1.5, f64::MIN_POSITIVE, 1e300]);
        let rt = DocWeights::from_bytes(&table.to_bytes()).unwrap();
        assert_eq!(rt, table);
        assert_eq!(table.to_bytes().len(), table.serialized_len());
    }

    #[test]
    fn truncated_bytes_error() {
        let table = DocWeights::from_vec(vec![1.0, 2.0]);
        let bytes = table.to_bytes();
        assert!(DocWeights::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn weight_grows_with_frequency_and_breadth() {
        let narrow = DocWeights::weight_from_freqs([10]);
        let broad = DocWeights::weight_from_freqs([10, 1, 1]);
        assert!(broad > narrow);
        let low = DocWeights::weight_from_freqs([1]);
        let high = DocWeights::weight_from_freqs([100]);
        assert!(high > low);
    }
}
