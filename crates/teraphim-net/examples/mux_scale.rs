//! Quick scaling probe: raw multiplexed exchanges per second as client
//! thread count grows, against one `TcpServer`. Run with
//! `cargo run --release -p teraphim-net --example mux_scale`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use teraphim_net::mux::{MuxPool, MuxTransport};
use teraphim_net::tcp::{ServerOptions, TcpServer};
use teraphim_net::{Message, Service, TcpOptions, Transport};

struct Echo;

impl Service for Echo {
    fn handle(&mut self, request: Message) -> Message {
        // Simulate a ~170us ranking evaluation so the probe matches the
        // serving benchmark's per-query CPU cost.
        let t0 = Instant::now();
        let mut x = 0u64;
        while t0.elapsed().as_micros() < 170 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        std::hint::black_box(x);
        request
    }
}

fn main() {
    let total = 20_000usize;
    let server = TcpServer::spawn_with(
        vec![Echo, Echo],
        "127.0.0.1:0",
        ServerOptions {
            workers: 2,
            queue_depth: 512,
        },
    )
    .unwrap();
    let pool = MuxPool::connect(server.addr(), 2, TcpOptions::default()).unwrap();
    for threads in [1usize, 16, 64, 256] {
        let issued = AtomicUsize::new(0);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let pool = std::sync::Arc::clone(&pool);
                let issued = &issued;
                scope.spawn(move || {
                    let mut t = MuxTransport::new(pool);
                    loop {
                        if issued.fetch_add(1, Ordering::Relaxed) >= total {
                            break;
                        }
                        let request = Message::RankRequest {
                            query_id: 1,
                            k: 10,
                            terms: (0..30)
                                .map(|i| (format!("query-term-number-{i}"), 1u32))
                                .collect(),
                        };
                        let reply = t.request(&request).expect("exchange");
                        assert!(matches!(reply, Message::RankRequest { .. }));
                    }
                });
            }
        });
        let qps = total as f64 / start.elapsed().as_secs_f64();
        println!("threads {threads:4}  {qps:10.0} exchanges/s");
    }
    drop(pool);
    server.shutdown();
}
