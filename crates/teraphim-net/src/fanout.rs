//! Concurrent fan-out over a set of transports.
//!
//! A receptionist step touches up to S librarians. Issuing those
//! subqueries one after another serializes what the paper's model treats
//! as parallel machines — "the elapsed time is the maximum of the
//! librarians' times, not the sum". This module supplies the batch
//! dispatch path: one scoped worker thread per participating transport,
//! with replies delivered to the caller *as they arrive* over a channel
//! so that merging overlaps the slower librarians' work.
//!
//! Because replies arrive in completion order, callers must fold them
//! with an order-independent rule (the engine's `merge_rankings` orders
//! ties on the librarian payload for exactly this reason).

use crate::message::Message;
use crate::transport::Transport;
use crate::NetError;
use std::sync::mpsc;
use teraphim_obs::{EventKind, TraceSink};

/// Records the departure of a request, guarding the re-encode that
/// computes the wire length behind the enabled check.
fn record_sent(trace: &TraceSink, lib: usize, request: &Message) {
    if trace.is_enabled() {
        trace.record(EventKind::Sent {
            librarian: lib as u32,
            bytes: request.wire_len() as u64,
            message: request.variant_name(),
        });
    }
}

/// Records a reply's arrival — the byte count comes from the
/// transport's `last_exchange` so it matches the traffic counters
/// exactly — followed by one `server_phase` event per server-side phase
/// (queue wait, scan, rank, serialize), from the timings the server
/// piggybacked on the reply. Backends without a server clock yield
/// zeros; the event *structure* is identical either way, which is what
/// keeps normalized traces byte-identical across sim, in-proc and TCP.
fn record_reply<T: Transport + ?Sized>(
    trace: &TraceSink,
    lib: usize,
    transport: &T,
    response: &Message,
) {
    if trace.is_enabled() {
        trace.record(EventKind::Reply {
            librarian: lib as u32,
            bytes: transport.last_exchange().1,
            message: response.variant_name(),
        });
        let timings = transport.last_server_timings().unwrap_or_default();
        for (phase, micros) in timings.as_pairs() {
            trace.record(EventKind::ServerPhase {
                librarian: lib as u32,
                phase,
                micros,
            });
        }
    }
}

/// Records a librarian dropping out of the fan-out.
fn record_failed(trace: &TraceSink, lib: usize, error: &NetError) {
    if trace.is_enabled() {
        trace.record(EventKind::LibFailed {
            librarian: lib as u32,
            error: error.kind(),
        });
    }
}

/// How a batch of subqueries is issued to the librarians.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// One request at a time, in librarian order — the elapsed time is
    /// the sum of the librarians' times. Kept for benchmarking the
    /// fan-out win and for debugging.
    Sequential,
    /// All requests at once, one scoped worker thread per librarian —
    /// the elapsed time is the maximum of the librarians' times.
    #[default]
    Concurrent,
    /// All requests issued back-to-back on the calling thread
    /// ([`Transport::begin`]), replies then waited for in librarian
    /// order — no worker threads at all. Over pipelining transports
    /// (the multiplexed TCP path) the elapsed time matches
    /// `Concurrent` — the maximum of the librarians' times — without
    /// per-query thread spawns, which is what lets hundreds of
    /// concurrent query sessions coexist cheaply. Over plain
    /// transports the deferred-ticket fallback makes it behave exactly
    /// like `Sequential`.
    Pipelined,
}

/// Sends `requests[i]` over `transports[i]` (skipping `None` slots) and
/// feeds each reply to `on_reply`. Under [`DispatchMode::Concurrent`]
/// replies are processed in *arrival* order; `on_reply` runs on the
/// calling thread, so it may borrow freely from the caller's state.
///
/// The first failure — transport or `on_reply` — is reported, but every
/// outstanding worker still runs to completion first, so no transport is
/// ever abandoned mid-exchange.
///
/// # Panics
///
/// Panics if `requests.len() != transports.len()`.
///
/// # Errors
///
/// Returns the first transport failure (converted into `E`) or the
/// first error returned by `on_reply`.
pub fn dispatch<T, E>(
    mode: DispatchMode,
    transports: &mut [T],
    requests: Vec<Option<Message>>,
    on_reply: &mut dyn FnMut(usize, Message) -> Result<(), E>,
) -> Result<(), E>
where
    T: Transport + Send,
    E: From<NetError>,
{
    dispatch_traced(mode, transports, requests, &TraceSink::disabled(), on_reply)
}

/// [`dispatch`] with trace instrumentation: each participating librarian
/// gets a `sent` event as its request leaves and a `reply` event as the
/// response arrives (recorded on the worker thread, so a librarian's own
/// events stay contiguous even under concurrent dispatch); a transport
/// failure records `lib_failed` with the final error kind. With a
/// disabled sink this is exactly [`dispatch`].
///
/// # Panics
///
/// Panics if `requests.len() != transports.len()`.
///
/// # Errors
///
/// Returns the first transport failure (converted into `E`) or the
/// first error returned by `on_reply`.
pub fn dispatch_traced<T, E>(
    mode: DispatchMode,
    transports: &mut [T],
    requests: Vec<Option<Message>>,
    trace: &TraceSink,
    on_reply: &mut dyn FnMut(usize, Message) -> Result<(), E>,
) -> Result<(), E>
where
    T: Transport + Send,
    E: From<NetError>,
{
    assert_eq!(
        requests.len(),
        transports.len(),
        "one request slot per transport"
    );
    match mode {
        DispatchMode::Sequential => {
            for (lib, (transport, request)) in transports.iter_mut().zip(requests).enumerate() {
                let Some(request) = request else { continue };
                record_sent(trace, lib, &request);
                match transport.request(&request) {
                    Ok(response) => {
                        record_reply(trace, lib, transport, &response);
                        on_reply(lib, response)?;
                    }
                    Err(e) => {
                        record_failed(trace, lib, &e);
                        return Err(E::from(e));
                    }
                }
            }
            Ok(())
        }
        DispatchMode::Pipelined => {
            let mut tickets = Vec::with_capacity(transports.len());
            for (lib, (transport, request)) in transports.iter_mut().zip(requests).enumerate() {
                let Some(request) = request else { continue };
                record_sent(trace, lib, &request);
                tickets.push((lib, transport.begin(&request)));
            }
            for (lib, ticket) in tickets {
                match transports[lib].finish(ticket) {
                    Ok(response) => {
                        record_reply(trace, lib, &transports[lib], &response);
                        on_reply(lib, response)?;
                    }
                    Err(e) => {
                        // Outstanding tickets deregister on drop; their
                        // replies are discarded by the reactors.
                        record_failed(trace, lib, &e);
                        return Err(E::from(e));
                    }
                }
            }
            Ok(())
        }
        DispatchMode::Concurrent => std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel();
            for (lib, (transport, request)) in transports.iter_mut().zip(requests).enumerate() {
                let Some(request) = request else { continue };
                let tx = tx.clone();
                scope.spawn(move || {
                    record_sent(trace, lib, &request);
                    let result = transport.request(&request);
                    if let Ok(response) = &result {
                        record_reply(trace, lib, transport, response);
                    }
                    // A dropped receiver only means the result goes
                    // unread; the exchange itself always completes.
                    let _ = tx.send((lib, result));
                });
            }
            drop(tx);
            let mut first_err = None;
            for (lib, result) in rx {
                match result {
                    Ok(response) => {
                        if first_err.is_none() {
                            if let Err(e) = on_reply(lib, response) {
                                first_err = Some(e);
                            }
                        }
                        // otherwise drain remaining replies, keep the first error
                    }
                    Err(e) => {
                        record_failed(trace, lib, &e);
                        if first_err.is_none() {
                            first_err = Some(E::from(e));
                        }
                    }
                }
            }
            first_err.map_or(Ok(()), Err)
        }),
    }
}

/// [`dispatch`] variant that never aborts the batch: every transport
/// runs its exchange, successful replies are fed to `on_reply`, and
/// failures — transport errors *and* errors returned by `on_reply` —
/// are collected per librarian instead of sinking the whole fan-out.
/// This is the degraded-coverage path: the caller decides afterwards
/// whether the surviving answers constitute an acceptable result.
///
/// The returned failures are sorted by librarian index, so callers can
/// report a deterministic failure set regardless of arrival order.
///
/// # Panics
///
/// Panics if `requests.len() != transports.len()`.
pub fn dispatch_partial<T>(
    mode: DispatchMode,
    transports: &mut [T],
    requests: Vec<Option<Message>>,
    on_reply: &mut dyn FnMut(usize, Message) -> Result<(), NetError>,
) -> Vec<(usize, NetError)>
where
    T: Transport + Send,
{
    dispatch_partial_traced(mode, transports, requests, &TraceSink::disabled(), on_reply)
}

/// [`dispatch_partial`] with trace instrumentation — the same `sent` /
/// `reply` / `lib_failed` events as [`dispatch_traced`], except that
/// errors returned by `on_reply` (a malformed or mismatched reply) also
/// record `lib_failed`, since here they degrade rather than abort the
/// fan-out. With a disabled sink this is exactly [`dispatch_partial`].
///
/// # Panics
///
/// Panics if `requests.len() != transports.len()`.
pub fn dispatch_partial_traced<T>(
    mode: DispatchMode,
    transports: &mut [T],
    requests: Vec<Option<Message>>,
    trace: &TraceSink,
    on_reply: &mut dyn FnMut(usize, Message) -> Result<(), NetError>,
) -> Vec<(usize, NetError)>
where
    T: Transport + Send,
{
    assert_eq!(
        requests.len(),
        transports.len(),
        "one request slot per transport"
    );
    let mut failures: Vec<(usize, NetError)> = Vec::new();
    match mode {
        DispatchMode::Sequential => {
            for (lib, (transport, request)) in transports.iter_mut().zip(requests).enumerate() {
                let Some(request) = request else { continue };
                record_sent(trace, lib, &request);
                let result = transport.request(&request).inspect(|response| {
                    record_reply(trace, lib, transport, response);
                });
                match result.and_then(|r| on_reply(lib, r)) {
                    Ok(()) => {}
                    Err(e) => {
                        record_failed(trace, lib, &e);
                        failures.push((lib, e));
                    }
                }
            }
        }
        DispatchMode::Pipelined => {
            let mut tickets = Vec::with_capacity(transports.len());
            for (lib, (transport, request)) in transports.iter_mut().zip(requests).enumerate() {
                let Some(request) = request else { continue };
                record_sent(trace, lib, &request);
                tickets.push((lib, transport.begin(&request)));
            }
            for (lib, ticket) in tickets {
                let result = transports[lib].finish(ticket);
                if let Ok(response) = &result {
                    record_reply(trace, lib, &transports[lib], response);
                }
                match result.and_then(|r| on_reply(lib, r)) {
                    Ok(()) => {}
                    Err(e) => {
                        record_failed(trace, lib, &e);
                        failures.push((lib, e));
                    }
                }
            }
        }
        DispatchMode::Concurrent => std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel();
            for (lib, (transport, request)) in transports.iter_mut().zip(requests).enumerate() {
                let Some(request) = request else { continue };
                let tx = tx.clone();
                scope.spawn(move || {
                    record_sent(trace, lib, &request);
                    let result = transport.request(&request);
                    if let Ok(response) = &result {
                        record_reply(trace, lib, transport, response);
                    }
                    let _ = tx.send((lib, result));
                });
            }
            drop(tx);
            for (lib, result) in rx {
                match result.and_then(|r| on_reply(lib, r)) {
                    Ok(()) => {}
                    Err(e) => {
                        record_failed(trace, lib, &e);
                        failures.push((lib, e));
                    }
                }
            }
        }),
    }
    failures.sort_by_key(|(lib, _)| *lib);
    failures
}

/// [`dispatch`] variant that collects raw replies into per-transport
/// slots, for callers whose reply processing must run in librarian
/// order even though the exchanges themselves may overlap (e.g. the
/// CV setup's vocabulary interning, whose term-id assignment depends on
/// processing order).
///
/// # Errors
///
/// Propagates [`dispatch`] failures.
pub fn dispatch_collect<T, E>(
    mode: DispatchMode,
    transports: &mut [T],
    requests: Vec<Option<Message>>,
) -> Result<Vec<Option<Message>>, E>
where
    T: Transport + Send,
    E: From<NetError>,
{
    dispatch_collect_traced(mode, transports, requests, &TraceSink::disabled())
}

/// [`dispatch_collect`] with trace instrumentation (see
/// [`dispatch_traced`]). With a disabled sink this is exactly
/// [`dispatch_collect`].
///
/// # Errors
///
/// Propagates [`dispatch_traced`] failures.
pub fn dispatch_collect_traced<T, E>(
    mode: DispatchMode,
    transports: &mut [T],
    requests: Vec<Option<Message>>,
    trace: &TraceSink,
) -> Result<Vec<Option<Message>>, E>
where
    T: Transport + Send,
    E: From<NetError>,
{
    let mut responses: Vec<Option<Message>> = Vec::new();
    responses.resize_with(transports.len(), || None);
    dispatch_traced(mode, transports, requests, trace, &mut |lib, response| {
        responses[lib] = Some(response);
        Ok(())
    })?;
    Ok(responses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{InProcTransport, Service};
    use std::time::Duration;

    /// Echoes rank requests after an optional artificial delay.
    struct SlowEcho {
        delay: Duration,
    }

    impl Service for SlowEcho {
        fn handle(&mut self, request: Message) -> Message {
            std::thread::sleep(self.delay);
            match request {
                Message::RankRequest { query_id, .. } => Message::RankResponse {
                    query_id,
                    epoch: 0,
                    entries: vec![(query_id, 1.0)],
                },
                _ => Message::Error {
                    message: "unsupported".into(),
                },
            }
        }
    }

    fn transports(n: usize, delay: Duration) -> Vec<InProcTransport<SlowEcho>> {
        (0..n)
            .map(|_| InProcTransport::new(SlowEcho { delay }))
            .collect()
    }

    fn rank_request(query_id: u32) -> Message {
        Message::RankRequest {
            query_id,
            k: 1,
            terms: vec![],
        }
    }

    #[test]
    fn both_modes_deliver_every_reply() {
        for mode in [
            DispatchMode::Sequential,
            DispatchMode::Concurrent,
            DispatchMode::Pipelined,
        ] {
            let mut ts = transports(4, Duration::ZERO);
            let requests = (0..4).map(|i| Some(rank_request(i))).collect();
            let mut seen = Vec::new();
            dispatch::<_, NetError>(
                mode,
                &mut ts,
                requests,
                &mut |lib, response| match response {
                    Message::RankResponse { query_id, .. } => {
                        seen.push((lib, query_id));
                        Ok(())
                    }
                    other => panic!("unexpected {other:?}"),
                },
            )
            .unwrap();
            seen.sort_unstable();
            assert_eq!(seen, vec![(0, 0), (1, 1), (2, 2), (3, 3)], "{mode:?}");
            for t in &ts {
                assert_eq!(t.stats().round_trips, 1, "{mode:?}");
            }
        }
    }

    #[test]
    fn none_slots_are_skipped() {
        let mut ts = transports(3, Duration::ZERO);
        let requests = vec![Some(rank_request(0)), None, Some(rank_request(2))];
        let responses =
            dispatch_collect::<_, NetError>(DispatchMode::Concurrent, &mut ts, requests).unwrap();
        assert!(responses[0].is_some());
        assert!(responses[1].is_none());
        assert!(responses[2].is_some());
        assert_eq!(ts[1].stats().round_trips, 0);
    }

    #[test]
    fn concurrent_fanout_overlaps_librarian_work() {
        let delay = Duration::from_millis(30);
        let mut ts = transports(4, delay);
        let requests = (0..4).map(|i| Some(rank_request(i))).collect();
        let start = std::time::Instant::now();
        dispatch::<_, NetError>(DispatchMode::Concurrent, &mut ts, requests, &mut |_, _| {
            Ok(())
        })
        .unwrap();
        // Four 30 ms librarians in parallel must finish well under the
        // 120 ms a sequential pass would take.
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn remote_errors_surface_and_workers_drain() {
        let mut ts = transports(3, Duration::ZERO);
        // StatsRequest makes SlowEcho answer Message::Error.
        let requests = vec![
            Some(rank_request(0)),
            Some(Message::StatsRequest),
            Some(rank_request(2)),
        ];
        let err =
            dispatch::<_, NetError>(DispatchMode::Concurrent, &mut ts, requests, &mut |_, _| {
                Ok(())
            })
            .unwrap_err();
        assert_eq!(err, NetError::Remote("unsupported".into()));
        // Every transport still completed its exchange.
        for t in &ts {
            assert_eq!(t.stats().round_trips, 1);
        }
    }

    #[test]
    fn dispatch_partial_survives_failed_librarians() {
        use crate::faults::{FaultPlan, FaultyTransport};
        for mode in [
            DispatchMode::Sequential,
            DispatchMode::Concurrent,
            DispatchMode::Pipelined,
        ] {
            let mut ts: Vec<FaultyTransport<InProcTransport<SlowEcho>>> = (0..4)
                .map(|lib| {
                    let plan = if lib == 2 {
                        FaultPlan::new().fail_from(0)
                    } else {
                        FaultPlan::new()
                    };
                    FaultyTransport::new(
                        InProcTransport::new(SlowEcho {
                            delay: Duration::ZERO,
                        }),
                        plan,
                    )
                })
                .collect();
            let requests = (0..4).map(|i| Some(rank_request(i))).collect();
            let mut seen = Vec::new();
            let failures =
                dispatch_partial(
                    mode,
                    &mut ts,
                    requests,
                    &mut |lib, response| match response {
                        Message::RankResponse { query_id, .. } => {
                            seen.push((lib, query_id));
                            Ok(())
                        }
                        other => panic!("unexpected {other:?}"),
                    },
                );
            seen.sort_unstable();
            assert_eq!(seen, vec![(0, 0), (1, 1), (3, 3)], "{mode:?}");
            assert_eq!(failures.len(), 1, "{mode:?}");
            assert_eq!(failures[0].0, 2, "{mode:?}");
            assert!(matches!(failures[0].1, NetError::Unavailable(_)));
        }
    }

    #[test]
    fn dispatch_partial_collects_on_reply_errors_per_librarian() {
        let mut ts = transports(3, Duration::ZERO);
        let requests = (0..3).map(|i| Some(rank_request(i))).collect();
        let failures = dispatch_partial(
            DispatchMode::Sequential,
            &mut ts,
            requests,
            &mut |lib, _| {
                if lib == 1 {
                    Err(NetError::Corrupt("bad payload"))
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0], (1, NetError::Corrupt("bad payload")));
        // Librarian 2 still ran even though librarian 1's reply was bad.
        assert_eq!(ts[2].stats().round_trips, 1);
    }

    #[test]
    fn traced_dispatch_records_sent_and_reply_per_librarian() {
        for mode in [
            DispatchMode::Sequential,
            DispatchMode::Concurrent,
            DispatchMode::Pipelined,
        ] {
            let sink = TraceSink::new();
            sink.record(EventKind::Begin {
                op: "query",
                methodology: Some("CN"),
                query_id: 0,
                k: 1,
            });
            let mut ts = transports(3, Duration::ZERO);
            let requests: Vec<Option<Message>> = (0..3).map(|i| Some(rank_request(i))).collect();
            let wire_len = rank_request(0).wire_len() as u64;
            dispatch_traced::<_, NetError>(mode, &mut ts, requests, &sink, &mut |_, _| Ok(()))
                .unwrap();
            sink.record(EventKind::End);
            let traces = sink.take_traces();
            assert_eq!(traces.len(), 1, "{mode:?}");
            let trace = traces[0].normalized();
            let rows = trace.per_librarian_traffic();
            assert_eq!(rows.len(), 3, "{mode:?}");
            for (lib, row) in rows.iter().enumerate() {
                assert_eq!(row.librarian, lib as u32, "{mode:?}");
                assert_eq!(row.messages, 2, "{mode:?}");
                assert_eq!(row.bytes_sent, wire_len, "{mode:?}");
                let stats = ts[lib].stats();
                assert_eq!(row.bytes_sent, stats.bytes_sent, "{mode:?}");
                assert_eq!(row.bytes_received, stats.bytes_received, "{mode:?}");
            }
        }
    }

    #[test]
    fn on_reply_errors_stop_processing() {
        let mut ts = transports(2, Duration::ZERO);
        let requests = (0..2).map(|i| Some(rank_request(i))).collect();
        let err =
            dispatch::<_, NetError>(DispatchMode::Sequential, &mut ts, requests, &mut |_, _| {
                Err(NetError::Disconnected)
            })
            .unwrap_err();
        assert_eq!(err, NetError::Disconnected);
    }
}
