//! Deterministic failure injection for transports and services.
//!
//! A production broker must be exercised against slow, dead and lying
//! librarians — and those experiments must be *replayable*, or a failing
//! run cannot be debugged and a fixed run cannot be trusted. This module
//! supplies the harness: a [`FaultPlan`] describes, as a pure function
//! of the request sequence number, which fault (if any) strikes each
//! request. Wrapping the plan around any [`Service`]
//! ([`FaultyService`]) or any [`Transport`] ([`FaultyTransport`])
//! injects the faults at that layer; the simulation driver consults the
//! same plans directly to model librarian outages in virtual time.
//!
//! Because a plan is immutable and the only mutable state is the
//! wrapper's request counter, replaying a scenario is trivial: wrap a
//! fresh fixture in a clone of the same plan and the identical fault
//! sequence unfolds. Seeded pseudo-random plans
//! ([`FaultPlan::seeded_failures`]) hash the request number with the
//! seed, so they too are pure functions — no hidden RNG stream to keep
//! in sync.
//!
//! # Examples
//!
//! ```
//! use teraphim_net::faults::{FaultAction, FaultPlan};
//! use std::time::Duration;
//!
//! // First request times out at the peer, second is delayed, the
//! // librarian dies for good at request 5.
//! let plan = FaultPlan::new()
//!     .drop_nth(0)
//!     .delay_nth(1, Duration::from_millis(30))
//!     .fail_from(5);
//! assert_eq!(plan.action_for(0), Some(&FaultAction::Drop));
//! assert_eq!(plan.action_for(2), None);
//! assert_eq!(plan.action_for(9_999), Some(&FaultAction::Fail));
//! // Replay: the plan is a pure function of the request number.
//! assert_eq!(plan.action_for(0), plan.action_for(0));
//! ```

use crate::message::Message;
use crate::transport::{Service, TrafficStats, Transport};
use crate::NetError;
use std::time::Duration;
use teraphim_obs::{EventKind, TraceSink};

/// What happens to a request selected by a [`FaultPlan`] rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The peer answers a typed transient failure
    /// ([`Message::Unavailable`] / [`NetError::Unavailable`]) without
    /// doing the work.
    Fail,
    /// The exchange completes, but only after this much extra latency —
    /// a slow disk, a congested link, a GC pause.
    Delay(Duration),
    /// The connection dies before a response arrives
    /// ([`NetError::Disconnected`]); the request may or may not have
    /// been processed by the peer.
    Drop,
    /// The exchange completes but the response is corrupted in a
    /// protocol-visible way (the echoed query id is perturbed), modelling
    /// a buggy or byzantine librarian.
    Garble,
}

impl FaultAction {
    /// Stable lowercase label used in trace `fault` events.
    pub fn name(&self) -> &'static str {
        match self {
            FaultAction::Fail => "fail",
            FaultAction::Delay(_) => "delay",
            FaultAction::Drop => "drop",
            FaultAction::Garble => "garble",
        }
    }
}

/// Which request numbers a rule covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Matcher {
    /// Exactly request `n` (0-based).
    Nth(u64),
    /// Every request from `n` onward — a permanent outage.
    From(u64),
    /// Every request.
    All,
    /// Pseudo-randomly, `permille`/1000 of requests, chosen by hashing
    /// the request number with the seed — deterministic and replayable.
    Seeded { seed: u64, permille: u16 },
}

impl Matcher {
    fn matches(self, n: u64) -> bool {
        match self {
            Matcher::Nth(at) => n == at,
            Matcher::From(at) => n >= at,
            Matcher::All => true,
            Matcher::Seeded { seed, permille } => {
                splitmix64(seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % 1000
                    < u64::from(permille)
            }
        }
    }
}

/// SplitMix64: a single avalanche pass, enough to decorrelate adjacent
/// request numbers under the same seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic, replayable schedule of faults: a pure function from
/// request sequence number to [`FaultAction`]. The first matching rule
/// wins, so put specific rules (`*_nth`) before blanket ones
/// (`*_from`, `seeded_failures`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    rules: Vec<(Matcher, FaultAction)>,
}

impl FaultPlan {
    /// A healthy plan: no rules, no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if the plan can never inject anything.
    pub fn is_healthy(&self) -> bool {
        self.rules.is_empty()
    }

    fn rule(mut self, matcher: Matcher, action: FaultAction) -> Self {
        self.rules.push((matcher, action));
        self
    }

    /// Request `n` answers a transient failure.
    pub fn fail_nth(self, n: u64) -> Self {
        self.rule(Matcher::Nth(n), FaultAction::Fail)
    }

    /// Every request from `n` onward answers a transient failure — the
    /// librarian is dead from that point (killed mid-stream when `n`
    /// falls after its setup traffic).
    pub fn fail_from(self, n: u64) -> Self {
        self.rule(Matcher::From(n), FaultAction::Fail)
    }

    /// Request `n` completes only after an extra `delay`.
    pub fn delay_nth(self, n: u64, delay: Duration) -> Self {
        self.rule(Matcher::Nth(n), FaultAction::Delay(delay))
    }

    /// Every request is slowed by `delay` — a uniformly slow librarian.
    pub fn delay_all(self, delay: Duration) -> Self {
        self.rule(Matcher::All, FaultAction::Delay(delay))
    }

    /// Request `n`'s connection drops before the response arrives.
    pub fn drop_nth(self, n: u64) -> Self {
        self.rule(Matcher::Nth(n), FaultAction::Drop)
    }

    /// Every request from `n` onward drops its connection.
    pub fn drop_from(self, n: u64) -> Self {
        self.rule(Matcher::From(n), FaultAction::Drop)
    }

    /// Request `n`'s response arrives garbled (perturbed query id).
    pub fn garble_nth(self, n: u64) -> Self {
        self.rule(Matcher::Nth(n), FaultAction::Garble)
    }

    /// Roughly `permille`/1000 of requests answer a transient failure,
    /// chosen by hashing the request number with `seed`: deterministic,
    /// replayable, and identical across wrappers sharing the plan.
    pub fn seeded_failures(self, seed: u64, permille: u16) -> Self {
        self.rule(Matcher::Seeded { seed, permille }, FaultAction::Fail)
    }

    /// The fault striking request `n`, if any (first matching rule).
    pub fn action_for(&self, n: u64) -> Option<&FaultAction> {
        self.rules
            .iter()
            .find(|(m, _)| m.matches(n))
            .map(|(_, action)| action)
    }
}

/// Perturbs the echoed query id of a response — the protocol-visible
/// corruption a receptionist must detect and treat as a failed
/// librarian, not merge at face value.
fn garble_response(response: Message) -> Message {
    match response {
        Message::RankResponse {
            query_id,
            epoch,
            entries,
        } => Message::RankResponse {
            query_id: query_id.wrapping_add(1),
            epoch,
            entries,
        },
        Message::ScoreResponse {
            query_id,
            epoch,
            entries,
            postings_decoded,
        } => Message::ScoreResponse {
            query_id: query_id.wrapping_add(1),
            epoch,
            entries,
            postings_decoded,
        },
        Message::BooleanResponse { query_id, docs } => Message::BooleanResponse {
            query_id: query_id.wrapping_add(1),
            docs,
        },
        // Responses without a protocol-checked id are replaced outright;
        // the caller sees an unexpected variant.
        other => Message::Unavailable {
            message: format!("garbled response (was {})", other.variant_name()),
        },
    }
}

/// A [`Service`] wrapper injecting a [`FaultPlan`] on the server side —
/// usable behind any transport, including a real [`crate::tcp::TcpServer`].
///
/// [`FaultAction::Drop`] cannot sever a connection from inside the
/// service layer; it answers [`Message::Unavailable`] like
/// [`FaultAction::Fail`] (the client observes a typed transient failure
/// either way). Use [`FaultyTransport`] when the distinction matters.
#[derive(Debug)]
pub struct FaultyService<S> {
    inner: S,
    plan: FaultPlan,
    served: u64,
}

impl<S: Service> FaultyService<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultyService {
            inner,
            plan,
            served: 0,
        }
    }

    /// Requests seen so far (the next request gets this sequence number).
    pub fn served(&self) -> u64 {
        self.served
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: Service> Service for FaultyService<S> {
    fn handle(&mut self, request: Message) -> Message {
        let n = self.served;
        self.served += 1;
        match self.plan.action_for(n).copied() {
            Some(FaultAction::Fail) | Some(FaultAction::Drop) => Message::Unavailable {
                message: format!("injected fault (request {n})"),
            },
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.handle(request)
            }
            Some(FaultAction::Garble) => garble_response(self.inner.handle(request)),
            None => self.inner.handle(request),
        }
    }
}

/// A [`Transport`] wrapper injecting a [`FaultPlan`] on the client's
/// path to one librarian. All four actions are fully realizable at this
/// layer: `Fail` answers [`NetError::Unavailable`] *without* reaching
/// the peer (so a retry hits the healthy service and succeeds), `Drop`
/// answers [`NetError::Disconnected`], `Delay` stalls then forwards,
/// `Garble` forwards then corrupts the reply.
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
    sent: u64,
    trace: TraceSink,
    librarian: u32,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultyTransport {
            inner,
            plan,
            sent: 0,
            trace: TraceSink::disabled(),
            librarian: 0,
        }
    }

    /// Attaches a trace sink: each injected fault records a `fault`
    /// event tagged with `librarian` and the action name.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceSink, librarian: u32) -> Self {
        self.trace = trace;
        self.librarian = librarian;
        self
    }

    /// Requests attempted so far (the next request gets this number).
    pub fn attempts(&self) -> u64 {
        self.sent
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn request(&mut self, request: &Message) -> Result<Message, NetError> {
        let n = self.sent;
        self.sent += 1;
        let action = self.plan.action_for(n).copied();
        if let Some(action) = action {
            if self.trace.is_enabled() {
                self.trace.record(EventKind::Fault {
                    librarian: self.librarian,
                    action: action.name(),
                });
            }
        }
        match action {
            Some(FaultAction::Fail) => Err(NetError::Unavailable(format!(
                "injected failure (request {n})"
            ))),
            Some(FaultAction::Drop) => Err(NetError::Disconnected),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.request(request)
            }
            Some(FaultAction::Garble) => {
                let response = self.inner.request(request)?;
                match garble_response(response) {
                    Message::Unavailable { message } => Err(NetError::Unavailable(message)),
                    garbled => Ok(garbled),
                }
            }
            None => self.inner.request(request),
        }
    }

    fn stats(&self) -> TrafficStats {
        self.inner.stats()
    }

    fn last_exchange(&self) -> (u64, u64) {
        self.inner.last_exchange()
    }

    fn set_trace(&mut self, trace: TraceSink, librarian: u32) {
        // Forward-only: injected-fault events stay opt-in via
        // [`FaultyTransport::with_trace`]. A receptionist pushing its
        // sink down the stack is wiring *wire-level* tracing, and a
        // client-side fault plan has no server-side counterpart — if
        // `set_trace` also enabled fault events here, the same fleet
        // served over TCP (faults injected in the service) would emit a
        // structurally different trace than in-process.
        self.inner.set_trace(trace, librarian);
    }

    fn last_server_timings(&self) -> Option<teraphim_obs::ServerTimings> {
        self.inner.last_server_timings()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcTransport;

    /// Answers rank requests; anything else is a permanent error.
    struct Echo;
    impl Service for Echo {
        fn handle(&mut self, request: Message) -> Message {
            match request {
                Message::RankRequest { query_id, .. } => Message::RankResponse {
                    query_id,
                    epoch: 0,
                    entries: vec![(query_id, 0.5)],
                },
                _ => Message::Error {
                    message: "unsupported".into(),
                },
            }
        }
    }

    fn rank(query_id: u32) -> Message {
        Message::RankRequest {
            query_id,
            k: 1,
            terms: vec![],
        }
    }

    #[test]
    fn empty_plan_is_transparent() {
        let plan = FaultPlan::new();
        assert!(plan.is_healthy());
        let mut t = FaultyTransport::new(InProcTransport::new(Echo), plan);
        for i in 0..5 {
            assert!(t.request(&rank(i)).is_ok());
        }
        assert_eq!(t.attempts(), 5);
        assert_eq!(t.stats().round_trips, 5);
    }

    #[test]
    fn fail_nth_skips_the_peer_so_a_retry_succeeds() {
        let plan = FaultPlan::new().fail_nth(0);
        let mut t = FaultyTransport::new(InProcTransport::new(Echo), plan);
        let err = t.request(&rank(7)).unwrap_err();
        assert!(matches!(err, NetError::Unavailable(_)));
        // The peer never saw the failed attempt.
        assert_eq!(t.stats().round_trips, 0);
        assert!(t.request(&rank(7)).is_ok());
        assert_eq!(t.stats().round_trips, 1);
    }

    #[test]
    fn fail_from_is_a_permanent_outage() {
        let plan = FaultPlan::new().fail_from(2);
        let mut t = FaultyTransport::new(InProcTransport::new(Echo), plan);
        assert!(t.request(&rank(0)).is_ok());
        assert!(t.request(&rank(1)).is_ok());
        for _ in 0..4 {
            assert!(t.request(&rank(2)).is_err());
        }
    }

    #[test]
    fn drop_maps_to_disconnected_on_transports() {
        let plan = FaultPlan::new().drop_nth(0);
        let mut t = FaultyTransport::new(InProcTransport::new(Echo), plan);
        assert_eq!(t.request(&rank(0)).unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn delay_forwards_after_sleeping() {
        let delay = Duration::from_millis(25);
        let plan = FaultPlan::new().delay_nth(0, delay);
        let mut t = FaultyTransport::new(InProcTransport::new(Echo), plan);
        let start = std::time::Instant::now();
        assert!(t.request(&rank(0)).is_ok());
        assert!(start.elapsed() >= delay);
        // Subsequent requests are full speed (no rule matches).
        let start = std::time::Instant::now();
        assert!(t.request(&rank(1)).is_ok());
        assert!(start.elapsed() < delay);
    }

    #[test]
    fn garble_perturbs_the_query_id() {
        let plan = FaultPlan::new().garble_nth(0);
        let mut t = FaultyTransport::new(InProcTransport::new(Echo), plan);
        match t.request(&rank(10)).unwrap() {
            Message::RankResponse { query_id, .. } => assert_eq!(query_id, 11),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn faulty_service_injects_behind_any_transport() {
        let plan = FaultPlan::new().fail_nth(1);
        let mut t = InProcTransport::new(FaultyService::new(Echo, plan));
        assert!(t.request(&rank(0)).is_ok());
        let err = t.request(&rank(1)).unwrap_err();
        assert!(matches!(err, NetError::Unavailable(_)));
        assert!(t.request(&rank(2)).is_ok());
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::new()
            .garble_nth(3)
            .fail_from(2)
            .delay_all(Duration::from_millis(1));
        assert_eq!(
            plan.action_for(0),
            Some(&FaultAction::Delay(Duration::from_millis(1)))
        );
        assert_eq!(plan.action_for(2), Some(&FaultAction::Fail));
        assert_eq!(plan.action_for(3), Some(&FaultAction::Garble));
        assert_eq!(plan.action_for(4), Some(&FaultAction::Fail));
    }

    #[test]
    fn seeded_plans_are_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::new().seeded_failures(42, 250);
        let hits: Vec<bool> = (0..4000).map(|n| plan.action_for(n).is_some()).collect();
        let replay: Vec<bool> = (0..4000).map(|n| plan.action_for(n).is_some()).collect();
        assert_eq!(hits, replay, "same plan, same answers");
        let rate = hits.iter().filter(|&&h| h).count() as f64 / hits.len() as f64;
        assert!((0.18..0.32).contains(&rate), "rate {rate} far from 0.25");
        // A different seed picks a different subset.
        let other = FaultPlan::new().seeded_failures(43, 250);
        let other_hits: Vec<bool> = (0..4000).map(|n| other.action_for(n).is_some()).collect();
        assert_ne!(hits, other_hits);
    }

    #[test]
    fn cloned_plan_replays_identically_on_fresh_wrappers() {
        let plan = FaultPlan::new()
            .fail_nth(1)
            .drop_nth(3)
            .seeded_failures(7, 100);
        let run = |plan: FaultPlan| -> Vec<bool> {
            let mut t = FaultyTransport::new(InProcTransport::new(Echo), plan);
            (0..20).map(|i| t.request(&rank(i)).is_ok()).collect()
        };
        assert_eq!(run(plan.clone()), run(plan));
    }
}
