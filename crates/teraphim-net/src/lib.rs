//! Wire protocol and transports for TERAPHIM.
//!
//! The paper's analysis hinges on *what actually crosses the network*:
//! message counts (handshaking "should be kept to an absolute minimum"),
//! message sizes (document identifiers "are only a few bytes each, but
//! documents are much larger") and bundling ("documents should be bundled
//! into blocks by the librarians rather than transferred individually").
//! To make those costs first-class, this crate hand-rolls a compact
//! binary codec — every byte on the wire is visible and accounted — and
//! provides three interchangeable transports over the same
//! [`Message`]/[`Service`] abstraction:
//!
//! * [`transport::InProcTransport`] — direct calls through the codec
//!   (mono-disk / multi-disk configurations, and the simulation driver);
//! * [`tcp`] — real TCP with length-prefixed frames (the LAN
//!   configuration, runnable on loopback);
//! * [`mux`] — persistent multiplexed connections over the same TCP
//!   framing: correlation-id-tagged frames let hundreds of in-flight
//!   requests pipeline on one socket, demultiplexed by a per-connection
//!   reactor thread;
//! * traffic accounting ([`transport::TrafficStats`]) that the
//!   simulation driver feeds into `teraphim-simnet` to cost the WAN;
//! * [`fanout`] — the receptionist's batch dispatch path: one scoped
//!   worker thread per librarian, replies handed back as they arrive.
//!
//! # Examples
//!
//! ```
//! use teraphim_net::message::Message;
//!
//! let msg = Message::RankRequest {
//!     query_id: 202,
//!     k: 20,
//!     terms: vec![("cat".into(), 1), ("dog".into(), 2)],
//! };
//! let bytes = msg.encode();
//! assert_eq!(Message::decode(&bytes)?, msg);
//! # Ok::<(), teraphim_net::NetError>(())
//! ```

pub mod fanout;
pub mod faults;
pub mod message;
pub mod mux;
pub mod replica;
pub mod retry;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use fanout::{
    dispatch, dispatch_collect, dispatch_collect_traced, dispatch_partial, dispatch_partial_traced,
    dispatch_traced, DispatchMode,
};
pub use faults::{FaultAction, FaultPlan, FaultyService, FaultyTransport};
pub use message::Message;
pub use mux::{MuxConnection, MuxPool, MuxTransport};
pub use replica::{ReplicaGroup, RoutingTable};
pub use retry::{RetryPolicy, RetryTransport};
pub use tcp::{ServerOptions, TcpOptions};
pub use transport::{
    AtomicTrafficStats, InProcTransport, Service, Ticket, TrafficStats, Transport,
};

use std::error::Error;
use std::fmt;

/// Errors from encoding, decoding or transporting messages.
#[derive(Debug)]
pub enum NetError {
    /// The byte stream is truncated or structurally invalid.
    Corrupt(&'static str),
    /// An I/O failure on a real transport.
    Io(std::io::Error),
    /// The peer answered with a protocol-level error message: a
    /// *permanent* failure, never retried.
    Remote(String),
    /// The peer answered [`Message::Unavailable`]: a *transient*
    /// failure the retry layer may attempt again.
    Unavailable(String),
    /// The peer did not answer within the transport's deadline. The
    /// exchange may still complete on the peer's side; the caller
    /// simply stops waiting. Transient.
    Timeout,
    /// The connection was closed before a response arrived.
    Disconnected,
}

impl NetError {
    /// True for failures worth retrying: the request may never have
    /// reached the peer, or the peer declared the condition temporary.
    /// Permanent answers ([`NetError::Remote`]) and structural
    /// corruption ([`NetError::Corrupt`]) are not transient — retrying
    /// them would repeat the same deterministic failure.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            NetError::Io(_) | NetError::Unavailable(_) | NetError::Timeout | NetError::Disconnected
        )
    }

    /// Stable lowercase label for the error's kind, used in trace events
    /// (payload details like the remote message text are dropped so traces
    /// stay structurally comparable).
    pub fn kind(&self) -> &'static str {
        match self {
            NetError::Corrupt(_) => "corrupt",
            NetError::Io(_) => "io",
            NetError::Remote(_) => "remote",
            NetError::Unavailable(_) => "unavailable",
            NetError::Timeout => "timeout",
            NetError::Disconnected => "disconnected",
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Corrupt(what) => write!(f, "corrupt message: {what}"),
            NetError::Io(e) => write!(f, "transport I/O error: {e}"),
            NetError::Remote(msg) => write!(f, "remote error: {msg}"),
            NetError::Unavailable(msg) => write!(f, "peer temporarily unavailable: {msg}"),
            NetError::Timeout => write!(f, "deadline exceeded waiting for response"),
            NetError::Disconnected => write!(f, "connection closed unexpectedly"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl PartialEq for NetError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (NetError::Corrupt(a), NetError::Corrupt(b)) => a == b,
            (NetError::Remote(a), NetError::Remote(b)) => a == b,
            (NetError::Unavailable(a), NetError::Unavailable(b)) => a == b,
            (NetError::Timeout, NetError::Timeout) => true,
            (NetError::Disconnected, NetError::Disconnected) => true,
            _ => false,
        }
    }
}
