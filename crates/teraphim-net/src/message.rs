//! The TERAPHIM protocol messages.
//!
//! One request/response pair exists per protocol step in §3 of the
//! paper:
//!
//! | Step | Request | Response | Methodology |
//! |------|---------|----------|-------------|
//! | setup | [`Message::StatsRequest`] | [`Message::StatsResponse`] | CV preprocessing |
//! | setup | [`Message::IndexRequest`] | [`Message::IndexResponse`] | CI preprocessing |
//! | 1–2 | [`Message::RankRequest`] | [`Message::RankResponse`] | CN (local weights) |
//! | 1–2 | [`Message::RankWeightedRequest`] | [`Message::RankResponse`] | CV (global weights) |
//! | 2 | [`Message::ScoreCandidatesRequest`] | [`Message::ScoreResponse`] | CI (candidate scoring) |
//! | 4 | [`Message::FetchDocsRequest`] | [`Message::DocsResponse`] | all |
//!
//! Documents travel *compressed* (the store's word-coded bytes), which is
//! TERAPHIM's mitigation for WAN transfer cost.

use crate::wire::{get_bytes, get_f64, get_str, get_uint, put_bytes, put_f64, put_str, put_uint};
use crate::NetError;

/// A protocol message (request or response).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Ask a librarian for its collection statistics and vocabulary
    /// (term, local f_t) — the CV receptionist's preprocessing step.
    StatsRequest,
    /// Collection statistics: `N` and the per-term document frequencies.
    StatsResponse {
        /// Number of documents in the librarian's collection.
        num_docs: u64,
        /// `(term, f_t)` pairs for every vocabulary entry.
        term_freqs: Vec<(String, u64)>,
    },
    /// Ask a librarian for its full serialized index — the CI
    /// receptionist's preprocessing step.
    IndexRequest,
    /// The librarian's serialized inverted index.
    IndexResponse {
        /// `InvertedIndex::to_bytes` output.
        index_bytes: Vec<u8>,
    },
    /// Rank with *local* statistics (Central Nothing).
    RankRequest {
        /// Caller-chosen query identifier echoed in the response.
        query_id: u32,
        /// Number of documents wanted.
        k: u32,
        /// `(term, f_qt)` pairs; the librarian computes its own weights.
        terms: Vec<(String, u32)>,
    },
    /// Rank with supplied *global* weights (Central Vocabulary).
    RankWeightedRequest {
        /// Caller-chosen query identifier echoed in the response.
        query_id: u32,
        /// Number of documents wanted.
        k: u32,
        /// `(term, w_qt)` pairs computed by the receptionist.
        terms: Vec<(String, f64)>,
    },
    /// A ranking: `(local doc id, similarity)` in decreasing order.
    RankResponse {
        /// Echoed query identifier.
        query_id: u32,
        /// The librarian's index epoch (bumped on reindex); lets the
        /// receptionist invalidate caches without a separate poll.
        epoch: u64,
        /// The ranked entries.
        entries: Vec<(u32, f64)>,
    },
    /// Score exactly these candidate documents (Central Index).
    ScoreCandidatesRequest {
        /// Caller-chosen query identifier echoed in the response.
        query_id: u32,
        /// `(term, w_qt)` pairs computed by the receptionist.
        terms: Vec<(String, f64)>,
        /// Local document ids to score.
        candidates: Vec<u32>,
    },
    /// Similarity values for the requested candidates.
    ScoreResponse {
        /// Echoed query identifier.
        query_id: u32,
        /// The librarian's index epoch (see [`Message::RankResponse`]).
        epoch: u64,
        /// `(local doc id, similarity)` for each distinct candidate.
        entries: Vec<(u32, f64)>,
        /// Postings decoded while scoring (CPU-cost instrumentation).
        postings_decoded: u64,
    },
    /// Fetch documents for display (step 4).
    FetchDocsRequest {
        /// Caller-chosen query identifier echoed in the response.
        query_id: u32,
        /// Local document ids wanted.
        docs: Vec<u32>,
        /// When true the librarian decompresses before sending (more
        /// bytes on the wire); when false documents travel compressed,
        /// TERAPHIM's preferred mode.
        plain: bool,
    },
    /// The requested documents, compressed.
    DocsResponse {
        /// Echoed query identifier.
        query_id: u32,
        /// `(local doc id, docno, compressed text)` per document.
        docs: Vec<(u32, String, Vec<u8>)>,
    },
    /// Fetch only document headers (the external identifiers) — the
    /// paper's "only send part of each document, such as a header"
    /// refinement, and what effectiveness evaluation needs to map local
    /// ids to docnos.
    FetchHeadersRequest {
        /// Caller-chosen query identifier echoed in the response.
        query_id: u32,
        /// Local document ids wanted.
        docs: Vec<u32>,
    },
    /// The requested document headers.
    HeadersResponse {
        /// Echoed query identifier.
        query_id: u32,
        /// `(local doc id, docno)` per document.
        headers: Vec<(u32, String)>,
    },
    /// Evaluate a Boolean expression (distributed Boolean queries need
    /// no global information: the result is the union of per-librarian
    /// result sets).
    BooleanRequest {
        /// Caller-chosen query identifier echoed in the response.
        query_id: u32,
        /// Expression text, e.g. `cat AND (dog OR bird)`.
        expr: String,
    },
    /// Matching documents, ascending.
    BooleanResponse {
        /// Echoed query identifier.
        query_id: u32,
        /// Matching local document ids.
        docs: Vec<u32>,
    },
    /// Protocol-level failure: the peer understood the request but
    /// cannot ever satisfy it (bad expression, unknown document, …).
    /// Transports surface it as [`NetError::Remote`]; it is *not*
    /// retried.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Typed *transient* failure: the peer is up but temporarily unable
    /// to serve this request (overload, injected fault, resource
    /// contention). Transports surface it as [`NetError::Unavailable`],
    /// which the retry layer treats as retryable — the typed complement
    /// of the permanent [`Message::Error`].
    Unavailable {
        /// Human-readable reason.
        message: String,
    },
    /// Admin request: ask a librarian for its self-reported operational
    /// statistics. Distinct from [`Message::StatsRequest`], which is the
    /// CV preprocessing step fetching *collection* statistics — this one
    /// carries no query-path payload and is served out of band by the
    /// librarian's own counters, for fleet health snapshots.
    Stats,
    /// Admin response: the librarian's index shape and lifetime service
    /// counters, as counted *by the librarian itself* (the server side
    /// of the ledger; the receptionist's metrics registry is the client
    /// side).
    StatsReply {
        /// Librarian's self-chosen display name (may be empty).
        name: String,
        /// Documents in its collection.
        num_docs: u64,
        /// Distinct terms in its vocabulary.
        num_terms: u64,
        /// Serialized size of its inverted index, in bytes.
        index_bytes: u64,
        /// Requests served since startup (all variants except `Stats`).
        requests_served: u64,
        /// Of those, rank/score requests (the query hot path).
        rank_requests: u64,
        /// Requests answered with `Error` or `Unavailable`.
        errors: u64,
        /// Index epoch: 0 at build, bumped whenever the librarian
        /// reindexes. Receptionist caches key their generations on the
        /// fleet-wide sum of these.
        epoch: u64,
        /// Sparse service-latency histogram: `(log-bucket, count)` pairs
        /// in ascending bucket order, microseconds (see
        /// `teraphim-obs` histogram bucketing).
        latency: Vec<(u32, u64)>,
        /// Sparse server-side phase totals: `(phase index, total
        /// microseconds)` pairs in ascending index order, indexing
        /// `teraphim_obs::SERVER_PHASES` (queue wait, scan, rank,
        /// serialize). Empty when the librarian has never measured a
        /// phase — which is also what pre-tracing peers decode to.
        server_phases: Vec<(u32, u64)>,
    },
    /// Admin request: ask a fleet node for its current shard→replica
    /// routing table. Any node holding a
    /// [`crate::replica::RoutingTable`] answers; nodes without one
    /// answer [`Message::Error`].
    RoutingRequest,
    /// Admin response: a versioned snapshot of the routing table. The
    /// version is bumped on every membership change (join, leave,
    /// promote), so receptionists can detect movement with one integer
    /// compare and re-key caches.
    RoutingReply {
        /// Monotonic routing-table version (fleet generation input).
        version: u64,
        /// One entry per shard: `(shard, live replica ids, preferred
        /// replica id)`. Replica ids are stable for the life of the
        /// fleet; the preferred id is always a member of the live list
        /// unless the shard has no replicas (empty list, preferred 0).
        shards: Vec<(u32, Vec<u32>, u32)>,
    },
    /// Admin request: dump the librarian's flight recorder — the
    /// retained tail-latency span-tree exemplars. Librarians without an
    /// attached recorder answer an empty dump, not an error.
    FlightRecRequest,
    /// Admin response: the flight recorder's line-oriented JSON dump
    /// (see `teraphim_obs::FlightRecorder::dump_json`).
    FlightRecReply {
        /// Line-oriented JSON: a summary header, then per exemplar a
        /// summary line followed by its span tree.
        json: String,
    },
}

const TAG_STATS_REQ: u8 = 1;
const TAG_STATS_RESP: u8 = 2;
const TAG_INDEX_REQ: u8 = 3;
const TAG_INDEX_RESP: u8 = 4;
const TAG_RANK_REQ: u8 = 5;
const TAG_RANK_W_REQ: u8 = 6;
const TAG_RANK_RESP: u8 = 7;
const TAG_SCORE_REQ: u8 = 8;
const TAG_SCORE_RESP: u8 = 9;
const TAG_FETCH_REQ: u8 = 10;
const TAG_DOCS_RESP: u8 = 11;
const TAG_ERROR: u8 = 12;
const TAG_HEADERS_REQ: u8 = 13;
const TAG_HEADERS_RESP: u8 = 14;
const TAG_BOOL_REQ: u8 = 15;
const TAG_BOOL_RESP: u8 = 16;
const TAG_UNAVAILABLE: u8 = 17;
const TAG_ADMIN_STATS: u8 = 18;
const TAG_ADMIN_STATS_REPLY: u8 = 19;
const TAG_ROUTING_REQ: u8 = 20;
const TAG_ROUTING_REPLY: u8 = 21;
const TAG_FLIGHTREC_REQ: u8 = 22;
const TAG_FLIGHTREC_REPLY: u8 = 23;

impl Message {
    /// Admin traffic: health polls, routing-table fetches and
    /// flight-recorder dumps. Services answer these out of band (not
    /// counted, not timed), and transports never attach a span context
    /// to them — so polling a fleet perturbs neither the server-side
    /// phase ledger nor the flight recorder it reads.
    #[must_use]
    pub fn is_admin(&self) -> bool {
        matches!(
            self,
            Message::Stats | Message::RoutingRequest | Message::FlightRecRequest
        )
    }

    /// Encodes to the compact wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::StatsRequest => out.push(TAG_STATS_REQ),
            Message::StatsResponse {
                num_docs,
                term_freqs,
            } => {
                out.push(TAG_STATS_RESP);
                put_uint(&mut out, *num_docs);
                put_uint(&mut out, term_freqs.len() as u64);
                for (term, f) in term_freqs {
                    put_str(&mut out, term);
                    put_uint(&mut out, *f);
                }
            }
            Message::IndexRequest => out.push(TAG_INDEX_REQ),
            Message::IndexResponse { index_bytes } => {
                out.push(TAG_INDEX_RESP);
                put_bytes(&mut out, index_bytes);
            }
            Message::RankRequest { query_id, k, terms } => {
                out.push(TAG_RANK_REQ);
                put_uint(&mut out, u64::from(*query_id));
                put_uint(&mut out, u64::from(*k));
                put_uint(&mut out, terms.len() as u64);
                for (term, f_qt) in terms {
                    put_str(&mut out, term);
                    put_uint(&mut out, u64::from(*f_qt));
                }
            }
            Message::RankWeightedRequest { query_id, k, terms } => {
                out.push(TAG_RANK_W_REQ);
                put_uint(&mut out, u64::from(*query_id));
                put_uint(&mut out, u64::from(*k));
                put_uint(&mut out, terms.len() as u64);
                for (term, w) in terms {
                    put_str(&mut out, term);
                    put_f64(&mut out, *w);
                }
            }
            Message::RankResponse {
                query_id,
                epoch,
                entries,
            } => {
                out.push(TAG_RANK_RESP);
                put_uint(&mut out, u64::from(*query_id));
                put_uint(&mut out, *epoch);
                put_uint(&mut out, entries.len() as u64);
                for (doc, score) in entries {
                    put_uint(&mut out, u64::from(*doc));
                    put_f64(&mut out, *score);
                }
            }
            Message::ScoreCandidatesRequest {
                query_id,
                terms,
                candidates,
            } => {
                out.push(TAG_SCORE_REQ);
                put_uint(&mut out, u64::from(*query_id));
                put_uint(&mut out, terms.len() as u64);
                for (term, w) in terms {
                    put_str(&mut out, term);
                    put_f64(&mut out, *w);
                }
                // Candidates as d-gaps of the sorted list keeps this the
                // "few bytes each" the paper assumes.
                put_uint(&mut out, candidates.len() as u64);
                let mut prev = 0u32;
                for (i, &c) in candidates.iter().enumerate() {
                    debug_assert!(i == 0 || c >= prev, "candidates must be sorted");
                    let gap = if i == 0 { c } else { c - prev };
                    put_uint(&mut out, u64::from(gap));
                    prev = c;
                }
            }
            Message::ScoreResponse {
                query_id,
                epoch,
                entries,
                postings_decoded,
            } => {
                out.push(TAG_SCORE_RESP);
                put_uint(&mut out, u64::from(*query_id));
                put_uint(&mut out, *epoch);
                put_uint(&mut out, *postings_decoded);
                put_uint(&mut out, entries.len() as u64);
                for (doc, score) in entries {
                    put_uint(&mut out, u64::from(*doc));
                    put_f64(&mut out, *score);
                }
            }
            Message::FetchDocsRequest {
                query_id,
                docs,
                plain,
            } => {
                out.push(TAG_FETCH_REQ);
                put_uint(&mut out, u64::from(*query_id));
                out.push(u8::from(*plain));
                put_uint(&mut out, docs.len() as u64);
                for &d in docs {
                    put_uint(&mut out, u64::from(d));
                }
            }
            Message::FetchHeadersRequest { query_id, docs } => {
                out.push(TAG_HEADERS_REQ);
                put_uint(&mut out, u64::from(*query_id));
                put_uint(&mut out, docs.len() as u64);
                for &d in docs {
                    put_uint(&mut out, u64::from(d));
                }
            }
            Message::HeadersResponse { query_id, headers } => {
                out.push(TAG_HEADERS_RESP);
                put_uint(&mut out, u64::from(*query_id));
                put_uint(&mut out, headers.len() as u64);
                for (doc, docno) in headers {
                    put_uint(&mut out, u64::from(*doc));
                    put_str(&mut out, docno);
                }
            }
            Message::DocsResponse { query_id, docs } => {
                out.push(TAG_DOCS_RESP);
                put_uint(&mut out, u64::from(*query_id));
                put_uint(&mut out, docs.len() as u64);
                for (doc, docno, bytes) in docs {
                    put_uint(&mut out, u64::from(*doc));
                    put_str(&mut out, docno);
                    put_bytes(&mut out, bytes);
                }
            }
            Message::BooleanRequest { query_id, expr } => {
                out.push(TAG_BOOL_REQ);
                put_uint(&mut out, u64::from(*query_id));
                put_str(&mut out, expr);
            }
            Message::BooleanResponse { query_id, docs } => {
                out.push(TAG_BOOL_RESP);
                put_uint(&mut out, u64::from(*query_id));
                put_uint(&mut out, docs.len() as u64);
                // Ascending ids: gap-code them like candidates.
                let mut prev = 0u32;
                for (i, &d) in docs.iter().enumerate() {
                    debug_assert!(i == 0 || d >= prev, "boolean results must be sorted");
                    let gap = if i == 0 { d } else { d - prev };
                    put_uint(&mut out, u64::from(gap));
                    prev = d;
                }
            }
            Message::Error { message } => {
                out.push(TAG_ERROR);
                put_str(&mut out, message);
            }
            Message::Unavailable { message } => {
                out.push(TAG_UNAVAILABLE);
                put_str(&mut out, message);
            }
            Message::Stats => out.push(TAG_ADMIN_STATS),
            Message::StatsReply {
                name,
                num_docs,
                num_terms,
                index_bytes,
                requests_served,
                rank_requests,
                errors,
                epoch,
                latency,
                server_phases,
            } => {
                out.push(TAG_ADMIN_STATS_REPLY);
                put_str(&mut out, name);
                put_uint(&mut out, *num_docs);
                put_uint(&mut out, *num_terms);
                put_uint(&mut out, *index_bytes);
                put_uint(&mut out, *requests_served);
                put_uint(&mut out, *rank_requests);
                put_uint(&mut out, *errors);
                put_uint(&mut out, *epoch);
                put_uint(&mut out, latency.len() as u64);
                for (bucket, count) in latency {
                    put_uint(&mut out, u64::from(*bucket));
                    put_uint(&mut out, *count);
                }
                put_uint(&mut out, server_phases.len() as u64);
                for (phase, micros) in server_phases {
                    put_uint(&mut out, u64::from(*phase));
                    put_uint(&mut out, *micros);
                }
            }
            Message::RoutingRequest => out.push(TAG_ROUTING_REQ),
            Message::RoutingReply { version, shards } => {
                out.push(TAG_ROUTING_REPLY);
                put_uint(&mut out, *version);
                put_uint(&mut out, shards.len() as u64);
                for (shard, replicas, preferred) in shards {
                    put_uint(&mut out, u64::from(*shard));
                    put_uint(&mut out, replicas.len() as u64);
                    for r in replicas {
                        put_uint(&mut out, u64::from(*r));
                    }
                    put_uint(&mut out, u64::from(*preferred));
                }
            }
            Message::FlightRecRequest => out.push(TAG_FLIGHTREC_REQ),
            Message::FlightRecReply { json } => {
                out.push(TAG_FLIGHTREC_REPLY);
                put_str(&mut out, json);
            }
        }
        out
    }

    /// Decodes the wire form.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Corrupt`] on truncation, unknown tags, or
    /// trailing garbage.
    pub fn decode(buf: &[u8]) -> Result<Message, NetError> {
        let (&tag, rest) = buf
            .split_first()
            .ok_or(NetError::Corrupt("empty message"))?;
        let mut pos = 0usize;
        let msg = match tag {
            TAG_STATS_REQ => Message::StatsRequest,
            TAG_STATS_RESP => {
                let num_docs = get_uint(rest, &mut pos)?;
                let n = get_uint(rest, &mut pos)? as usize;
                let mut term_freqs = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let term = get_str(rest, &mut pos)?;
                    let f = get_uint(rest, &mut pos)?;
                    term_freqs.push((term, f));
                }
                Message::StatsResponse {
                    num_docs,
                    term_freqs,
                }
            }
            TAG_INDEX_REQ => Message::IndexRequest,
            TAG_INDEX_RESP => Message::IndexResponse {
                index_bytes: get_bytes(rest, &mut pos)?.to_vec(),
            },
            TAG_RANK_REQ => {
                let query_id = get_uint(rest, &mut pos)? as u32;
                let k = get_uint(rest, &mut pos)? as u32;
                let n = get_uint(rest, &mut pos)? as usize;
                let mut terms = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let term = get_str(rest, &mut pos)?;
                    let f = get_uint(rest, &mut pos)? as u32;
                    terms.push((term, f));
                }
                Message::RankRequest { query_id, k, terms }
            }
            TAG_RANK_W_REQ => {
                let query_id = get_uint(rest, &mut pos)? as u32;
                let k = get_uint(rest, &mut pos)? as u32;
                let n = get_uint(rest, &mut pos)? as usize;
                let mut terms = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let term = get_str(rest, &mut pos)?;
                    let w = get_f64(rest, &mut pos)?;
                    terms.push((term, w));
                }
                Message::RankWeightedRequest { query_id, k, terms }
            }
            TAG_RANK_RESP => {
                let query_id = get_uint(rest, &mut pos)? as u32;
                let epoch = get_uint(rest, &mut pos)?;
                let n = get_uint(rest, &mut pos)? as usize;
                let mut entries = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let doc = get_uint(rest, &mut pos)? as u32;
                    let score = get_f64(rest, &mut pos)?;
                    entries.push((doc, score));
                }
                Message::RankResponse {
                    query_id,
                    epoch,
                    entries,
                }
            }
            TAG_SCORE_REQ => {
                let query_id = get_uint(rest, &mut pos)? as u32;
                let nt = get_uint(rest, &mut pos)? as usize;
                let mut terms = Vec::with_capacity(nt.min(1 << 20));
                for _ in 0..nt {
                    let term = get_str(rest, &mut pos)?;
                    let w = get_f64(rest, &mut pos)?;
                    terms.push((term, w));
                }
                let nc = get_uint(rest, &mut pos)? as usize;
                let mut candidates = Vec::with_capacity(nc.min(1 << 20));
                let mut prev = 0u32;
                for i in 0..nc {
                    let raw = get_uint(rest, &mut pos)?;
                    let gap = u32::try_from(raw).map_err(|_| NetError::Corrupt("gap overflow"))?;
                    let c = if i == 0 {
                        gap
                    } else {
                        prev.checked_add(gap)
                            .ok_or(NetError::Corrupt("candidate id overflow"))?
                    };
                    candidates.push(c);
                    prev = c;
                }
                Message::ScoreCandidatesRequest {
                    query_id,
                    terms,
                    candidates,
                }
            }
            TAG_SCORE_RESP => {
                let query_id = get_uint(rest, &mut pos)? as u32;
                let epoch = get_uint(rest, &mut pos)?;
                let postings_decoded = get_uint(rest, &mut pos)?;
                let n = get_uint(rest, &mut pos)? as usize;
                let mut entries = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let doc = get_uint(rest, &mut pos)? as u32;
                    let score = get_f64(rest, &mut pos)?;
                    entries.push((doc, score));
                }
                Message::ScoreResponse {
                    query_id,
                    epoch,
                    entries,
                    postings_decoded,
                }
            }
            TAG_FETCH_REQ => {
                let query_id = get_uint(rest, &mut pos)? as u32;
                let plain = match rest.get(pos) {
                    Some(0) => false,
                    Some(1) => true,
                    _ => return Err(NetError::Corrupt("bad plain flag")),
                };
                pos += 1;
                let n = get_uint(rest, &mut pos)? as usize;
                let mut docs = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    docs.push(get_uint(rest, &mut pos)? as u32);
                }
                Message::FetchDocsRequest {
                    query_id,
                    docs,
                    plain,
                }
            }
            TAG_HEADERS_REQ => {
                let query_id = get_uint(rest, &mut pos)? as u32;
                let n = get_uint(rest, &mut pos)? as usize;
                let mut docs = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    docs.push(get_uint(rest, &mut pos)? as u32);
                }
                Message::FetchHeadersRequest { query_id, docs }
            }
            TAG_HEADERS_RESP => {
                let query_id = get_uint(rest, &mut pos)? as u32;
                let n = get_uint(rest, &mut pos)? as usize;
                let mut headers = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let doc = get_uint(rest, &mut pos)? as u32;
                    let docno = get_str(rest, &mut pos)?;
                    headers.push((doc, docno));
                }
                Message::HeadersResponse { query_id, headers }
            }
            TAG_DOCS_RESP => {
                let query_id = get_uint(rest, &mut pos)? as u32;
                let n = get_uint(rest, &mut pos)? as usize;
                let mut docs = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let doc = get_uint(rest, &mut pos)? as u32;
                    let docno = get_str(rest, &mut pos)?;
                    let bytes = get_bytes(rest, &mut pos)?.to_vec();
                    docs.push((doc, docno, bytes));
                }
                Message::DocsResponse { query_id, docs }
            }
            TAG_BOOL_REQ => {
                let query_id = get_uint(rest, &mut pos)? as u32;
                let expr = get_str(rest, &mut pos)?;
                Message::BooleanRequest { query_id, expr }
            }
            TAG_BOOL_RESP => {
                let query_id = get_uint(rest, &mut pos)? as u32;
                let n = get_uint(rest, &mut pos)? as usize;
                let mut docs = Vec::with_capacity(n.min(1 << 20));
                let mut prev = 0u32;
                for i in 0..n {
                    let raw = get_uint(rest, &mut pos)?;
                    let gap = u32::try_from(raw).map_err(|_| NetError::Corrupt("gap overflow"))?;
                    let d = if i == 0 {
                        gap
                    } else {
                        prev.checked_add(gap)
                            .ok_or(NetError::Corrupt("document id overflow"))?
                    };
                    docs.push(d);
                    prev = d;
                }
                Message::BooleanResponse { query_id, docs }
            }
            TAG_ERROR => Message::Error {
                message: get_str(rest, &mut pos)?,
            },
            TAG_UNAVAILABLE => Message::Unavailable {
                message: get_str(rest, &mut pos)?,
            },
            TAG_ADMIN_STATS => Message::Stats,
            TAG_ADMIN_STATS_REPLY => {
                let name = get_str(rest, &mut pos)?;
                let num_docs = get_uint(rest, &mut pos)?;
                let num_terms = get_uint(rest, &mut pos)?;
                let index_bytes = get_uint(rest, &mut pos)?;
                let requests_served = get_uint(rest, &mut pos)?;
                let rank_requests = get_uint(rest, &mut pos)?;
                let errors = get_uint(rest, &mut pos)?;
                let epoch = get_uint(rest, &mut pos)?;
                let n = get_uint(rest, &mut pos)? as usize;
                let mut latency = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let bucket = get_uint(rest, &mut pos)? as u32;
                    let count = get_uint(rest, &mut pos)?;
                    latency.push((bucket, count));
                }
                let np = get_uint(rest, &mut pos)? as usize;
                let mut server_phases = Vec::with_capacity(np.min(1 << 20));
                for _ in 0..np {
                    let phase = get_uint(rest, &mut pos)? as u32;
                    let micros = get_uint(rest, &mut pos)?;
                    server_phases.push((phase, micros));
                }
                Message::StatsReply {
                    name,
                    num_docs,
                    num_terms,
                    index_bytes,
                    requests_served,
                    rank_requests,
                    errors,
                    epoch,
                    latency,
                    server_phases,
                }
            }
            TAG_ROUTING_REQ => Message::RoutingRequest,
            TAG_ROUTING_REPLY => {
                let version = get_uint(rest, &mut pos)?;
                let n = get_uint(rest, &mut pos)? as usize;
                let mut shards = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let shard = get_uint(rest, &mut pos)? as u32;
                    let nr = get_uint(rest, &mut pos)? as usize;
                    let mut replicas = Vec::with_capacity(nr.min(1 << 20));
                    for _ in 0..nr {
                        replicas.push(get_uint(rest, &mut pos)? as u32);
                    }
                    let preferred = get_uint(rest, &mut pos)? as u32;
                    shards.push((shard, replicas, preferred));
                }
                Message::RoutingReply { version, shards }
            }
            TAG_FLIGHTREC_REQ => Message::FlightRecRequest,
            TAG_FLIGHTREC_REPLY => Message::FlightRecReply {
                json: get_str(rest, &mut pos)?,
            },
            _ => return Err(NetError::Corrupt("unknown message tag")),
        };
        if pos != rest.len() {
            return Err(NetError::Corrupt("trailing bytes after message"));
        }
        Ok(msg)
    }

    /// Encoded size in bytes (one encode pass; used by cost accounting).
    pub fn wire_len(&self) -> usize {
        self.encode().len()
    }

    /// The variant's name, e.g. `"RankRequest"` — a stable label for
    /// trace events and fault diagnostics.
    pub fn variant_name(&self) -> &'static str {
        match self {
            Message::StatsRequest => "StatsRequest",
            Message::StatsResponse { .. } => "StatsResponse",
            Message::IndexRequest => "IndexRequest",
            Message::IndexResponse { .. } => "IndexResponse",
            Message::RankRequest { .. } => "RankRequest",
            Message::RankWeightedRequest { .. } => "RankWeightedRequest",
            Message::RankResponse { .. } => "RankResponse",
            Message::ScoreCandidatesRequest { .. } => "ScoreCandidatesRequest",
            Message::ScoreResponse { .. } => "ScoreResponse",
            Message::FetchDocsRequest { .. } => "FetchDocsRequest",
            Message::DocsResponse { .. } => "DocsResponse",
            Message::FetchHeadersRequest { .. } => "FetchHeadersRequest",
            Message::HeadersResponse { .. } => "HeadersResponse",
            Message::BooleanRequest { .. } => "BooleanRequest",
            Message::BooleanResponse { .. } => "BooleanResponse",
            Message::Error { .. } => "Error",
            Message::Unavailable { .. } => "Unavailable",
            Message::Stats => "Stats",
            Message::StatsReply { .. } => "StatsReply",
            Message::RoutingRequest => "RoutingRequest",
            Message::RoutingReply { .. } => "RoutingReply",
            Message::FlightRecRequest => "FlightRecRequest",
            Message::FlightRecReply { .. } => "FlightRecReply",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let bytes = msg.encode();
        assert_eq!(Message::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Message::StatsRequest);
        roundtrip(Message::StatsResponse {
            num_docs: 1234,
            term_freqs: vec![("alpha".into(), 10), ("beta".into(), 1)],
        });
        roundtrip(Message::IndexRequest);
        roundtrip(Message::IndexResponse {
            index_bytes: vec![1, 2, 3, 255],
        });
        roundtrip(Message::RankRequest {
            query_id: 202,
            k: 20,
            terms: vec![("cat".into(), 1), ("dog".into(), 3)],
        });
        roundtrip(Message::RankWeightedRequest {
            query_id: 51,
            k: 1000,
            terms: vec![("cat".into(), 1.5), ("dog".into(), 0.25)],
        });
        roundtrip(Message::RankResponse {
            query_id: 202,
            epoch: 3,
            entries: vec![(0, 0.9), (7, 0.1)],
        });
        roundtrip(Message::ScoreCandidatesRequest {
            query_id: 1,
            terms: vec![("x".into(), 2.0)],
            candidates: vec![0, 5, 6, 100],
        });
        roundtrip(Message::ScoreResponse {
            query_id: 1,
            epoch: 0,
            entries: vec![(5, 0.4)],
            postings_decoded: 321,
        });
        roundtrip(Message::FetchDocsRequest {
            query_id: 9,
            docs: vec![3, 1, 4],
            plain: false,
        });
        roundtrip(Message::FetchDocsRequest {
            query_id: 9,
            docs: vec![2],
            plain: true,
        });
        roundtrip(Message::FetchHeadersRequest {
            query_id: 4,
            docs: vec![0, 9],
        });
        roundtrip(Message::HeadersResponse {
            query_id: 4,
            headers: vec![(0, "AP-0".into()), (9, "FR-9".into())],
        });
        roundtrip(Message::BooleanRequest {
            query_id: 6,
            expr: "cat AND (dog OR bird)".into(),
        });
        roundtrip(Message::BooleanResponse {
            query_id: 6,
            docs: vec![0, 3, 4, 100],
        });
        roundtrip(Message::BooleanResponse {
            query_id: 6,
            docs: vec![],
        });
        roundtrip(Message::DocsResponse {
            query_id: 9,
            docs: vec![(3, "AP-3".into(), vec![0xDE, 0xAD])],
        });
        roundtrip(Message::Error {
            message: "no such document".into(),
        });
        roundtrip(Message::Unavailable {
            message: "librarian restarting".into(),
        });
        roundtrip(Message::Stats);
        roundtrip(Message::StatsReply {
            name: "lib-2".into(),
            num_docs: 9000,
            num_terms: 12345,
            index_bytes: 1 << 20,
            requests_served: 42,
            rank_requests: 17,
            errors: 2,
            epoch: 5,
            latency: vec![(0, 1), (9, 30), (64, 1)],
            server_phases: vec![(0, 1500), (1, 900), (3, 12)],
        });
        roundtrip(Message::StatsReply {
            name: String::new(),
            num_docs: 0,
            num_terms: 0,
            index_bytes: 0,
            requests_served: 0,
            rank_requests: 0,
            errors: 0,
            epoch: 0,
            latency: vec![],
            server_phases: vec![],
        });
        roundtrip(Message::RoutingRequest);
        roundtrip(Message::RoutingReply {
            version: 7,
            shards: vec![(0, vec![0, 43], 43), (1, vec![1], 1), (2, vec![], 0)],
        });
        roundtrip(Message::RoutingReply {
            version: 0,
            shards: vec![],
        });
        roundtrip(Message::FlightRecRequest);
        roundtrip(Message::FlightRecReply {
            json: "{\"flightrec\":true,\"retained\":0,\"recorded\":0,\"dropped\":0}\n".into(),
        });
    }

    #[test]
    fn empty_collections_roundtrip() {
        roundtrip(Message::RankRequest {
            query_id: 0,
            k: 0,
            terms: vec![],
        });
        roundtrip(Message::RankResponse {
            query_id: 0,
            epoch: 0,
            entries: vec![],
        });
        roundtrip(Message::FetchDocsRequest {
            query_id: 0,
            docs: vec![],
            plain: true,
        });
    }

    #[test]
    fn candidates_are_gap_coded_compactly() {
        // 100 consecutive candidates: gaps of 1 are one byte each.
        let msg = Message::ScoreCandidatesRequest {
            query_id: 1,
            terms: vec![],
            candidates: (1000..1100).collect(),
        };
        // tag + qid(2) + nt(1) + nc(1) + first gap (2) + 99 gaps (1 each)
        assert!(msg.wire_len() < 110, "wire len {}", msg.wire_len());
        roundtrip(msg);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Message::decode(&[]).is_err());
        assert!(Message::decode(&[99]).is_err());
        let mut good = Message::StatsRequest.encode();
        good.push(0); // trailing byte
        assert!(Message::decode(&good).is_err());
    }

    #[test]
    fn decode_rejects_truncation_of_every_variant() {
        let msgs = [
            Message::RankRequest {
                query_id: 202,
                k: 20,
                terms: vec![("catfish".into(), 1)],
            },
            Message::DocsResponse {
                query_id: 9,
                docs: vec![(3, "AP-3".into(), vec![1, 2, 3, 4, 5])],
            },
            Message::StatsReply {
                name: "lib-0".into(),
                num_docs: 5,
                num_terms: 40,
                index_bytes: 900,
                requests_served: 8,
                rank_requests: 3,
                errors: 1,
                epoch: 2,
                latency: vec![(4, 2), (11, 6)],
                server_phases: vec![(1, 800)],
            },
            Message::RoutingReply {
                version: 9,
                shards: vec![(0, vec![0, 300], 300), (5, vec![5], 5)],
            },
        ];
        for msg in msgs {
            let bytes = msg.encode();
            for cut in 1..bytes.len() {
                assert!(Message::decode(&bytes[..cut]).is_err(), "cut {cut}");
            }
        }
    }

    #[test]
    fn rank_response_is_small_for_k_20() {
        // The paper: "Document identifiers are only a few bytes each" —
        // a k=20 ranking must be well under a kilobyte.
        let msg = Message::RankResponse {
            query_id: 202,
            epoch: 1,
            entries: (0..20).map(|d| (d * 37, 1.0 / f64::from(d + 1))).collect(),
        };
        assert!(msg.wire_len() < 250, "wire len {}", msg.wire_len());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn rank_requests_roundtrip(
            query_id in 0u32..1000,
            k in 0u32..2000,
            terms in proptest::collection::vec(("[a-z]{1,12}", 1u32..50), 0..40),
        ) {
            let msg = Message::RankRequest { query_id, k, terms };
            prop_assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }

        #[test]
        fn score_requests_roundtrip(
            candidates in proptest::collection::btree_set(0u32..1_000_000, 0..200),
        ) {
            let msg = Message::ScoreCandidatesRequest {
                query_id: 7,
                terms: vec![("t".into(), 1.0)],
                candidates: candidates.into_iter().collect(),
            };
            prop_assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }

        #[test]
        fn docs_responses_roundtrip(
            docs in proptest::collection::vec(
                (0u32..10_000, "[A-Z]{2}-[0-9]{4}", proptest::collection::vec(any::<u8>(), 0..100)),
                0..10,
            ),
        ) {
            let msg = Message::DocsResponse { query_id: 3, docs };
            prop_assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }

        #[test]
        fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
            let _ = Message::decode(&bytes);
        }
    }
}
