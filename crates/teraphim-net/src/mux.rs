//! Persistent, multiplexed librarian connections.
//!
//! The per-call TCP path ([`crate::tcp::TcpTransport`]) dedicates one
//! blocking exchange to each request: useful for the paper's
//! single-query cost model, but a serving receptionist mediates
//! hundreds of concurrent queries, and giving each its own socket (or
//! serializing them over one) wastes both descriptors and wall-clock.
//! This module keeps a **small pool of long-lived connections per
//! librarian** and pipelines every query over them:
//!
//! * each request is wrapped in a correlated frame
//!   ([`crate::wire::mux_envelope`]) carrying a connection-unique id;
//! * a **reactor thread per connection** blocks on the socket, reads
//!   reply frames as they arrive — in any order — and routes each to
//!   the waiting exchange over a per-request channel;
//! * [`MuxTransport`] implements [`Transport`], so fan-out, retry,
//!   fault-injection and the receptionist compose with it unchanged;
//!   many transports (one per in-flight query session) share one pool.
//!
//! No async runtime is involved: completion is channel-based, deadlines
//! are `recv_timeout` waits. A timed-out exchange deregisters its
//! correlation id, so a late reply is discarded by the reactor instead
//! of desynchronizing the stream — correlation ids fix the stale-reply
//! hazard the per-call path has after a read timeout.

use crate::message::Message;
use crate::tcp::{connect_stream, map_timeout_frame_error, TcpOptions};
use crate::transport::{AtomicTrafficStats, Ticket, TicketState, TrafficStats, Transport};
use crate::wire::{envelope_v1, mux_envelope, read_frame, split_envelope, write_frame};
use crate::NetError;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;
use teraphim_obs::{EventKind, ServerTimings, SpanContext, TraceSink};

/// A demultiplexed reply: the inner message payload plus any
/// server-side phase timings piggybacked on a v1 envelope.
#[derive(Debug)]
pub(crate) struct MuxReply {
    pub(crate) payload: Vec<u8>,
    pub(crate) timings: Option<ServerTimings>,
}

type ReplyResult = Result<MuxReply, NetError>;

/// State shared between a connection's users and its reactor thread.
#[derive(Debug)]
struct MuxShared {
    /// Waiting exchanges by correlation id. The reactor removes an
    /// entry when it routes the reply; a timed-out waiter removes its
    /// own so the late reply is dropped.
    pending: Mutex<HashMap<u64, mpsc::Sender<ReplyResult>>>,
    /// Set when the reactor exits; new sends fail fast.
    dead: AtomicBool,
}

impl MuxShared {
    /// Marks the connection dead and fails every waiting exchange.
    fn poison(&self) {
        self.dead.store(true, Ordering::SeqCst);
        let waiters: Vec<_> = self
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain()
            .collect();
        for (_, tx) in waiters {
            let _ = tx.send(Err(NetError::Disconnected));
        }
    }
}

/// One long-lived connection to a librarian, shared by many concurrent
/// exchanges. Writes are serialized by a lock; reads are demultiplexed
/// by the reactor thread. Dropping the last handle shuts the socket
/// down and joins the reactor.
#[derive(Debug)]
pub struct MuxConnection {
    shared: Arc<MuxShared>,
    writer: Mutex<TcpStream>,
    /// Kept solely to shut the socket down on drop, unblocking the
    /// reactor's read.
    stream: TcpStream,
    next_corr: AtomicU64,
    traffic: AtomicTrafficStats,
    reactor: Option<JoinHandle<()>>,
}

impl MuxConnection {
    /// Connects and starts the reactor. `options.read_timeout` is
    /// ignored: the reactor must block indefinitely between replies —
    /// per-exchange deadlines are enforced on the waiting side.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] when the connect itself exceeds
    /// `options.connect_timeout`, [`NetError::Io`] on other failures.
    pub fn connect(addr: SocketAddr, options: TcpOptions) -> Result<Arc<Self>, NetError> {
        let stream = connect_stream(
            addr,
            TcpOptions {
                read_timeout: None,
                ..options
            },
        )?;
        let reader = stream.try_clone()?;
        let writer = stream.try_clone()?;
        let shared = Arc::new(MuxShared {
            pending: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
        });
        let reactor_shared = Arc::clone(&shared);
        let reactor = std::thread::spawn(move || reactor_loop(reader, &reactor_shared));
        Ok(Arc::new(MuxConnection {
            shared,
            writer: Mutex::new(writer),
            stream,
            next_corr: AtomicU64::new(0),
            traffic: AtomicTrafficStats::new(),
            reactor: Some(reactor),
        }))
    }

    /// Sends one encoded message as a correlated frame, returning the
    /// ticket that will receive the reply. When a span context is
    /// given the frame is a v1 envelope carrying it (and requesting
    /// server-side phase timings on the reply); otherwise the PR 6
    /// v0 envelope is used, byte-for-byte.
    fn send(
        self: &Arc<Self>,
        encoded: &[u8],
        span: Option<&SpanContext>,
    ) -> Result<MuxTicket, NetError> {
        if self.shared.dead.load(Ordering::SeqCst) {
            return Err(NetError::Disconnected);
        }
        let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        self.shared
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(corr, tx);
        let framed = match span {
            Some(span) => envelope_v1(Some(corr), Some(span), None, encoded),
            None => mux_envelope(corr, encoded),
        };
        let write_result = {
            let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
            write_frame(&mut *w, &framed)
        };
        if let Err(e) = write_result {
            self.deregister(corr);
            return Err(map_timeout_frame_error(e));
        }
        Ok(MuxTicket {
            conn: Arc::clone(self),
            corr,
            rx,
            sent: encoded.len() as u64,
        })
    }

    fn deregister(&self, corr: u64) {
        self.shared
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&corr);
    }

    /// Payload traffic completed over this connection (all users).
    pub fn traffic(&self) -> TrafficStats {
        self.traffic.snapshot()
    }

    /// Exchanges currently awaiting their reply.
    pub fn in_flight(&self) -> usize {
        self.shared
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the reactor has observed the connection die.
    pub fn is_dead(&self) -> bool {
        self.shared.dead.load(Ordering::SeqCst)
    }
}

impl Drop for MuxConnection {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
    }
}

/// Blocks on the socket, routing each correlated reply to its waiting
/// exchange. Exits — poisoning the connection — on EOF, I/O failure,
/// or a protocol breach (an uncorrelated frame on a mux stream).
fn reactor_loop(mut reader: TcpStream, shared: &MuxShared) {
    while let Ok(Some(frame)) = read_frame(&mut reader) {
        match split_envelope(&frame) {
            Ok(env) if env.corr.is_some() => {
                let corr = env.corr.expect("guarded");
                let tx = shared
                    .pending
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&corr);
                if let Some(tx) = tx {
                    let _ = tx.send(Ok(MuxReply {
                        payload: env.message.to_vec(),
                        timings: env.timings,
                    }));
                }
                // An unknown id is a late reply whose waiter timed
                // out and deregistered: discard it.
            }
            _ => break,
        }
    }
    shared.poison();
}

/// An in-flight correlated exchange. Dropping it (without waiting)
/// deregisters the id so the reactor discards the eventual reply.
#[derive(Debug)]
pub struct MuxTicket {
    conn: Arc<MuxConnection>,
    corr: u64,
    rx: mpsc::Receiver<ReplyResult>,
    sent: u64,
}

impl MuxTicket {
    pub(crate) fn sent_bytes(&self) -> u64 {
        self.sent
    }

    /// Waits for the reply (bounded by `deadline` when set). On
    /// success the connection's shared traffic counters record the
    /// exchange.
    pub(crate) fn wait(self, deadline: Option<Duration>) -> ReplyResult {
        let outcome = match deadline {
            Some(d) => match self.rx.recv_timeout(d) {
                Ok(r) => r,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Deregister so the late reply is dropped, then
                    // settle the race where the reactor routed it while
                    // we were timing out.
                    self.conn.deregister(self.corr);
                    match self.rx.try_recv() {
                        Ok(r) => r,
                        Err(_) => return Err(NetError::Timeout),
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
            },
            None => match self.rx.recv() {
                Ok(r) => r,
                Err(_) => Err(NetError::Disconnected),
            },
        };
        if let Ok(reply) = &outcome {
            self.conn
                .traffic
                .record(self.sent, reply.payload.len() as u64);
        }
        outcome
    }
}

impl Drop for MuxTicket {
    fn drop(&mut self) {
        // Harmless if the exchange completed (the id is already gone);
        // essential if the ticket was abandoned mid-flight.
        self.conn.deregister(self.corr);
    }
}

/// A small pool of multiplexed connections to one librarian, shared by
/// every [`MuxTransport`] handle talking to that librarian. Exchanges
/// are spread round-robin; pool sizing trades head-of-line blocking on
/// the per-connection write lock against descriptor count.
#[derive(Debug)]
pub struct MuxPool {
    conns: Vec<Arc<MuxConnection>>,
    rr: AtomicUsize,
}

impl MuxPool {
    /// Opens `connections` (at least one) multiplexed connections.
    ///
    /// # Errors
    ///
    /// Returns the first connection failure.
    pub fn connect(
        addr: SocketAddr,
        connections: usize,
        options: TcpOptions,
    ) -> Result<Arc<Self>, NetError> {
        let conns = (0..connections.max(1))
            .map(|_| MuxConnection::connect(addr, options))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Arc::new(MuxPool {
            conns,
            rr: AtomicUsize::new(0),
        }))
    }

    fn pick(&self) -> &Arc<MuxConnection> {
        let i = self.rr.fetch_add(1, Ordering::Relaxed);
        &self.conns[i % self.conns.len()]
    }

    /// Number of connections in the pool.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Completed payload traffic per connection, in pool order.
    pub fn per_connection_traffic(&self) -> Vec<TrafficStats> {
        self.conns.iter().map(|c| c.traffic()).collect()
    }

    /// Completed payload traffic summed over the pool.
    pub fn traffic(&self) -> TrafficStats {
        let mut total = TrafficStats::default();
        for c in &self.conns {
            total.absorb(&c.traffic());
        }
        total
    }

    /// Exchanges currently in flight across the pool.
    pub fn in_flight(&self) -> usize {
        self.conns.iter().map(|c| c.in_flight()).sum()
    }
}

/// A [`Transport`] over a shared [`MuxPool`]: each handle keeps its own
/// statistics, trace sink and deadline, while the wire work multiplexes
/// over the pool's persistent connections. Create one handle per
/// concurrent query session; handles are cheap (an `Arc` plus
/// counters).
#[derive(Debug)]
pub struct MuxTransport {
    pool: Arc<MuxPool>,
    deadline: Option<Duration>,
    stats: TrafficStats,
    last: (u64, u64),
    trace: TraceSink,
    librarian: u32,
    last_timings: Option<ServerTimings>,
}

impl MuxTransport {
    /// A handle over an existing pool.
    pub fn new(pool: Arc<MuxPool>) -> Self {
        MuxTransport {
            pool,
            deadline: None,
            stats: TrafficStats::default(),
            last: (0, 0),
            trace: TraceSink::disabled(),
            librarian: 0,
            last_timings: None,
        }
    }

    /// Convenience: a single-connection pool with default options.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the connection fails.
    pub fn connect(addr: SocketAddr) -> Result<Self, NetError> {
        Ok(Self::new(MuxPool::connect(addr, 1, TcpOptions::default())?))
    }

    /// Convenience: a single-connection pool where the connect, every
    /// write, and every reply wait are bounded by `deadline` — the
    /// multiplexed analogue of
    /// [`crate::tcp::TcpTransport::connect_with_deadline`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] if the connection cannot be
    /// established in time, [`NetError::Io`] on other failures.
    pub fn connect_with_deadline(addr: SocketAddr, deadline: Duration) -> Result<Self, NetError> {
        let pool = MuxPool::connect(addr, 1, TcpOptions::with_deadline(deadline))?;
        Ok(Self::new(pool).with_deadline(deadline))
    }

    /// Attaches a trace sink: a deadline expiry records a `timeout`
    /// event tagged with `librarian`.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceSink, librarian: u32) -> Self {
        self.trace = trace;
        self.librarian = librarian;
        self
    }

    /// Bounds every reply wait by `deadline`.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets or clears the reply-wait deadline.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// The reply-wait deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The shared connection pool.
    pub fn pool(&self) -> Arc<MuxPool> {
        Arc::clone(&self.pool)
    }
}

impl Transport for MuxTransport {
    fn request(&mut self, request: &Message) -> Result<Message, NetError> {
        let ticket = self.begin(request);
        self.finish(ticket)
    }

    fn stats(&self) -> TrafficStats {
        self.stats
    }

    fn last_exchange(&self) -> (u64, u64) {
        self.last
    }

    fn begin(&mut self, request: &Message) -> Ticket {
        let encoded = request.encode();
        // A tracing handle upgrades the exchange to a v1 envelope
        // carrying the span context, which also asks the server to
        // piggyback its phase timings on the reply. Admin polls stay
        // span-free so they never perturb the ledgers they read.
        let span = if self.trace.is_enabled() && !request.is_admin() {
            Some(SpanContext::sampled(
                self.trace.current_trace_id(),
                self.librarian,
            ))
        } else {
            None
        };
        match self.pool.pick().send(&encoded, span.as_ref()) {
            Ok(ticket) => Ticket(TicketState::Mux(ticket)),
            Err(e) => Ticket(TicketState::Failed(e)),
        }
    }

    fn finish(&mut self, ticket: Ticket) -> Result<Message, NetError> {
        match ticket.0 {
            TicketState::Mux(ticket) => {
                let sent = ticket.sent_bytes();
                match ticket.wait(self.deadline) {
                    Ok(reply) => {
                        // Like the per-call TCP path, only completed
                        // exchanges count, and only payload bytes (the
                        // envelope is framing overhead) — so mux and
                        // per-call accounting stay byte-identical.
                        self.stats.round_trips += 1;
                        self.stats.bytes_sent += sent;
                        self.stats.bytes_received += reply.payload.len() as u64;
                        self.last = (sent, reply.payload.len() as u64);
                        self.last_timings = reply.timings;
                        match Message::decode(&reply.payload)? {
                            Message::Error { message } => Err(NetError::Remote(message)),
                            Message::Unavailable { message } => Err(NetError::Unavailable(message)),
                            response => Ok(response),
                        }
                    }
                    Err(e) => {
                        self.last_timings = None;
                        if matches!(e, NetError::Timeout) && self.trace.is_enabled() {
                            self.trace.record(EventKind::Timeout {
                                librarian: self.librarian,
                            });
                        }
                        Err(e)
                    }
                }
            }
            TicketState::Deferred(request) => self.request(&request),
            TicketState::Failed(e) => Err(e),
        }
    }

    fn set_trace(&mut self, trace: TraceSink, librarian: u32) {
        self.trace = trace;
        self.librarian = librarian;
    }

    fn last_server_timings(&self) -> Option<ServerTimings> {
        self.last_timings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, FaultyService};
    use crate::retry::{RetryPolicy, RetryTransport};
    use crate::tcp::{ServerOptions, TcpServer};
    use crate::transport::Service;
    use std::time::Instant;

    struct Echo;

    impl Service for Echo {
        fn handle(&mut self, request: Message) -> Message {
            match request {
                Message::RankRequest { query_id, k, .. } => Message::RankResponse {
                    query_id,
                    epoch: 0,
                    entries: vec![(k, 0.25)],
                },
                Message::StatsRequest => Message::StatsResponse {
                    num_docs: 7,
                    term_freqs: vec![],
                },
                _ => Message::Error {
                    message: "unsupported".into(),
                },
            }
        }
    }

    fn rank(query_id: u32) -> Message {
        Message::RankRequest {
            query_id,
            k: 3,
            terms: vec![],
        }
    }

    #[test]
    fn mux_roundtrip_counts_payload_stats() {
        let server = TcpServer::spawn(Echo, "127.0.0.1:0").unwrap();
        let mut t = MuxTransport::connect(server.addr()).unwrap();
        let req = rank(9);
        let resp = t.request(&req).unwrap();
        assert!(matches!(resp, Message::RankResponse { query_id: 9, .. }));
        assert_eq!(t.stats().round_trips, 1);
        // Payload bytes only, exactly like the per-call TCP transport.
        assert_eq!(t.stats().bytes_sent, req.wire_len() as u64);
        assert_eq!(t.last_exchange().0, req.wire_len() as u64);
        assert!(t.stats().bytes_received > 0);
        server.shutdown();
    }

    #[test]
    fn many_handles_share_one_pool_concurrently() {
        let server = TcpServer::spawn_with(
            vec![Echo, Echo],
            "127.0.0.1:0",
            ServerOptions {
                workers: 2,
                queue_depth: 64,
            },
        )
        .unwrap();
        let pool = MuxPool::connect(server.addr(), 2, TcpOptions::default()).unwrap();
        std::thread::scope(|scope| {
            for worker in 0..8u32 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    let mut t = MuxTransport::new(pool);
                    for i in 0..25 {
                        let id = worker * 1000 + i;
                        let resp = t.request(&rank(id)).unwrap();
                        assert!(
                            matches!(resp, Message::RankResponse { query_id, .. } if query_id == id),
                            "reply routed to the wrong exchange"
                        );
                    }
                    assert_eq!(t.stats().round_trips, 25);
                });
            }
        });
        // Pool-level accounting saw every exchange.
        assert_eq!(pool.traffic().round_trips, 200);
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(server.traffic().round_trips, 200);
        server.shutdown();
    }

    #[test]
    fn pipelined_tickets_overlap_on_one_connection() {
        // One replica that sleeps per request: four pipelined exchanges
        // over one connection must overlap server-side queueing with
        // client-side issue, i.e. finish well before 4 × delay if the
        // pool has the workers, or at worst serialize server-side but
        // never client-side.
        struct Slow;
        impl Service for Slow {
            fn handle(&mut self, request: Message) -> Message {
                std::thread::sleep(Duration::from_millis(30));
                Echo.handle(request)
            }
        }
        let server = TcpServer::spawn_with(
            vec![Slow, Slow, Slow, Slow],
            "127.0.0.1:0",
            ServerOptions {
                workers: 4,
                queue_depth: 16,
            },
        )
        .unwrap();
        let mut t = MuxTransport::connect(server.addr()).unwrap();
        let start = Instant::now();
        let tickets: Vec<Ticket> = (0..4).map(|i| t.begin(&rank(i))).collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let resp = t.finish(ticket).unwrap();
            assert!(matches!(resp, Message::RankResponse { query_id, .. } if query_id == i as u32));
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(100),
            "four pipelined 30ms exchanges took {elapsed:?} — not overlapped"
        );
        server.shutdown();
    }

    #[test]
    fn timeout_then_late_reply_does_not_desynchronize() {
        // The first exchange is delayed past the deadline; its late
        // reply must be discarded by correlation, leaving the second
        // exchange to receive its own answer.
        let delayed = FaultyService::new(
            Echo,
            FaultPlan::new().delay_nth(0, Duration::from_millis(150)),
        );
        let server = TcpServer::spawn(delayed, "127.0.0.1:0").unwrap();
        let pool = MuxPool::connect(server.addr(), 1, TcpOptions::default()).unwrap();
        let mut t = MuxTransport::new(pool).with_deadline(Duration::from_millis(40));
        let err = t.request(&rank(1)).unwrap_err();
        assert_eq!(err, NetError::Timeout);
        // Wait out the late reply so it truly arrives mid-session.
        std::thread::sleep(Duration::from_millis(150));
        let resp = t.request(&rank(2)).unwrap();
        assert!(
            matches!(resp, Message::RankResponse { query_id: 2, .. }),
            "stale reply leaked into a later exchange: {resp:?}"
        );
        server.shutdown();
    }

    #[test]
    fn deadline_fires_within_bounds_on_a_silent_peer() {
        // An accept-only listener: the reply never comes.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let held = listener.accept();
            std::thread::sleep(Duration::from_millis(300));
            drop(held);
        });
        let deadline = Duration::from_millis(80);
        let mut t = MuxTransport::connect_with_deadline(addr, deadline).unwrap();
        let start = Instant::now();
        let err = t.request(&rank(1)).unwrap_err();
        let elapsed = start.elapsed();
        assert_eq!(err, NetError::Timeout);
        assert!(
            elapsed >= deadline && elapsed < deadline * 3,
            "timed out after {elapsed:?} against {deadline:?}"
        );
        // Failed exchanges do not count, matching the per-call path.
        assert_eq!(t.stats().round_trips, 0);
        hold.join().unwrap();
    }

    #[test]
    fn peer_death_drains_waiters_with_disconnected() {
        // A peer that accepts, stalls, then closes without replying.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let killer = std::thread::spawn(move || {
            let accepted = listener.accept();
            std::thread::sleep(Duration::from_millis(50));
            drop(accepted);
        });
        let mut t = MuxTransport::connect(addr).unwrap();
        let ticket = t.begin(&rank(1));
        let err = t.finish(ticket).unwrap_err();
        assert_eq!(err, NetError::Disconnected);
        killer.join().unwrap();
        // Subsequent sends fail fast on the poisoned connection.
        let err = t.request(&rank(2)).unwrap_err();
        assert!(err.is_transient(), "{err:?}");
    }

    #[test]
    fn retry_composes_over_mux() {
        // Server-side: the first request is answered Unavailable; the
        // retry decorator re-issues over the same multiplexed pool.
        let flaky = FaultyService::new(Echo, FaultPlan::new().fail_nth(0));
        let server = TcpServer::spawn(flaky, "127.0.0.1:0").unwrap();
        let inner = MuxTransport::connect(server.addr()).unwrap();
        let mut t = RetryTransport::new(
            inner,
            RetryPolicy {
                max_retries: 2,
                backoff: Duration::ZERO,
            },
        );
        let resp = t.request(&rank(5)).unwrap();
        assert!(matches!(resp, Message::RankResponse { query_id: 5, .. }));
        assert_eq!(t.retries_used(), 1);
        server.shutdown();
    }

    #[test]
    fn remote_and_unavailable_errors_map_like_tcp() {
        let server = TcpServer::spawn(Echo, "127.0.0.1:0").unwrap();
        let mut t = MuxTransport::connect(server.addr()).unwrap();
        let err = t.request(&Message::IndexRequest).unwrap_err();
        assert_eq!(err, NetError::Remote("unsupported".into()));
        server.shutdown();
    }

    #[test]
    fn abandoned_ticket_deregisters_itself() {
        let server = TcpServer::spawn(Echo, "127.0.0.1:0").unwrap();
        let pool = MuxPool::connect(server.addr(), 1, TcpOptions::default()).unwrap();
        let mut t = MuxTransport::new(Arc::clone(&pool));
        let ticket = t.begin(&rank(1));
        drop(ticket);
        // The reply arrives, the reactor discards it, and the pending
        // table drains back to empty.
        let deadline = Instant::now() + Duration::from_secs(2);
        while pool.in_flight() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.in_flight(), 0);
        // The connection is still healthy for new exchanges.
        assert!(t.request(&rank(2)).is_ok());
        server.shutdown();
    }
}
