//! Replica groups and the versioned routing table — the elastic-fleet
//! layer.
//!
//! The paper's fleet is fixed at construction: one librarian per
//! subcollection, forever. This module relaxes that without touching the
//! receptionist's dispatch logic. A [`ReplicaGroup`] bundles 1..R
//! content-identical transports for one shard (subcollection) behind the
//! ordinary [`Transport`] trait: requests go to the *preferred* replica
//! and fail over to the next live replica on a transient error
//! ([`crate::NetError::is_transient`]), recording a
//! [`EventKind::Failover`] trace event per reroute. Only when every
//! replica has failed does the group surface an error — at which point
//! the existing `dispatch_partial` degradation path takes over, exactly
//! as for a single dead librarian.
//!
//! Membership is live: replicas [`ReplicaGroup::add_replica`] (join) and
//! [`ReplicaGroup::remove_replica`] (leave) while queries are in flight,
//! and every change is published to a shared [`RoutingTable`] whose
//! monotonic version feeds the receptionist's cache-generation path —
//! one integer compare per query detects membership movement. The table
//! serializes as [`Message::RoutingReply`] so fleets can gossip it.

use crate::message::Message;
use crate::transport::{TrafficStats, Transport};
use crate::NetError;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};
use teraphim_obs::{EventKind, TraceSink};

/// A versioned shard→replica routing table shared by one fleet.
///
/// Cloning shares the table. The version is bumped on *every* membership
/// mutation (join, leave, promote), never on reads, so receptionists can
/// treat it as a fleet-generation input: `version unchanged` ⟹ `routing
/// unchanged` ⟹ cached results keyed on the previous generation are
/// still addressed to the same replicas.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    inner: Arc<Mutex<TableInner>>,
}

#[derive(Debug, Default)]
struct TableInner {
    version: u64,
    /// shard → (live replica ids, preferred replica id).
    shards: BTreeMap<u32, (Vec<u32>, u32)>,
}

impl RoutingTable {
    /// An empty table at version 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TableInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current version. Starts at 0; strictly increases with every
    /// membership change.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.lock().version
    }

    /// Publishes shard `shard`'s membership, bumping the version.
    /// Returns the new version.
    pub fn publish(&self, shard: u32, replicas: Vec<u32>, preferred: u32) -> u64 {
        let mut t = self.lock();
        t.version += 1;
        t.shards.insert(shard, (replicas, preferred));
        t.version
    }

    /// A wire snapshot of the table ([`Message::RoutingReply`]).
    #[must_use]
    pub fn to_message(&self) -> Message {
        let t = self.lock();
        Message::RoutingReply {
            version: t.version,
            shards: t
                .shards
                .iter()
                .map(|(&shard, (replicas, preferred))| (shard, replicas.clone(), *preferred))
                .collect(),
        }
    }

    /// Answers an admin request against this table:
    /// [`Message::RoutingRequest`] gets a [`Message::RoutingReply`];
    /// anything else is not ours (`None`).
    #[must_use]
    pub fn answer(&self, request: &Message) -> Option<Message> {
        match request {
            Message::RoutingRequest => Some(self.to_message()),
            _ => None,
        }
    }

    /// Adopts a peer's snapshot if it is strictly newer than ours.
    /// Returns `true` when the table changed.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Corrupt`] if `snapshot` is not a
    /// [`Message::RoutingReply`].
    pub fn apply(&self, snapshot: &Message) -> Result<bool, NetError> {
        let Message::RoutingReply { version, shards } = snapshot else {
            return Err(NetError::Corrupt("not a routing snapshot"));
        };
        let mut t = self.lock();
        if *version <= t.version {
            return Ok(false);
        }
        t.version = *version;
        t.shards = shards
            .iter()
            .map(|(shard, replicas, preferred)| (*shard, (replicas.clone(), *preferred)))
            .collect();
        Ok(true)
    }

    /// The live replica ids and preferred replica for `shard`, if known.
    #[must_use]
    pub fn shard(&self, shard: u32) -> Option<(Vec<u32>, u32)> {
        self.lock().shards.get(&shard).cloned()
    }
}

/// A failover-aware bundle of content-identical replicas for one shard,
/// itself a [`Transport`].
///
/// Cloning shares the group: the scenario harness and the receptionist
/// hold the same membership, so a replica added by an operator is
/// immediately routable by in-flight queries. Statistics are the *sum*
/// over all replicas that ever served, including removed ones — counters
/// stay monotone across leaves, as every accounting check assumes.
#[derive(Debug)]
pub struct ReplicaGroup<T: Transport> {
    inner: Arc<Mutex<GroupInner<T>>>,
}

impl<T: Transport> Clone for ReplicaGroup<T> {
    fn clone(&self) -> Self {
        ReplicaGroup {
            inner: Arc::clone(&self.inner),
        }
    }
}

#[derive(Debug)]
struct GroupInner<T: Transport> {
    shard: u32,
    /// `(replica id, transport)`, attempt order after the preferred one.
    replicas: Vec<(u32, T)>,
    /// Index into `replicas` tried first.
    preferred: usize,
    /// Traffic of replicas that have left the group.
    retired: TrafficStats,
    last: (u64, u64),
    /// Server timings echoed by whichever replica served the last
    /// successful request.
    last_timings: Option<teraphim_obs::ServerTimings>,
    trace: TraceSink,
    table: Option<RoutingTable>,
}

impl<T: Transport> GroupInner<T> {
    fn publish(&self) -> u64 {
        match &self.table {
            Some(table) => table.publish(
                self.shard,
                self.replicas.iter().map(|(id, _)| *id).collect(),
                self.replicas.get(self.preferred).map_or(0, |(id, _)| *id),
            ),
            None => 0,
        }
    }
}

impl<T: Transport> ReplicaGroup<T> {
    /// A group for `shard` with `replicas` as `(replica id, transport)`
    /// pairs; the first entry is preferred.
    #[must_use]
    pub fn new(shard: u32, replicas: Vec<(u32, T)>) -> Self {
        ReplicaGroup {
            inner: Arc::new(Mutex::new(GroupInner {
                shard,
                replicas,
                preferred: 0,
                retired: TrafficStats::default(),
                last: (0, 0),
                last_timings: None,
                trace: TraceSink::disabled(),
                table: None,
            })),
        }
    }

    /// Attaches a trace sink: failovers and membership changes record
    /// [`EventKind::Failover`] / [`EventKind::Join`] /
    /// [`EventKind::Leave`] events tagged with the shard index.
    #[must_use]
    pub fn with_trace(self, trace: TraceSink) -> Self {
        self.lock().trace = trace;
        self
    }

    /// Registers the group in a shared [`RoutingTable`] and publishes
    /// its current membership (one version bump).
    #[must_use]
    pub fn with_table(self, table: RoutingTable) -> Self {
        {
            let mut g = self.lock();
            g.table = Some(table);
            g.publish();
        }
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GroupInner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The shard index this group serves.
    #[must_use]
    pub fn shard(&self) -> u32 {
        self.lock().shard
    }

    /// Number of live replicas.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().replicas.len()
    }

    /// True when no replica is live (every request fails transiently).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().replicas.is_empty()
    }

    /// Live replica ids in attempt order (preferred first is **not**
    /// implied; this is membership order).
    #[must_use]
    pub fn replica_ids(&self) -> Vec<u32> {
        self.lock().replicas.iter().map(|(id, _)| *id).collect()
    }

    /// The preferred replica's id, if the group is non-empty.
    #[must_use]
    pub fn preferred_id(&self) -> Option<u32> {
        let g = self.lock();
        g.replicas.get(g.preferred).map(|(id, _)| *id)
    }

    /// A replica joins the group (and the routing table version bumps).
    /// Returns the routing version after the join (0 without a table).
    pub fn add_replica(&self, id: u32, mut transport: T) -> u64 {
        let mut g = self.lock();
        if g.trace.is_enabled() {
            // Late joiners inherit the group's sink so span propagation
            // keeps working after a failover onto them.
            let (trace, shard) = (g.trace.clone(), g.shard);
            transport.set_trace(trace, shard);
        }
        g.replicas.push((id, transport));
        let version = g.publish();
        if g.trace.is_enabled() {
            let event = EventKind::Join {
                librarian: g.shard,
                replica: id,
                version,
            };
            g.trace.record(event);
        }
        version
    }

    /// Replica `id` leaves the group. Its traffic is retired into the
    /// group totals; if it was preferred, the first surviving replica
    /// is promoted. Returns `false` if `id` is not a member.
    pub fn remove_replica(&self, id: u32) -> bool {
        let mut g = self.lock();
        let Some(pos) = g.replicas.iter().position(|(rid, _)| *rid == id) else {
            return false;
        };
        let (_, transport) = g.replicas.remove(pos);
        let stats = transport.stats();
        g.retired.absorb(&stats);
        match pos.cmp(&g.preferred) {
            std::cmp::Ordering::Less => g.preferred -= 1,
            std::cmp::Ordering::Equal => g.preferred = 0,
            std::cmp::Ordering::Greater => {}
        }
        let version = g.publish();
        if g.trace.is_enabled() {
            let event = EventKind::Leave {
                librarian: g.shard,
                replica: id,
                version,
            };
            g.trace.record(event);
        }
        true
    }

    /// Makes replica `id` the preferred one. Returns `false` if `id` is
    /// not a member (membership and version are then untouched).
    pub fn promote(&self, id: u32) -> bool {
        let mut g = self.lock();
        let Some(pos) = g.replicas.iter().position(|(rid, _)| *rid == id) else {
            return false;
        };
        if pos != g.preferred {
            g.preferred = pos;
            g.publish();
        }
        true
    }

    /// Re-prefers the replica that `rank` scores lowest (ties broken by
    /// replica id) — the health-routing hook: pass `rank` as the
    /// replica's health class (up < degraded < down) and the group
    /// routes to the healthiest live replica. Publishes only if the
    /// preference actually moved. Returns the now-preferred id.
    pub fn prefer_by(&self, mut rank: impl FnMut(u32) -> u32) -> Option<u32> {
        let mut g = self.lock();
        let best = g
            .replicas
            .iter()
            .enumerate()
            .min_by_key(|(_, (id, _))| (rank(*id), *id))
            .map(|(pos, (id, _))| (pos, *id))?;
        if best.0 != g.preferred {
            g.preferred = best.0;
            g.publish();
        }
        Some(best.1)
    }

    /// Runs `f` with the preferred replica's transport (maintenance
    /// traffic that must not fail over, e.g. index handoff).
    pub fn with_preferred<R>(&self, f: impl FnOnce(&mut T) -> R) -> Option<R> {
        let mut g = self.lock();
        let preferred = g.preferred;
        g.replicas.get_mut(preferred).map(|(_, t)| f(t))
    }
}

impl<T: Transport> Transport for ReplicaGroup<T> {
    fn request(&mut self, request: &Message) -> Result<Message, NetError> {
        let mut g = self.lock();
        if g.replicas.is_empty() {
            return Err(NetError::Unavailable("no live replicas for shard".into()));
        }
        // Attempt order: preferred first, then the rest in membership
        // order, wrapping — deterministic for any fixed membership.
        let n = g.replicas.len();
        let order: Vec<usize> = (0..n).map(|i| (g.preferred + i) % n).collect();
        let mut last_err = None;
        for (attempt, &pos) in order.iter().enumerate() {
            let id = g.replicas[pos].0;
            match g.replicas[pos].1.request(request) {
                Ok(response) => {
                    g.last = g.replicas[pos].1.last_exchange();
                    g.last_timings = g.replicas[pos].1.last_server_timings();
                    return Ok(response);
                }
                Err(e) => {
                    let transient = e.is_transient();
                    if transient && attempt + 1 < n {
                        let next = g.replicas[order[attempt + 1]].0;
                        if g.trace.is_enabled() {
                            let event = EventKind::Failover {
                                librarian: g.shard,
                                from: id,
                                to: next,
                                error: e.kind(),
                            };
                            g.trace.record(event);
                        }
                        last_err = Some(e);
                        continue;
                    }
                    // Permanent errors are deterministic — every replica
                    // holds the same index, so rerouting would repeat
                    // the identical failure.
                    g.last = g.replicas[pos].1.last_exchange();
                    g.last_timings = None;
                    return Err(e);
                }
            }
        }
        g.last = (0, 0);
        g.last_timings = None;
        Err(last_err.unwrap_or(NetError::Disconnected))
    }

    fn stats(&self) -> TrafficStats {
        let g = self.lock();
        let mut total = g.retired;
        for (_, t) in &g.replicas {
            total.absorb(&t.stats());
        }
        total
    }

    fn last_exchange(&self) -> (u64, u64) {
        self.lock().last
    }

    fn set_trace(&mut self, trace: TraceSink, librarian: u32) {
        // The group keeps a sink for its own failover/membership
        // events, and every replica transport gets one too so span
        // propagation reaches whichever replica actually serves.
        let mut g = self.lock();
        g.trace = trace.clone();
        for (_, t) in &mut g.replicas {
            t.set_trace(trace.clone(), librarian);
        }
    }

    fn last_server_timings(&self) -> Option<teraphim_obs::ServerTimings> {
        self.lock().last_timings
    }
    // `begin`/`finish` use the deferred default: a pipelined dispatch
    // over a replica group degrades to issue-order exchanges, each with
    // full failover semantics.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcTransport;

    fn flaky(dead: bool) -> InProcTransport<impl FnMut(Message) -> Message + Send> {
        InProcTransport::new(move |req: Message| {
            if dead {
                return Message::Unavailable {
                    message: "down".into(),
                };
            }
            match req {
                Message::Stats => Message::StatsReply {
                    name: "r".into(),
                    num_docs: 1,
                    num_terms: 1,
                    index_bytes: 1,
                    requests_served: 0,
                    rank_requests: 0,
                    errors: 0,
                    epoch: 0,
                    latency: vec![],
                    server_phases: vec![],
                },
                _ => Message::Error {
                    message: "unsupported".into(),
                },
            }
        })
    }

    #[test]
    fn fails_over_to_next_replica_on_transient_error() {
        let mut group = ReplicaGroup::new(3, vec![(0, flaky(true)), (43, flaky(false))]);
        let resp = group.request(&Message::Stats).unwrap();
        assert!(matches!(resp, Message::StatsReply { .. }));
        // Both replicas saw traffic: the failed attempt and the answer.
        assert_eq!(group.stats().round_trips, 2);
    }

    #[test]
    fn permanent_errors_do_not_fail_over() {
        let mut group = ReplicaGroup::new(0, vec![(0, flaky(false)), (1, flaky(false))]);
        let err = group.request(&Message::IndexRequest).unwrap_err();
        assert_eq!(err, NetError::Remote("unsupported".into()));
        assert_eq!(group.stats().round_trips, 1, "no second attempt");
    }

    #[test]
    fn all_replicas_down_surfaces_last_transient_error() {
        let mut group = ReplicaGroup::new(0, vec![(0, flaky(true)), (1, flaky(true))]);
        let err = group.request(&Message::Stats).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(group.stats().round_trips, 2);
    }

    #[test]
    fn empty_group_is_transiently_unavailable() {
        type NoReplicas = ReplicaGroup<InProcTransport<fn(Message) -> Message>>;
        let mut group: NoReplicas = ReplicaGroup::new(7, vec![]);
        let err = group.request(&Message::Stats).unwrap_err();
        assert!(err.is_transient());
    }

    #[test]
    fn removed_replica_traffic_is_retired_not_lost() {
        let table = RoutingTable::new();
        let group = ReplicaGroup::new(1, vec![(0, flaky(false))]).with_table(table.clone());
        assert_eq!(table.version(), 1);
        group.add_replica(44, flaky(false));
        assert_eq!(table.version(), 2);
        let mut g = group.clone();
        g.request(&Message::Stats).unwrap();
        let before = group.stats();
        assert!(group.remove_replica(0));
        assert_eq!(table.version(), 3);
        assert_eq!(group.stats(), before, "leave must not regress counters");
        assert_eq!(group.preferred_id(), Some(44));
        assert_eq!(table.shard(1), Some((vec![44], 44)));
    }

    #[test]
    fn promote_and_prefer_by_route_preference() {
        let group = ReplicaGroup::new(0, vec![(10, flaky(false)), (20, flaky(false))]);
        assert_eq!(group.preferred_id(), Some(10));
        assert!(group.promote(20));
        assert_eq!(group.preferred_id(), Some(20));
        assert!(!group.promote(99));
        // Health routing: 20 is "down" (rank 2), 10 is "up" (rank 0).
        let best = group.prefer_by(|id| if id == 20 { 2 } else { 0 });
        assert_eq!(best, Some(10));
        assert_eq!(group.preferred_id(), Some(10));
    }

    #[test]
    fn routing_table_snapshot_roundtrip_and_apply() {
        let table = RoutingTable::new();
        table.publish(0, vec![0, 43], 43);
        table.publish(1, vec![1], 1);
        let snapshot = table.to_message();
        let answered = table.answer(&Message::RoutingRequest).unwrap();
        assert_eq!(snapshot, answered);
        assert!(table.answer(&Message::Stats).is_none());

        let follower = RoutingTable::new();
        assert!(follower.apply(&snapshot).unwrap());
        assert_eq!(follower.version(), table.version());
        assert_eq!(follower.shard(0), Some((vec![0, 43], 43)));
        // Stale snapshots are ignored.
        assert!(!follower.apply(&snapshot).unwrap());
        assert!(follower.apply(&Message::Stats).is_err());
    }

    #[test]
    fn failover_records_trace_event() {
        let sink = TraceSink::new();
        let mut group = ReplicaGroup::new(5, vec![(5, flaky(true)), (48, flaky(false))])
            .with_trace(sink.clone());
        sink.record(EventKind::Begin {
            op: "probe",
            methodology: None,
            query_id: 0,
            k: 0,
        });
        group.request(&Message::Stats).unwrap();
        sink.record(EventKind::End);
        let traces = sink.take_traces();
        let failover = traces[0]
            .events
            .iter()
            .find(|e| e.kind.tag() == "failover")
            .expect("failover event");
        assert_eq!(
            failover.kind,
            EventKind::Failover {
                librarian: 5,
                from: 5,
                to: 48,
                error: "unavailable",
            }
        );
    }
}
