//! Bounded retries with backoff for transient transport failures.
//!
//! The error taxonomy in [`NetError`] splits failures into *transient*
//! (the request may never have reached the peer, or the peer declared
//! the condition temporary — timeouts, dropped connections, I/O errors,
//! [`NetError::Unavailable`]) and *permanent* (protocol errors and
//! corrupt frames, which would fail identically on every attempt).
//! [`RetryTransport`] re-issues transient failures up to a bounded
//! number of times with exponential backoff, and surfaces permanent
//! failures immediately.
//!
//! All request/response exchanges in the TERAPHIM protocol are
//! idempotent reads — ranking, scoring, statistics, document fetches —
//! so re-sending a request whose fate is unknown (a timeout may have
//! been processed by the peer) is always safe.
//!
//! # Examples
//!
//! ```
//! use teraphim_net::retry::{RetryPolicy, RetryTransport};
//! use teraphim_net::faults::{FaultPlan, FaultyTransport};
//! use teraphim_net::transport::{InProcTransport, Transport};
//! use teraphim_net::message::Message;
//!
//! // A service that answers rank requests; its first exchange is
//! // injected to fail before reaching the peer.
//! let service = |req: Message| match req {
//!     Message::RankRequest { query_id, .. } => Message::RankResponse {
//!         query_id,
//!         epoch: 0,
//!         entries: vec![],
//!     },
//!     _ => Message::Error { message: "unsupported".into() },
//! };
//! let flaky = FaultyTransport::new(
//!     InProcTransport::new(service),
//!     FaultPlan::new().fail_nth(0),
//! );
//! let mut t = RetryTransport::new(flaky, RetryPolicy::default());
//! let req = Message::RankRequest { query_id: 1, k: 5, terms: vec![] };
//! assert!(t.request(&req).is_ok()); // first attempt failed, retry succeeded
//! assert_eq!(t.retries_used(), 1);
//! ```

use crate::message::Message;
use crate::transport::{TrafficStats, Transport};
use crate::NetError;
use std::time::Duration;
use teraphim_obs::{EventKind, TraceSink};

/// How many times to re-issue a transiently failed request, and how
/// long to wait before each retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries *after* the initial attempt — `max_retries = 2` means at
    /// most 3 attempts total.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles on each subsequent one.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    /// Two retries with a 5 ms initial backoff — enough to ride out a
    /// momentary stall without tripling the latency of a real outage.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// No retries: every failure surfaces immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::ZERO,
        }
    }

    /// The pause before retry number `retry` (1-based): exponential,
    /// `backoff * 2^(retry-1)`.
    pub fn backoff_before(&self, retry: u32) -> Duration {
        if retry == 0 || self.backoff.is_zero() {
            return Duration::ZERO;
        }
        self.backoff.saturating_mul(1u32 << (retry - 1).min(16))
    }
}

/// A [`Transport`] decorator that re-issues requests on transient
/// failures ([`NetError::is_transient`]) per a [`RetryPolicy`].
/// Permanent failures pass through untouched on the first attempt.
#[derive(Debug)]
pub struct RetryTransport<T> {
    inner: T,
    policy: RetryPolicy,
    retries_used: u64,
    trace: TraceSink,
    librarian: u32,
}

impl<T: Transport> RetryTransport<T> {
    /// Wraps `inner` under `policy`.
    pub fn new(inner: T, policy: RetryPolicy) -> Self {
        RetryTransport {
            inner,
            policy,
            retries_used: 0,
            trace: TraceSink::disabled(),
            librarian: 0,
        }
    }

    /// Attaches a trace sink: each retry records a `retry` event tagged
    /// with `librarian` and the transient error kind that triggered it.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceSink, librarian: u32) -> Self {
        self.trace = trace;
        self.librarian = librarian;
        self
    }

    /// Total retries issued over this transport's lifetime (attempts
    /// beyond the first, summed across all requests).
    pub fn retries_used(&self) -> u64 {
        self.retries_used
    }

    /// The policy in force.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The wrapped transport, mutably (for reconfiguration mid-test).
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: Transport> Transport for RetryTransport<T> {
    fn request(&mut self, request: &Message) -> Result<Message, NetError> {
        let mut attempt = 0u32;
        loop {
            match self.inner.request(request) {
                Ok(response) => return Ok(response),
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    attempt += 1;
                    self.retries_used += 1;
                    if self.trace.is_enabled() {
                        self.trace.record(EventKind::Retry {
                            librarian: self.librarian,
                            attempt,
                            error: e.kind(),
                        });
                    }
                    let pause = self.policy.backoff_before(attempt);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn stats(&self) -> TrafficStats {
        self.inner.stats()
    }

    fn last_exchange(&self) -> (u64, u64) {
        self.inner.last_exchange()
    }

    fn set_trace(&mut self, trace: TraceSink, librarian: u32) {
        // Both this decorator's own retry events and the wrapped
        // transport observe the sink: span propagation must reach the
        // wire transport at the bottom of the stack.
        self.trace = trace.clone();
        self.librarian = librarian;
        self.inner.set_trace(trace, librarian);
    }

    fn last_server_timings(&self) -> Option<teraphim_obs::ServerTimings> {
        self.inner.last_server_timings()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, FaultyTransport};
    use crate::transport::InProcTransport;

    fn echo_service() -> impl crate::transport::Service {
        |req: Message| match req {
            Message::RankRequest { query_id, .. } => Message::RankResponse {
                query_id,
                epoch: 0,
                entries: vec![(query_id, 1.0)],
            },
            _ => Message::Error {
                message: "unsupported".into(),
            },
        }
    }

    fn rank(query_id: u32) -> Message {
        Message::RankRequest {
            query_id,
            k: 1,
            terms: vec![],
        }
    }

    fn flaky(plan: FaultPlan) -> FaultyTransport<InProcTransport<impl crate::transport::Service>> {
        FaultyTransport::new(InProcTransport::new(echo_service()), plan)
    }

    #[test]
    fn transient_failure_is_retried_to_success() {
        let mut t = RetryTransport::new(
            flaky(FaultPlan::new().fail_nth(0).fail_nth(1)),
            RetryPolicy {
                max_retries: 2,
                backoff: Duration::ZERO,
            },
        );
        assert!(t.request(&rank(3)).is_ok());
        assert_eq!(t.retries_used(), 2);
    }

    #[test]
    fn retries_exhausted_surfaces_the_last_error() {
        let policy = RetryPolicy {
            max_retries: 2,
            backoff: Duration::ZERO,
        };
        let mut t = RetryTransport::new(flaky(FaultPlan::new().fail_from(0)), policy);
        let err = t.request(&rank(1)).unwrap_err();
        assert!(matches!(err, NetError::Unavailable(_)));
        // max_retries + 1 attempts total.
        assert_eq!(t.inner().attempts(), 3);
        assert_eq!(t.retries_used(), 2);
    }

    #[test]
    fn permanent_errors_are_never_retried() {
        // The inner service answers a protocol error; Remote is permanent.
        let mut t = RetryTransport::new(
            InProcTransport::new(|_req: Message| Message::Error {
                message: "bad".into(),
            }),
            RetryPolicy::default(),
        );
        let err = t.request(&rank(1)).unwrap_err();
        assert!(matches!(err, NetError::Remote(_)));
        assert_eq!(t.retries_used(), 0);
    }

    #[test]
    fn policy_none_fails_on_first_transient_error() {
        let mut t = RetryTransport::new(flaky(FaultPlan::new().fail_nth(0)), RetryPolicy::none());
        assert!(t.request(&rank(1)).is_err());
        assert_eq!(t.inner().attempts(), 1);
    }

    #[test]
    fn backoff_schedule_is_exponential() {
        let p = RetryPolicy {
            max_retries: 4,
            backoff: Duration::from_millis(5),
        };
        assert_eq!(p.backoff_before(0), Duration::ZERO);
        assert_eq!(p.backoff_before(1), Duration::from_millis(5));
        assert_eq!(p.backoff_before(2), Duration::from_millis(10));
        assert_eq!(p.backoff_before(3), Duration::from_millis(20));
    }

    #[test]
    fn stats_pass_through_to_the_inner_transport() {
        let mut t = RetryTransport::new(flaky(FaultPlan::new()), RetryPolicy::default());
        t.request(&rank(1)).unwrap();
        assert_eq!(t.stats().round_trips, 1);
        assert!(t.last_exchange().0 > 0);
    }
}
